"""Tests for the differential correctness harness (repro.verify)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.join.predicates import WithinDistance
from repro.storage.records import XHI, XLO, YHI, YLO
from repro.verify import (
    DEFAULT_INVARIANTS,
    ExecutorSpec,
    JoinReadsOnceInvariant,
    PhaseBucketsSumInvariant,
    ReplicationInvariant,
    VerifyCase,
    cases_by_name,
    check_obs_parity,
    check_partition_conformance,
    default_executors,
    diff_pairs,
    minimize_counterexample,
    oracle_pairs,
    run_executor,
    run_verify,
    transforms_by_name,
)
from repro.verify.metamorphic import TRANSFORMS, CurveSwapTransform
from repro.verify.workloads import degenerate_dataset, grid_aligned_dataset
from tests.conftest import brute_force_pairs, brute_force_self_pairs

# Dyadic coordinates: exactly representable, and they land on the grid
# lines where closed-interval bugs live.
dyadic = st.integers(0, 32).map(lambda k: k / 32)


def rect_strategy():
    return st.tuples(dyadic, dyadic, dyadic, dyadic).map(
        lambda c: Rect(
            min(c[0], c[2]), min(c[1], c[3]), max(c[0], c[2]), max(c[1], c[3])
        )
    )


def dataset_strategy(name, max_size=12):
    return st.lists(rect_strategy(), min_size=0, max_size=max_size).map(
        lambda rects: SpatialDataset(
            name, [Entity(eid, rect) for eid, rect in enumerate(rects)]
        )
    )


class TestOracle:
    @given(dataset_strategy("A"), dataset_strategy("B"))
    def test_matches_brute_force(self, dataset_a, dataset_b):
        assert oracle_pairs(dataset_a, dataset_b) == brute_force_pairs(
            dataset_a, dataset_b
        )

    @given(dataset_strategy("A"))
    def test_self_join_matches_brute_force(self, dataset):
        assert oracle_pairs(dataset, dataset) == brute_force_self_pairs(dataset)

    @given(dataset_strategy("A"), dataset_strategy("B"))
    def test_margin_matches_brute_force(self, dataset_a, dataset_b):
        margin = WithinDistance(0.125).mbr_margin
        assert oracle_pairs(
            dataset_a, dataset_b, margin=margin
        ) == brute_force_pairs(dataset_a, dataset_b, margin=margin)

    def test_empty_dataset(self):
        empty = SpatialDataset("E", [])
        other = SpatialDataset("O", [Entity(0, Rect(0, 0, 1, 1))])
        assert oracle_pairs(empty, other) == frozenset()
        assert oracle_pairs(empty, empty) == frozenset()

    def test_self_join_excludes_identity_pairs(self):
        dataset = SpatialDataset(
            "S", [Entity(i, Rect(0, 0, 1, 1)) for i in range(3)]
        )
        assert oracle_pairs(dataset, dataset) == frozenset(
            {(0, 1), (0, 2), (1, 2)}
        )


class TestMetamorphic:
    @given(dataset_strategy("A", 10), dataset_strategy("B", 10))
    def test_geometry_transforms_preserve_oracle(self, dataset_a, dataset_b):
        base = VerifyCase("t", dataset_a, dataset_b)
        expected = oracle_pairs(dataset_a, dataset_b)
        for name in ("axis-swap", "reflect-x"):
            transform = TRANSFORMS[name]
            variant = transform.apply(base)
            mapped = transform.map_pairs(expected, base.self_join)
            assert (
                oracle_pairs(variant.dataset_a, variant.dataset_b) == mapped
            ), name

    @given(dataset_strategy("A", 10), dataset_strategy("B", 10))
    def test_swap_ab_flips_pairs(self, dataset_a, dataset_b):
        transform = TRANSFORMS["swap-ab"]
        base = VerifyCase("t", dataset_a, dataset_b)
        variant = transform.apply(base)
        assert variant.dataset_a is dataset_b
        mapped = transform.map_pairs(
            oracle_pairs(dataset_a, dataset_b), self_join=False
        )
        assert oracle_pairs(variant.dataset_a, variant.dataset_b) == mapped

    def test_swap_ab_keeps_self_join_identity(self):
        dataset = grid_aligned_dataset(8, 20, seed=1, name="G")
        base = VerifyCase("t", dataset, dataset)
        variant = TRANSFORMS["swap-ab"].apply(base)
        assert variant.self_join

    def test_geometry_transform_keeps_self_join_identity(self):
        dataset = grid_aligned_dataset(8, 20, seed=1, name="G")
        variant = TRANSFORMS["axis-swap"].apply(VerifyCase("t", dataset, dataset))
        assert variant.self_join

    def test_grid_snap_not_pair_preserving(self):
        assert not TRANSFORMS["grid-snap-8"].preserves_pairs

    def test_curve_swap_only_touches_s3j(self):
        transform = CurveSwapTransform()
        assert transform.param_overrides("pbsm") == {}
        overrides = transform.param_overrides("s3j")
        assert type(overrides["curve"]).__name__ == "ZOrderCurve"

    def test_transforms_by_name_identity_first(self):
        picked = transforms_by_name(("swap-ab", "axis-swap"))
        assert [t.name for t in picked] == ["identity", "swap-ab", "axis-swap"]

    def test_transforms_by_name_unknown(self):
        with pytest.raises(ValueError, match="unknown transforms"):
            transforms_by_name(("rotate-45",))


class TestDiffAndMinimize:
    def test_diff_pairs(self):
        diff = diff_pairs(frozenset({(1, 2), (3, 4)}), frozenset({(3, 4), (5, 6)}))
        assert diff.missing == frozenset({(1, 2)})
        assert diff.extra == frozenset({(5, 6)})
        assert not diff.empty
        assert "1 missing" in diff.describe() and "1 extra" in diff.describe()

    def test_minimizer_shrinks_to_culprit_pair(self):
        """A runner that drops exactly one oracle pair must shrink to
        (roughly) the two entities of that pair."""
        dataset_a = grid_aligned_dataset(8, 40, seed=7, name="MA")
        dataset_b = grid_aligned_dataset(8, 40, seed=8, name="MB")
        case = VerifyCase("min", dataset_a, dataset_b)
        dropped = min(oracle_pairs(dataset_a, dataset_b))

        def broken_runner(sub):
            return frozenset(
                oracle_pairs(sub.dataset_a, sub.dataset_b) - {dropped}
            )

        counterexample = minimize_counterexample(case, broken_runner, max_runs=120)
        assert counterexample.diff.missing == frozenset({dropped})
        assert len(counterexample.entities_a) == 1
        assert len(counterexample.entities_b) == 1
        assert counterexample.runs_used <= 120
        assert "missing" in counterexample.describe()

    def test_minimizer_self_join_keeps_identity(self):
        dataset = grid_aligned_dataset(8, 30, seed=9, name="MS")
        case = VerifyCase("min-self", dataset, dataset)
        dropped = min(oracle_pairs(dataset, dataset))

        def broken_runner(sub):
            assert sub.self_join
            return frozenset(
                oracle_pairs(sub.dataset_a, sub.dataset_b) - {dropped}
            )

        counterexample = minimize_counterexample(case, broken_runner, max_runs=120)
        assert counterexample.self_join
        assert counterexample.diff.missing == frozenset({dropped})
        assert len(counterexample.entities_a) == 2


class TestExecutors:
    def test_default_roster(self):
        names = [spec.name for spec in default_executors()]
        assert names == [
            "pbsm", "rtree", "s3j", "shj", "sweep",
            "s3j@2w", "s3j@2w:residual", "s3j:memory", "s3j:memory@2w",
        ]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            default_executors(algorithms=("s3j", "nested"))

    def test_serial_run_captures_ledger(self):
        case = small_case()
        record = run_executor(case, ExecutorSpec("s3j"))
        assert record.pairs == oracle_pairs(case.dataset_a, case.dataset_b)
        assert record.ledger_total is not None
        assert record.registry is not None
        assert record.level_file_pages  # S3J leaves sorted level files

    def test_uninstrumented_run_has_no_registry(self):
        record = run_executor(small_case(), ExecutorSpec("sweep"), instrument=False)
        assert record.registry is None


def small_case() -> VerifyCase:
    return VerifyCase(
        "small",
        grid_aligned_dataset(8, 30, seed=11, name="SA"),
        grid_aligned_dataset(8, 30, seed=12, name="SB"),
    )


class TestInvariants:
    def test_healthy_s3j_run_passes_all(self):
        record = run_executor(small_case(), ExecutorSpec("s3j"))
        for invariant in DEFAULT_INVARIANTS:
            assert invariant.violations(record) == []

    def test_phase_buckets_detects_leak(self):
        record = run_executor(small_case(), ExecutorSpec("s3j"))
        bucket = next(iter(record.metrics.phases.values()))
        bucket.page_reads += 1  # doctor: a read escapes attribution
        violations = PhaseBucketsSumInvariant().violations(record)
        assert len(violations) == 1
        assert "page_reads" in violations[0].message

    def test_join_reads_once_detects_rescan(self):
        record = run_executor(small_case(), ExecutorSpec("s3j"))
        # Doctor: claim the sorted files are smaller than they are, so
        # the recorded physical reads look like re-reads.
        record.level_file_pages = {
            name: max(pages - 1, 0)
            for name, pages in record.level_file_pages.items()
        }
        violations = JoinReadsOnceInvariant().violations(record)
        assert violations
        assert any("pages" in v.message for v in violations)

    def test_join_reads_once_ignores_other_algorithms(self):
        record = run_executor(small_case(), ExecutorSpec("sweep"))
        assert JoinReadsOnceInvariant().violations(record) == []

    def test_replication_detects_fudged_factor(self):
        record = run_executor(small_case(), ExecutorSpec("s3j"))
        record.metrics.replication_a = 1.25
        violations = ReplicationInvariant().violations(record)
        assert len(violations) == 1
        assert "r_A" in violations[0].message

    def test_obs_parity_holds(self):
        assert check_obs_parity(small_case(), ExecutorSpec("s3j")) == []


class TestConformance:
    def test_grid_aligned_workload_conforms(self):
        case = cases_by_name(("grid-aligned",))[0]
        checked, violations = check_partition_conformance(case)
        assert checked == len(case.dataset_a) + len(case.dataset_b)
        assert violations == []

    def test_degenerate_workload_conforms(self):
        dataset = degenerate_dataset(8, 60, seed=3, name="D")
        checked, violations = check_partition_conformance(
            VerifyCase("deg", dataset, dataset)
        )
        assert checked == len(dataset)
        assert violations == []

    def test_catches_exclusive_hi_quantization(self, monkeypatch):
        """Reverting the cell_of fix (high corners quantized exclusively,
        the pre-fix behavior) must be caught by the conformance check."""
        from repro.filtertree.levels import LevelAssigner

        monkeypatch.setattr(
            LevelAssigner, "quantize_hi", LevelAssigner.quantize
        )
        case = cases_by_name(("grid-aligned",))[0]
        _, violations = check_partition_conformance(case)
        assert violations
        assert all(v.invariant == "partition-conformance" for v in violations)
        assert any("raised at level" in v.message for v in violations)


class TestHarness:
    def test_small_sweep_passes(self):
        report = run_verify(
            quick=True,
            cases=[small_case()],
            transforms=transforms_by_name(("axis-swap", "swap-ab")),
            executors=[ExecutorSpec("s3j"), ExecutorSpec("sweep")],
        )
        assert report.ok
        # 3 variants x 2 executors + 1 obs-parity pair (s3j only in quick).
        assert report.runs == 3 * 2 + 2
        assert report.pairs_checked > 0
        assert report.conformance_boxes == 60
        assert "PASS" in report.summary()
        assert report.to_dict()["ok"] is True

    def test_catches_boundary_dropping_join(self, monkeypatch):
        """A join kernel that drops boundary-contact pairs (the classic
        open-interval bug) must produce a minimized divergence."""
        import repro.baselines.sweep_join as sweep_module
        from repro.sweep.plane_sweep import sweep_intersections as real_sweep

        def open_interval_sweep(left, right, **kwargs):
            for rec_a, rec_b in real_sweep(left, right, **kwargs):
                touching = (
                    rec_a[XHI] == rec_b[XLO]
                    or rec_b[XHI] == rec_a[XLO]
                    or rec_a[YHI] == rec_b[YLO]
                    or rec_b[YHI] == rec_a[YLO]
                )
                if not touching:
                    yield rec_a, rec_b

        monkeypatch.setattr(
            sweep_module, "sweep_intersections", open_interval_sweep
        )
        report = run_verify(
            quick=True,
            cases=[small_case()],
            transforms=transforms_by_name(()),
            executors=[ExecutorSpec("sweep")],
            obs_parity=False,
        )
        assert not report.ok
        assert report.divergences
        divergence = report.divergences[0]
        assert divergence.executor == "sweep"
        assert divergence.diff.missing and not divergence.diff.extra
        counterexample = divergence.counterexample
        assert counterexample is not None
        assert len(counterexample.entities_a) <= 2
        assert len(counterexample.entities_b) <= 2
        assert "FAIL" in report.summary()

    def test_workload_catalog(self):
        with pytest.raises(ValueError, match="unknown workloads"):
            cases_by_name(("no-such-workload",))
        (case,) = cases_by_name(("mixed-self",))
        assert case.self_join

    @settings(deadline=None, max_examples=5)
    @given(st.integers(0, 3))
    def test_generated_workloads_deterministic_in_seed(self, seed):
        first = cases_by_name(("grid-aligned",), seed=seed)[0]
        second = cases_by_name(("grid-aligned",), seed=seed)[0]
        assert [e.mbr for e in first.dataset_a] == [
            e.mbr for e in second.dataset_a
        ]
