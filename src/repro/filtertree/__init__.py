"""Filter-Tree space decomposition (Sevcik & Koudas, VLDB 1996).

S3J constructs a Filter Tree partition of the space *on the fly*
without building complete Filter Tree indices (section 3).  This
subpackage provides:

- :class:`~repro.filtertree.levels.LevelAssigner` — the paper's
  ``Level(xl, yl, xh, yh)`` function: the number of initial bits in
  which the binary expansions of the MBR corner coordinates agree.
- :mod:`~repro.filtertree.occupancy` — the closed-form level-occupancy
  fractions ``f_i`` for uniformly distributed squares (equation 2),
  used by the analytic cost model.
- :mod:`~repro.filtertree.grid` — hierarchical-grid helpers (which
  level-``l`` cells a rectangle overlaps), used by DSB and PBSM.
- :class:`~repro.filtertree.index.FilterTreeIndex` — the complete
  Filter Tree access method: window queries and the indexed join.
"""

from repro.filtertree.grid import cell_of_point, cells_overlapping
from repro.filtertree.index import FilterTreeIndex
from repro.filtertree.levels import LevelAssigner, common_prefix_bits
from repro.filtertree.occupancy import level_fractions, lowest_level

__all__ = [
    "FilterTreeIndex",
    "LevelAssigner",
    "cell_of_point",
    "cells_overlapping",
    "common_prefix_bits",
    "level_fractions",
    "lowest_level",
]
