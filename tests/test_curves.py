"""Tests for the space-filling curves.

The properties tested here are exactly what S3J relies on:
bijectivity, the prefix/nesting property, and (for Hilbert) unit-step
adjacency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import GrayCurve, HilbertCurve, SpaceFillingCurve, ZOrderCurve, curve_by_name
from repro.curves.gray import gray_decode, gray_encode
from repro.curves.zorder import deinterleave_bits, interleave_bits

ALL_CURVES = [HilbertCurve, ZOrderCurve, GrayCurve]


@pytest.fixture(params=ALL_CURVES, ids=lambda cls: cls.name)
def curve(request):
    return request.param(order=5)


class TestInterface:
    def test_curve_by_name(self):
        assert isinstance(curve_by_name("hilbert"), HilbertCurve)
        assert isinstance(curve_by_name("zorder"), ZOrderCurve)
        assert isinstance(curve_by_name("z-order"), ZOrderCurve)
        assert isinstance(curve_by_name("Gray"), GrayCurve)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            curve_by_name("peano")

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            HilbertCurve(order=0)
        with pytest.raises(ValueError):
            HilbertCurve(order=32)

    def test_out_of_grid_raises(self, curve):
        with pytest.raises(ValueError):
            curve.key(curve.side, 0)
        with pytest.raises(ValueError):
            curve.point(curve.max_key + 1)

    def test_quantize(self):
        c = HilbertCurve(order=4)
        assert c.quantize(0.0) == 0
        assert c.quantize(1.0) == 15  # clamped to the grid
        assert c.quantize(0.5) == 8
        with pytest.raises(ValueError):
            c.quantize(1.5)


class TestBijection:
    def test_full_bijection_small_order(self, curve):
        keys = {
            curve.key(x, y) for x in range(curve.side) for y in range(curve.side)
        }
        assert keys == set(range(curve.side * curve.side))

    def test_roundtrip_all_cells(self, curve):
        for x in range(curve.side):
            for y in range(curve.side):
                assert curve.point(curve.key(x, y)) == (x, y)


class TestPrefixProperty:
    def test_cells_are_contiguous_ranges(self, curve):
        """Every level-l cell must map to one contiguous key range."""
        order = curve.order
        for level in range(order + 1):
            shift = order - level
            seen: dict[tuple[int, int], list[int]] = {}
            for x in range(curve.side):
                for y in range(curve.side):
                    seen.setdefault((x >> shift, y >> shift), []).append(
                        curve.key(x, y)
                    )
            cell_size = 1 << (2 * shift)
            for keys in seen.values():
                keys.sort()
                assert keys[-1] - keys[0] == cell_size - 1
                assert keys[0] % cell_size == 0

    def test_cell_key_range(self, curve):
        lo, hi = curve.cell_key_range(3, 4, 2)
        assert hi - lo == 1 << (2 * (curve.order - 2))
        key = curve.key(3, 4)
        assert lo <= key < hi

    def test_cell_key_range_level_bounds(self, curve):
        with pytest.raises(ValueError):
            curve.cell_key_range(0, 0, curve.order + 1)


class TestHilbertSpecifics:
    def test_order1_canonical_shape(self):
        c = HilbertCurve(order=1)
        assert [c.point(k) for k in range(4)] == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_adjacency(self):
        """Consecutive Hilbert keys are 4-neighbour grid cells."""
        c = HilbertCurve(order=6)
        px, py = c.point(0)
        for key in range(1, c.side * c.side):
            x, y = c.point(key)
            assert abs(x - px) + abs(y - py) == 1, f"jump at key {key}"
            px, py = x, y

    def test_cross_order_prefix_consistency(self):
        """The level-l key of a cell equals the full-precision key of an
        interior point truncated to 2l bits (used by DSB)."""
        fine = HilbertCurve(order=8)
        coarse = HilbertCurve(order=3)
        shift = 2 * (8 - 3)
        for x in range(0, fine.side, 7):
            for y in range(0, fine.side, 7):
                assert fine.key(x, y) >> shift == coarse.key(x >> 5, y >> 5)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=200)
    def test_scalar_roundtrip_full_precision(self, x, y):
        c = HilbertCurve(order=16)
        assert c.point(c.key(x, y)) == (x, y)


class TestVectorized:
    @pytest.mark.parametrize("cls", ALL_CURVES, ids=lambda c: c.name)
    def test_keys_matches_scalar(self, cls):
        curve = cls(order=16)
        rng = np.random.default_rng(7)
        xs = rng.integers(0, curve.side, size=300)
        ys = rng.integers(0, curve.side, size=300)
        batch = curve.keys(xs, ys)
        for x, y, key in zip(xs, ys, batch):
            assert curve.key(int(x), int(y)) == int(key)

    def test_keys_shape_mismatch_raises(self):
        c = HilbertCurve(order=4)
        with pytest.raises(ValueError):
            c.keys(np.array([1, 2]), np.array([1]))


class TestBitHelpers:
    @given(st.integers(0, 2**20 - 1))
    def test_gray_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(0, 2**20 - 1))
    def test_gray_adjacent_codes_differ_one_bit(self, value):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert diff.bit_count() == 1

    @given(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
    def test_interleave_roundtrip(self, x, y):
        assert deinterleave_bits(interleave_bits(x, y, 12), 12) == (x, y)

    def test_interleave_bit_positions(self):
        # x supplies the high bit of each 2-bit digit.
        assert interleave_bits(1, 0, 1) == 2
        assert interleave_bits(0, 1, 1) == 1


class TestKeyOfNormalized:
    def test_center_key_matches_quantized(self, curve):
        x, y = 0.3, 0.7
        expected = curve.key(curve.quantize(x), curve.quantize(y))
        assert curve.key_of_normalized(x, y) == expected

    def test_subclass_contract(self):
        assert issubclass(HilbertCurve, SpaceFillingCurve)
        assert issubclass(ZOrderCurve, SpaceFillingCurve)
        assert issubclass(GrayCurve, SpaceFillingCurve)


class TestKeyDtypeConsistency:
    """Vectorized keys are int64 — the signed dtype matching the scalar
    Python ints.  A uint64 result would silently promote to float64 the
    moment it mixed with signed arithmetic, corrupting keys above 2^53.
    """

    @pytest.mark.parametrize("cls", ALL_CURVES, ids=lambda c: c.name)
    def test_keys_are_int64(self, cls):
        curve = cls(order=16)
        keys = curve.keys(np.array([0, 5, 100]), np.array([3, 7, 200]))
        assert keys.dtype == np.int64

    @pytest.mark.parametrize("cls", ALL_CURVES, ids=lambda c: c.name)
    def test_mixing_with_signed_stays_integral(self, cls):
        curve = cls(order=16)
        keys = curve.keys(np.array([1, 2, 3]), np.array([4, 5, 6]))
        mixed = keys - np.int64(1)  # uint64 here would yield float64
        assert np.issubdtype(mixed.dtype, np.integer)

    @pytest.mark.parametrize("cls", ALL_CURVES, ids=lambda c: c.name)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_scalar_vector_agree_at_max_order(self, cls, data):
        """Property cross-check at order 31, where keys approach 2^62:
        any float64 round-trip would be off by thousands."""
        curve = cls(order=31)
        n = data.draw(st.integers(1, 8))
        xs = [data.draw(st.integers(0, curve.side - 1)) for _ in range(n)]
        ys = [data.draw(st.integers(0, curve.side - 1)) for _ in range(n)]
        batch = curve.keys(np.array(xs, dtype=np.int64), np.array(ys, dtype=np.int64))
        assert batch.dtype == np.int64
        for x, y, key in zip(xs, ys, batch):
            scalar = curve.key(x, y)
            assert int(key) == scalar
            assert 0 <= scalar <= curve.max_key
