"""Tests for straggler analytics (repro.obs.straggler) and the event
layer's two parity guarantees: the ledger is byte-identical with events
on or off, and merged metrics stay byte-identical across worker counts
with events enabled."""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.report import build_run_report
from repro.obs.straggler import ShardLane, StragglerAnalytics, analyze_events
from repro.parallel import parallel_spatial_join

from tests.conftest import make_squares


def small_inputs():
    return (
        make_squares(120, side=0.01, seed=1, name="A"),
        make_squares(150, side=0.02, seed=2, name="B"),
    )


def synthetic_events() -> list[dict]:
    """A hand-built stream: 3 shards on 2 workers; one residual
    straggler, one retried shard."""
    t0 = 1000.0
    return [
        {"type": "run_started", "ts": t0, "workers": 2, "algorithm": "s3j"},
        {"type": "shard_dispatched", "ts": t0 + 0.01, "shard_id": "cell-0",
         "kind": "cell", "attempt": 1, "records": 40},
        {"type": "shard_dispatched", "ts": t0 + 0.01, "shard_id": "cell-1",
         "kind": "cell", "attempt": 1, "records": 50},
        {"type": "shard_dispatched", "ts": t0 + 0.02, "shard_id": "residual-A",
         "kind": "residual-A", "attempt": 1, "records": 30},
        {"type": "shard_heartbeat", "ts": t0 + 0.05, "shard_id": "cell-0",
         "phase": "start"},
        {"type": "shard_completed", "ts": t0 + 1.05, "shard_id": "cell-0",
         "kind": "cell", "wall_s": 1.0, "pairs": 10,
         "phase_wall": {"join": 0.6, "partition": 0.4}},
        {"type": "shard_retry", "ts": t0 + 1.2, "shard_id": "cell-1",
         "error": "WorkerCrash"},
        {"type": "shard_dispatched", "ts": t0 + 1.2, "shard_id": "cell-1",
         "kind": "cell", "attempt": 2, "records": 50},
        {"type": "shard_completed", "ts": t0 + 2.2, "shard_id": "cell-1",
         "kind": "cell", "wall_s": 1.0, "pairs": 12, "phase_wall": {}},
        {"type": "shard_completed", "ts": t0 + 4.02, "shard_id": "residual-A",
         "kind": "residual-A", "wall_s": 4.0, "pairs": 3,
         "phase_wall": {"join": 3.0, "sort": 1.0}},
        {"type": "run_completed", "ts": t0 + 4.1, "pairs": 25},
    ]


class TestAnalyzeEvents:
    def test_empty_stream(self):
        analytics = analyze_events([])
        assert analytics.lanes == []
        assert analytics.imbalance_factor is None
        assert analytics.makespan_s == 0.0

    def test_lane_per_shard(self):
        analytics = analyze_events(synthetic_events())
        assert [lane.shard_id for lane in analytics.lanes] == [
            "cell-0", "cell-1", "residual-A",
        ]
        assert analytics.workers == 2

    def test_imbalance_factor_is_max_over_mean(self):
        analytics = analyze_events(synthetic_events())
        # durations 1.0, 1.0, 4.0 -> mean 2.0, max 4.0
        assert analytics.imbalance_factor == pytest.approx(2.0)

    def test_residual_share(self):
        analytics = analyze_events(synthetic_events())
        assert analytics.residual_share == pytest.approx(4.0 / 6.0)

    def test_critical_path_is_slowest_shard(self):
        analytics = analyze_events(synthetic_events())
        cp = analytics.critical_path
        assert cp["shard_id"] == "residual-A"
        assert cp["wall_s"] == pytest.approx(4.0)
        assert cp["phase_wall"]["join"] == pytest.approx(3.0)

    def test_retry_counted_and_attempts_tracked(self):
        analytics = analyze_events(synthetic_events())
        assert analytics.retries == 1
        by_id = {lane.shard_id: lane for lane in analytics.lanes}
        assert by_id["cell-1"].attempts == 2
        assert by_id["cell-0"].attempts == 1

    def test_lane_start_prefers_first_worker_event(self):
        analytics = analyze_events(synthetic_events())
        by_id = {lane.shard_id: lane for lane in analytics.lanes}
        # cell-0's heartbeat at t0+0.05 beats its dispatch at t0+0.01.
        assert by_id["cell-0"].start_s == pytest.approx(0.05)
        # residual-A never heartbeat: dispatch time is used.
        assert by_id["residual-A"].start_s == pytest.approx(0.02)

    def test_duration_percentiles_are_exact(self):
        analytics = analyze_events(synthetic_events())
        pct = analytics.duration_percentiles
        assert pct["p50"] == pytest.approx(1.0)
        assert pct["max"] == pytest.approx(4.0)

    def test_failed_shard_gets_failed_lane(self):
        events = [
            {"type": "shard_dispatched", "ts": 1.0, "shard_id": "cell-0",
             "kind": "cell", "attempt": 1},
            {"type": "shard_failed", "ts": 2.0, "shard_id": "cell-0",
             "attempts": 3, "error": "WorkerCrash"},
        ]
        analytics = analyze_events(events)
        (lane,) = analytics.lanes
        assert lane.failed
        assert analytics.failures == 1
        assert analytics.critical_path is None

    def test_round_trip(self):
        analytics = analyze_events(synthetic_events())
        restored = StragglerAnalytics.from_dict(analytics.to_dict())
        assert restored.to_dict() == analytics.to_dict()
        assert isinstance(restored.lanes[0], ShardLane)


class TestIntegration:
    def test_sharded_run_populates_report_analytics(self):
        # Pinned to the legacy planner: this checks that a plan *with*
        # a residual shard reports a strictly-interior residual share.
        dataset_a, dataset_b = small_inputs()
        obs = Observability(events=EventLog())
        result = parallel_spatial_join(
            dataset_a, dataset_b, workers=2, planner="residual", obs=obs
        )
        report = build_run_report(result, obs)
        assert report.events
        types = {event["type"] for event in report.events}
        assert {"run_started", "shard_dispatched", "shard_completed",
                "run_completed"} <= types
        analytics = report.analytics
        tasks = result.metrics.details["plan"]["tasks"]
        assert len(analytics["shards"]) == tasks
        assert analytics["imbalance_factor"] >= 1.0
        assert analytics["record_imbalance_factor"] >= 1.0
        assert analytics["workers"] == 2
        assert analytics["planner"] == "residual"
        assert 0.0 < analytics["residual_share"] < 1.0
        assert analytics["critical_path"] is not None

    def test_two_layer_run_reports_zero_residual_share(self):
        # The default planner has no residual shard by construction.
        dataset_a, dataset_b = small_inputs()
        obs = Observability(events=EventLog())
        parallel_spatial_join(dataset_a, dataset_b, workers=2, obs=obs)
        analytics = analyze_events(obs.events.to_dicts())
        assert analytics.planner == "two-layer"
        assert analytics.residual_share == 0.0
        assert all("residual" not in lane.kind for lane in analytics.lanes)

    def test_worker_events_ship_through_result_payload(self):
        dataset_a, dataset_b = small_inputs()
        obs = Observability(events=EventLog())
        parallel_spatial_join(dataset_a, dataset_b, workers=2, obs=obs)
        progress = [
            event
            for event in obs.events.to_dicts()
            if event["type"] == "shard_progress"
        ]
        # Worker-side algorithm hooks buffered these and shipped them
        # back with the shard results.
        assert progress
        assert all("shard_id" in event for event in progress)

    def test_events_only_obs_skips_span_and_metric_instrumentation(self):
        from repro.obs import NULL_METRICS, NULL_TRACER

        dataset_a, dataset_b = small_inputs()
        obs = Observability(
            tracer=NULL_TRACER, metrics=NULL_METRICS, events=EventLog()
        )
        parallel_spatial_join(dataset_a, dataset_b, workers=2, obs=obs)
        assert obs.events.to_dicts()
        assert obs.tracer.roots == []  # null tracer collected nothing


class TestParityGates:
    """The tentpole's acceptance gates."""

    def test_ledger_identical_with_events_on_and_off(self):
        dataset_a, dataset_b = small_inputs()
        plain = parallel_spatial_join(dataset_a, dataset_b, workers=2)
        observed = parallel_spatial_join(
            dataset_a,
            dataset_b,
            workers=2,
            obs=Observability(events=EventLog()),
        )
        assert plain.metrics.to_dict() == observed.metrics.to_dict()
        assert plain.pairs == observed.pairs

    @pytest.mark.parametrize("algorithm", ("s3j", "pbsm", "shj"))
    def test_metrics_identical_across_worker_counts_with_events(
        self, algorithm
    ):
        dataset_a, dataset_b = small_inputs()
        dumps = []
        for workers in (1, 2):
            obs = Observability(events=EventLog())
            result = parallel_spatial_join(
                dataset_a, dataset_b, algorithm=algorithm,
                workers=workers, obs=obs,
            )
            assert obs.events.to_dicts()  # events flowed either way
            dumps.append(result.metrics.to_dict())
        assert dumps[0] == dumps[1]

    def test_serial_ledger_identical_with_events_on_and_off(self):
        from repro.experiments.runner import run_algorithm

        dataset_a, dataset_b = small_inputs()
        plain = run_algorithm(dataset_a, dataset_b, "s3j")
        obs = Observability(events=EventLog())
        observed = run_algorithm(dataset_a, dataset_b, "s3j", obs=obs)
        assert (
            plain.result.metrics.to_dict() == observed.result.metrics.to_dict()
        )
        types = [event["type"] for event in obs.events.to_dicts()]
        assert types[0] == "run_started"
        assert types[-1] == "run_completed"
        assert "shard_progress" in types
