"""The sharded join executor: run a :class:`ShardPlan` and merge.

Each :class:`~repro.parallel.planner.ShardTask` is one complete,
independent spatial join — the worker runs the *unmodified* algorithm
(:func:`repro.join.api.spatial_join`) over the shard's datasets with
its own :class:`~repro.storage.manager.StorageManager`, ledger, and
observability, and ships back a picklable summary (sorted pairs, the
metrics dict, metric series, span trees).

Determinism: the plan is a pure function of the inputs and the shard
level (never of the worker count), tasks are submitted and merged in
plan order, and every merged quantity (pair set, per-phase ledger sums,
weighted replication factors, the details dict) is computed from the
per-shard summaries alone — so a run with ``workers=4`` returns metrics
byte-identical to ``workers=1``, which executes the very same worker
function in-process.

Merging rules (DESIGN.md section 9):

- **pairs** — union over shards, then
  :func:`~repro.join.result.canonical_pairs` (a self join's residual
  cross join reintroduces mirrored pairs; cell shards of a non-self
  join are disjoint by construction).
- **ledger** — per-phase :class:`~repro.storage.iostats.PhaseStats`
  add up (``merged_into``), so the merged totals are exactly the sum
  of the per-shard ledgers.
- **replication** — input-size-weighted average of the per-shard
  factors (equation 9 is a ratio, so shard ratios are weighted by the
  records that produced them).
- **observability** — worker span trees are grafted under one
  ``parallel_join`` root as ``shard:<id>`` children; worker metric
  registries fold into the caller's via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_dump`.

Fault tolerance (DESIGN.md section 11): shards are dispatched in
rounds.  A shard whose worker times out (``shard_timeout_s``) or dies
(:class:`BrokenProcessPool`, or an injected
:class:`~repro.faults.errors.WorkerCrashError`) is re-dispatched up to
``shard_retries`` extra attempts on a fresh pool; any *other* worker
exception is deterministic (a rerun replays the same fault plan) and
fails the shard at once.  Two broken pools degrade the run to
in-process execution.  Shards still dead after the retry budget either
raise :class:`~repro.faults.errors.ShardExecutionError` (the default)
or — with ``partial_results=True`` — come back as structured
:class:`~repro.faults.errors.ShardFailure` reports on
:attr:`JoinResult.failures`, with pairs from the completed shards only.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.faults.errors import (
    ShardExecutionError,
    ShardFailure,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.join.dataset import SpatialDataset
from repro.join.metrics import JoinMetrics
from repro.join.predicates import Intersects, JoinPredicate
from repro.join.result import JoinResult, canonical_pairs
from repro.obs import (
    NULL_EVENTS,
    NULL_TRACER,
    BufferedEventSink,
    EventSink,
    Observability,
    Span,
    TABLE2_PHASES,
    phase_wall_times,
)
from repro.parallel.planner import (
    DEFAULT_PLANNER,
    MiniJoin,
    ShardPlan,
    ShardTask,
    default_shard_level,
    plan_join,
)
from repro.storage.iostats import PhaseStats
from repro.storage.manager import StorageConfig, StorageManager

POOL_BREAKS_BEFORE_DEGRADE = 2
"""Broken process pools tolerated before the executor stops trusting
subprocesses and degrades the rest of the run to in-process execution."""


def _shard_payload(
    task: ShardTask,
    algorithm: str,
    predicate: JoinPredicate,
    config: StorageConfig | None,
    refine: bool,
    instrument: bool,
    params: dict[str, Any],
    mode: str = "ledger",
    events: bool = False,
) -> dict[str, Any]:
    """Everything one worker needs, as a picklable dict.

    A two-layer tile task ships its ``mini_joins`` instead of the
    union datasets (the class subsets partition the tile, so shipping
    both would pickle every entity twice); the worker reconstructs the
    per-side input counts from the subsets.
    """
    return {
        "shard_id": task.shard_id,
        "kind": task.kind,
        "dataset_a": None if task.mini_joins else task.dataset_a,
        "dataset_b": (
            None if task.mini_joins or task.self_join else task.dataset_b
        ),
        "self_join": task.self_join,
        "mini_joins": task.mini_joins or None,
        "input_records": task.input_records,
        "algorithm": algorithm,
        "predicate": predicate,
        "config": config,
        "refine": refine,
        "instrument": instrument,
        "params": params,
        "mode": mode,
        "events": events,
    }


def _fold_mini_metrics(
    metrics_list: list[JoinMetrics],
    weights: list[int],
    algorithm: str,
    config: StorageConfig | None,
) -> JoinMetrics:
    """Fold one tile's per-mini-join ledgers into one shard ledger.

    The same rules the cross-shard merge uses (per-phase
    :class:`PhaseStats` sums, input-weighted replication factors), so
    the final merged metrics are independent of where the fold happens
    — and therefore of the worker count.
    """
    phases: dict[str, PhaseStats] = {}
    for metrics in metrics_list:
        for name, stats in metrics.phases.items():
            stats.merged_into(phases.setdefault(name, PhaseStats()))
    if metrics_list:
        phase_names = metrics_list[0].phase_names
        cost_model = metrics_list[0].cost_model
    else:  # degenerate tile: planner never schedules one, but be safe
        phase_names = TABLE2_PHASES.get(algorithm.lower(), ())
        cost_model = (config or StorageConfig()).cost_model
    total_weight = sum(weights)
    if total_weight:
        replication_a = (
            sum(m.replication_a * w for m, w in zip(metrics_list, weights))
            / total_weight
        )
        replication_b = (
            sum(m.replication_b * w for m, w in zip(metrics_list, weights))
            / total_weight
        )
    else:
        replication_a = replication_b = 1.0
    return JoinMetrics(
        algorithm=algorithm,
        phase_names=phase_names,
        phases=phases,
        cost_model=cost_model,
        replication_a=replication_a,
        replication_b=replication_b,
        details={},
    )


def _run_shard(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one shard's sub-join (module-level so it pickles).

    Runs in a worker process for ``workers > 1`` and in-process for
    ``workers = 1`` — the same code path either way, so worker count
    can only affect wall-clock, never results.
    """
    from repro.join.api import spatial_join

    config: StorageConfig | None = payload["config"]
    fault_plan = config.fault_plan if config is not None else None
    if fault_plan is not None:
        shard_id = payload["shard_id"]
        attempt = payload.get("attempt", 1)
        if fault_plan.delays_shard(shard_id, attempt):
            time.sleep(fault_plan.delay_s)  # real time: exercises timeouts
        if fault_plan.crashes_shard(shard_id, attempt):
            if payload.get("in_subprocess"):
                # Die the way a real crashed worker does — no exception,
                # no cleanup — so the executor sees a broken pool.
                os._exit(23)
            raise WorkerCrashError(
                f"injected crash of shard {shard_id} (attempt {attempt})"
            )
    if config is not None and config.backend == "disk" and config.directory is not None:
        # A shared on-disk directory would collide across shards (every
        # sub-join names its files input-A-<n>...): give each worker a
        # private temporary directory instead.
        config = dataclasses.replace(config, directory=None)
    sink = (
        BufferedEventSink(shard_id=payload["shard_id"])
        if payload.get("events")
        else None
    )
    obs: Observability | None = None
    if payload["instrument"]:
        obs = Observability(events=sink)
    elif sink is not None:
        obs = Observability.disabled()
        obs.events = sink
    if sink is not None:
        # The sink's first event timestamps the true worker start (pool
        # queueing delay shows up as the gap after shard_dispatched).
        sink.emit("shard_heartbeat", phase="start")

    minis: tuple[MiniJoin, ...] | None = payload.get("mini_joins")
    wall_t0 = time.perf_counter()
    # File-name counters are scoped per storage manager, and every
    # sub-join here builds a fresh manager from ``config`` — so file
    # labels are a pure function of the shard's (deterministic)
    # composition, regardless of worker count or which pool process the
    # shard landed on.
    if minis:
        # A two-layer tile shard: run the class-pair mini-joins in
        # plan order.
        pair_set: set[tuple[int, int]] = set()
        refined_set: set[tuple[int, int]] = set()
        mini_metrics: list[JoinMetrics] = []
        breakdown: list[dict[str, Any]] = []
        for mini in minis:
            sub_b = mini.dataset_a if mini.self_join else mini.dataset_b
            result = spatial_join(
                mini.dataset_a,
                sub_b,
                algorithm=payload["algorithm"],
                predicate=payload["predicate"],
                storage=config,
                refine=payload["refine"],
                obs=obs,
                mode=payload.get("mode", "ledger"),
                **payload["params"],
            )
            pair_set.update(result.pairs)
            if result.refined is not None:
                refined_set.update(result.refined)
            mini_metrics.append(result.metrics)
            breakdown.append(
                {
                    "label": mini.label,
                    "input_records": mini.input_records,
                    "pairs": len(result.pairs),
                }
            )
        pairs = sorted(pair_set)
        refined = sorted(refined_set) if payload["refine"] else None
        metrics = _fold_mini_metrics(
            mini_metrics,
            [mini.input_records for mini in minis],
            payload["algorithm"],
            config,
        )
        metrics.details["mini_joins"] = breakdown
        metrics_dict = metrics.to_dict()
    else:
        dataset_a: SpatialDataset = payload["dataset_a"]
        dataset_b: SpatialDataset = (
            dataset_a if payload["self_join"] else payload["dataset_b"]
        )
        result = spatial_join(
            dataset_a,
            dataset_b,
            algorithm=payload["algorithm"],
            predicate=payload["predicate"],
            storage=config,
            refine=payload["refine"],
            obs=obs,
            mode=payload.get("mode", "ledger"),
            **payload["params"],
        )
        pairs = sorted(result.pairs)
        refined = (
            None if result.refined is None else sorted(result.refined)
        )
        metrics_dict = result.metrics.to_dict()
    shard_wall_s = time.perf_counter() - wall_t0

    out: dict[str, Any] = {
        "shard_id": payload["shard_id"],
        "kind": payload["kind"],
        "input_records": payload["input_records"],
        "pairs": pairs,
        "refined": refined,
        "metrics": metrics_dict,
        "shard_wall_s": shard_wall_s,
    }
    if minis:
        out["mini_joins"] = len(minis)
    if payload["instrument"] and obs is not None:
        out["metric_series"] = obs.metrics.as_dict()
        out["spans"] = obs.tracer.to_dicts()
        out["phase_wall"] = phase_wall_times(obs.tracer.roots)
    if sink is not None:
        out["events"] = sink.to_dicts()
    return out


def _attempt_payload(
    payload: dict[str, Any], attempt: int, in_subprocess: bool
) -> dict[str, Any]:
    """The payload for one dispatch attempt of one shard."""
    updated = dict(payload)
    updated["attempt"] = attempt
    updated["in_subprocess"] = in_subprocess
    return updated


def _retryable(error: BaseException) -> bool:
    """Whether re-dispatching the shard could plausibly help.

    Timeouts and worker deaths are environmental; anything else a
    worker raises is deterministic — the shard replays the same fault
    plan on a rerun — so it fails the shard immediately.
    """
    return isinstance(error, (ShardTimeoutError, WorkerCrashError))


def _dispatch_round(
    entries: list[tuple[int, dict[str, Any]]],
    pool_size: int,
    timeout_s: float | None,
) -> tuple[dict[int, dict[str, Any]], dict[int, BaseException], bool]:
    """Run one round of shard attempts on a fresh process pool.

    Returns per-index results, per-index errors, and whether the pool
    broke.  A round that saw a timeout or a broken pool abandons its
    pool without waiting (stragglers exit on their own) so a hung shard
    cannot hang the executor.
    """
    results: dict[int, dict[str, Any]] = {}
    errors: dict[int, BaseException] = {}
    pool_broke = False
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=pool_size)
    try:
        futures = [
            (index, payload, pool.submit(_run_shard, payload))
            for index, payload in entries
        ]
        for index, payload, future in futures:
            shard_id = payload["shard_id"]
            try:
                results[index] = future.result(timeout=timeout_s)
            except FuturesTimeoutError:
                errors[index] = ShardTimeoutError(
                    f"shard {shard_id} exceeded the per-shard timeout "
                    f"of {timeout_s}s"
                )
                abandoned = True
            except BrokenProcessPool:
                # The crashed worker takes the whole pool down, so
                # every unfinished shard of this round lands here; all
                # of them are innocent-until-retried next round.
                errors[index] = WorkerCrashError(
                    f"worker process died while shard {shard_id} was "
                    f"in flight (broken process pool)"
                )
                pool_broke = True
                abandoned = True
            except Exception as error:
                errors[index] = error
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
    return results, errors, pool_broke


def _execute_tasks(
    payloads: list[dict[str, Any]],
    tasks: list[ShardTask],
    workers: int,
    shard_timeout_s: float | None,
    max_attempts: int,
    obs: Observability | None,
    run_t0: float | None = None,
) -> tuple[
    list[dict[str, Any] | None], tuple[ShardFailure, ...], dict[str, float]
]:
    """Run every shard, re-dispatching recoverable failures.

    Returns the per-shard results in plan order (``None`` where a shard
    ultimately failed), the structured failure reports, and the
    per-shard dispatch offsets (seconds after ``run_t0``, used to place
    grafted worker span trees on the parent timeline).

    Shard lifecycle events (`shard_dispatched` / `shard_retry` /
    `shard_timed_out` / `shard_failed` / `shard_completed`) stream into
    ``obs.events`` as they happen; a completed shard's buffered worker
    events are folded in just before its completion event.
    """
    metrics = obs.active_metrics if obs is not None else None
    events: EventSink = obs.events if obs is not None else NULL_EVENTS
    if run_t0 is None:
        run_t0 = time.perf_counter()
    count = len(payloads)
    results: list[dict[str, Any] | None] = [None] * count
    failures: dict[int, ShardFailure] = {}
    attempts = [0] * count
    grace_used = [False] * count
    pending = list(range(count))
    in_process = workers == 1 or count <= 1
    pool_breaks = 0
    dispatch_offsets: dict[str, float] = {}
    while pending:
        # Dispatch largest input first (ties broken by plan order): a
        # heavy shard planned late can no longer start last and stretch
        # the makespan.  The order is a pure function of the plan —
        # identical for every worker count — and results still merge in
        # plan order, so merged metrics stay byte-identical.
        pending.sort(key=lambda index: (-tasks[index].input_records, index))
        round_entries: list[tuple[int, dict[str, Any]]] = []
        for index in pending:
            attempts[index] += 1
            round_entries.append(
                (
                    index,
                    _attempt_payload(
                        payloads[index], attempts[index], not in_process
                    ),
                )
            )
            task = tasks[index]
            # Always stamped (not only when events flow): grafted span
            # trees need the dispatch offset to land on the parent
            # timeline whenever the tracer is enabled.
            dispatch_offsets[task.shard_id] = time.perf_counter() - run_t0
            if events.enabled:
                events.emit(
                    "shard_dispatched",
                    shard_id=task.shard_id,
                    kind=task.kind,
                    attempt=attempts[index],
                    records=task.input_records,
                    in_process=in_process,
                )
        if in_process:
            round_results: dict[int, dict[str, Any]] = {}
            round_errors: dict[int, BaseException] = {}
            pool_broke = False
            for index, payload in round_entries:
                # Sequential execution: re-stamp the dispatch offset at
                # the moment the shard actually starts, so grafted span
                # trees line up even without a process pool.
                dispatch_offsets[payload["shard_id"]] = (
                    time.perf_counter() - run_t0
                )
                try:
                    round_results[index] = _run_shard(payload)
                except Exception as error:
                    round_errors[index] = error
        else:
            round_results, round_errors, pool_broke = _dispatch_round(
                round_entries, min(workers, len(round_entries)), shard_timeout_s
            )
        for index, result in sorted(round_results.items()):
            results[index] = result
            if events.enabled:
                worker_events = result.get("events")
                if worker_events:
                    events.extend(worker_events)
                events.emit(
                    "shard_completed",
                    shard_id=result["shard_id"],
                    kind=result["kind"],
                    attempt=attempts[index],
                    wall_s=result.get("shard_wall_s", 0.0),
                    pairs=len(result["pairs"]),
                    phase_wall=result.get("phase_wall"),
                )
        retry_queue: list[int] = []
        degrade = False
        for index, error in sorted(round_errors.items()):
            task = tasks[index]
            if isinstance(error, ShardTimeoutError):
                if metrics is not None:
                    metrics.count("parallel.shard_timeouts")
                if events.enabled:
                    events.emit(
                        "shard_timed_out",
                        shard_id=task.shard_id,
                        attempt=attempts[index],
                        timeout_s=shard_timeout_s,
                    )
            if _retryable(error) and attempts[index] < max_attempts:
                retry_queue.append(index)
                if metrics is not None:
                    metrics.count(
                        "parallel.redispatches", error=type(error).__name__
                    )
                if events.enabled:
                    events.emit(
                        "shard_retry",
                        shard_id=task.shard_id,
                        attempt=attempts[index],
                        error=type(error).__name__,
                    )
                continue
            if (
                isinstance(error, WorkerCrashError)
                and not in_process
                and not grace_used[index]
            ):
                # A broken pool takes every in-flight shard down with
                # the crasher, so a crash here may be collateral: grant
                # one final *in-process* attempt, where a genuine
                # crasher fails deterministically on its own and the
                # innocent shards complete.
                grace_used[index] = True
                degrade = True
                retry_queue.append(index)
                if events.enabled:
                    events.emit(
                        "shard_retry",
                        shard_id=task.shard_id,
                        attempt=attempts[index],
                        error=type(error).__name__,
                        grace=True,
                    )
                continue
            failures[index] = ShardFailure(
                shard_id=task.shard_id,
                kind=task.kind,
                error_type=type(error).__name__,
                message=str(error),
                attempts=attempts[index],
            )
            if metrics is not None:
                metrics.count(
                    "parallel.shard_failures", error=type(error).__name__
                )
            if events.enabled:
                events.emit(
                    "shard_failed",
                    shard_id=task.shard_id,
                    attempts=attempts[index],
                    error=type(error).__name__,
                )
        if pool_broke:
            pool_breaks += 1
            if metrics is not None:
                metrics.count("parallel.pool_breaks")
            if pool_breaks >= POOL_BREAKS_BEFORE_DEGRADE:
                degrade = True
        if degrade and not in_process:
            in_process = True
            if metrics is not None:
                metrics.count("parallel.degraded")
        pending = retry_queue
    ordered_failures = tuple(failures[i] for i in sorted(failures))
    return results, ordered_failures, dispatch_offsets


def _merge_metrics(
    shard_results: list[dict[str, Any]],
    algorithm: str,
    plan: ShardPlan,
    config: StorageConfig | None,
    mode: str = "ledger",
) -> JoinMetrics:
    """Fold per-shard :class:`JoinMetrics` dumps into one ledger."""
    shard_metrics = [JoinMetrics.from_dict(r["metrics"]) for r in shard_results]

    phases: dict[str, PhaseStats] = {}
    for metrics in shard_metrics:
        for name, stats in metrics.phases.items():
            stats.merged_into(phases.setdefault(name, PhaseStats()))

    if shard_metrics:
        phase_names = shard_metrics[0].phase_names
        cost_model = shard_metrics[0].cost_model
    else:  # degenerate plan (an empty input side): nothing ran
        phase_names = TABLE2_PHASES.get(algorithm.lower(), ())
        cost_model = (config or StorageConfig()).cost_model

    weights = [r["input_records"] for r in shard_results]
    total_weight = sum(weights)
    if total_weight:
        replication_a = (
            sum(m.replication_a * w for m, w in zip(shard_metrics, weights))
            / total_weight
        )
        replication_b = (
            sum(m.replication_b * w for m, w in zip(shard_metrics, weights))
            / total_weight
        )
    else:
        replication_a = replication_b = 1.0

    # Deliberately excludes the worker count: it is an execution knob
    # that may only change wall-clock, so the merged metrics must be
    # byte-identical for every value of it (it lives on the
    # ``parallel_join`` span instead).
    details: dict[str, Any] = {
        "parallel": True,
        "plan": plan.describe(),
    }
    if mode != "ledger":
        # Only non-default modes are recorded, so ledger-mode reports
        # stay byte-identical to the pre-fastpath ones.
        details["mode"] = mode
    details |= {
        "shards": [
            {
                "shard_id": r["shard_id"],
                "kind": r["kind"],
                "input_records": r["input_records"],
                "pairs": len(r["pairs"]),
                "total_ios": m.total_ios,
                "response_time": m.response_time,
                # Only two-layer tile shards carry the key, so legacy
                # reports keep their pre-two-layer shape.
                **(
                    {"mini_joins": r["mini_joins"]}
                    if "mini_joins" in r
                    else {}
                ),
            }
            for r, m in zip(shard_results, shard_metrics)
        ],
    }
    return JoinMetrics(
        algorithm=algorithm,
        phase_names=phase_names,
        phases=phases,
        cost_model=cost_model,
        replication_a=replication_a,
        replication_b=replication_b,
        details=details,
    )


def _shift_spans(spans: list[Span], offset: float) -> None:
    """Move a grafted worker span subtree onto the parent timeline.

    Worker span ``start_s`` values are relative to the *worker's*
    tracer epoch (which opens at shard start); adding the shard's
    dispatch offset expresses them on the parent tracer's timeline, so
    exports like ``to_chrome_trace`` see one consistent clock where
    children never begin before their parents.
    """
    for span in spans:
        span.start_s += offset
        _shift_spans(span.children, offset)


def _graft_observability(
    obs: Observability,
    root: Span,
    shard_results: list[dict[str, Any]],
    dispatch_offsets: dict[str, float] | None = None,
) -> None:
    """Attach worker span trees and metric series to the caller's obs."""
    dispatch_offsets = dispatch_offsets or {}
    for result in shard_results:
        spans = result.get("spans")
        if spans is not None and obs.tracer.enabled:
            start_s = root.start_s + dispatch_offsets.get(result["shard_id"], 0.0)
            shard_span = Span(
                f"shard:{result['shard_id']}",
                start_s,
                {"kind": result["kind"], "input_records": result["input_records"]},
            )
            shard_span.children = [Span.from_dict(d) for d in spans]
            _shift_spans(shard_span.children, start_s)
            # Cover the children: a worker's tree may start a little
            # after dispatch (pool latency), so the shard span must end
            # at the latest child's end, not after the summed walls.
            shard_span.wall_s = max(
                (c.start_s + c.wall_s for c in shard_span.children),
                default=start_s,
            ) - start_s
            shard_span.cpu_s = sum(c.cpu_s for c in shard_span.children)
            root.children.append(shard_span)
        series = result.get("metric_series")
        if series is not None and obs.metrics.enabled:
            obs.metrics.merge_dump(series)


def parallel_spatial_join(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    algorithm: str = "s3j",
    predicate: JoinPredicate | None = None,
    storage: StorageConfig | None = None,
    refine: bool = False,
    obs: Observability | None = None,
    workers: int = 1,
    shard_level: int | None = None,
    planner: str = DEFAULT_PLANNER,
    mode: str = "ledger",
    shard_timeout_s: float | None = None,
    shard_retries: int = 1,
    partial_results: bool = False,
    **params: Any,
) -> JoinResult:
    """Run a spatial join sharded by Hilbert key range.

    ``planner`` selects the decomposition (see
    :mod:`repro.parallel.planner`): ``"two-layer"`` (default) routes
    every entity to per-tile A/B/C/D classes and runs class-pair
    mini-joins per tile — no residual straggler shard; ``"residual"``
    is the legacy ``4^shard_level`` cells + residual decomposition.
    Either way the independent sub-joins run on ``workers`` processes
    (in-process when ``workers=1``), and pair sets, ledgers, and
    observability output merge deterministically — the result is
    identical for every worker count.

    ``storage`` must be a :class:`StorageConfig` (or ``None`` for the
    per-shard paper default): a live :class:`StorageManager` cannot be
    shared across processes.  Passing the same object for both datasets
    runs a self join, exactly as in :func:`~repro.join.api.spatial_join`.

    Fault tolerance: ``shard_timeout_s`` bounds each shard attempt's
    wait (``None`` = no timeout); timeouts and worker crashes are
    re-dispatched up to ``shard_retries`` extra attempts.  Shards that
    stay dead raise :class:`~repro.faults.errors.ShardExecutionError`,
    or — with ``partial_results=True`` — are reported on
    :attr:`JoinResult.failures` while the completed shards' pairs are
    returned as a declared-partial result.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if shard_retries < 0:
        raise ValueError("shard_retries must be non-negative")
    if shard_timeout_s is not None and shard_timeout_s <= 0:
        raise ValueError("shard_timeout_s must be positive (or None)")
    if isinstance(storage, StorageManager):
        raise ValueError(
            "parallel_spatial_join needs a StorageConfig, not a live "
            "StorageManager: every shard builds its own storage"
        )
    if mode == "memory" and storage is not None:
        raise ValueError(
            "mode='memory' runs without storage simulation; "
            "storage must be None"
        )
    from repro.join.api import available_algorithms

    if algorithm.lower() not in available_algorithms():
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {available_algorithms()}"
        )
    predicate = predicate or Intersects()
    self_join = dataset_a is dataset_b
    if shard_level is None:
        shard_level = default_shard_level(workers)

    plan = plan_join(
        dataset_a,
        dataset_b,
        shard_level,
        curve=params.get("curve"),
        margin=predicate.mbr_margin,
        planner=planner,
    )
    instrument = obs is not None and (
        obs.tracer.enabled or obs.metrics.enabled
    )
    events: EventSink = obs.events if obs is not None else NULL_EVENTS
    payloads = [
        _shard_payload(
            task, algorithm, predicate, storage, refine, instrument, params,
            mode=mode, events=events.enabled,
        )
        for task in plan.tasks
    ]

    tracer = obs.tracer if obs is not None else NULL_TRACER
    with tracer.span(
        "parallel_join",
        algorithm=algorithm,
        workers=workers,
        shard_level=shard_level,
        planner=planner,
        tasks=len(plan.tasks),
        self_join=self_join,
    ) as root:
        run_t0 = time.perf_counter()
        if events.enabled:
            events.emit(
                "run_started",
                algorithm=algorithm,
                mode=mode,
                workers=workers,
                shard_level=shard_level,
                planner=planner,
                tasks=len(plan.tasks),
                self_join=self_join,
            )
        ordered_results, failures, dispatch_offsets = _execute_tasks(
            payloads,
            list(plan.tasks),
            workers,
            shard_timeout_s,
            1 + shard_retries,
            obs,
            run_t0=run_t0,
        )
        if failures and not partial_results:
            raise ShardExecutionError(failures)
        # Plan order, completed shards only (all of them when fault-free).
        shard_results = [r for r in ordered_results if r is not None]

        raw_pairs: set[tuple[int, int]] = set()
        for result in shard_results:
            raw_pairs.update(tuple(pair) for pair in result["pairs"])
        pairs = canonical_pairs(raw_pairs, self_join)

        refined = None
        if refine:
            raw_refined: set[tuple[int, int]] = set()
            for result in shard_results:
                raw_refined.update(tuple(pair) for pair in result["refined"] or ())
            refined = canonical_pairs(raw_refined, self_join)

        metrics = _merge_metrics(shard_results, algorithm, plan, storage, mode)
        metrics.details["shard_level"] = shard_level
        if failures:
            # Only on declared-partial results, so fault-free reports
            # stay byte-identical to the pre-fault-subsystem ones.
            metrics.details["shard_failures"] = [f.to_dict() for f in failures]
            root.set(shard_failures=len(failures))

        if obs is not None and obs.enabled:
            _graft_observability(obs, root, shard_results, dispatch_offsets)
        root.set(candidate_pairs=len(pairs))
        if events.enabled:
            events.emit(
                "run_completed",
                algorithm=algorithm,
                pairs=len(pairs),
                wall_s=time.perf_counter() - run_t0,
                completed_shards=len(shard_results),
                failed_shards=len(failures),
            )

    return JoinResult(
        pairs=pairs,
        metrics=metrics,
        self_join=self_join,
        refined=refined,
        failures=failures,
    )
