"""Forward plane sweep over entity-descriptor lists.

The classic internal spatial-join sweep (as used inside PBSM's
partition join): sort both lists by ``xlo``, advance a sweep line over
the union of start events, and for each descriptor test the
not-yet-processed descriptors of the other list whose ``xlo`` falls
inside its x-extent.  Each intersecting pair is reported exactly once.
"""

from __future__ import annotations

from typing import Iterator

from repro.storage.backend import Record
from repro.storage.costs import sort_comparison_count
from repro.storage.iostats import IOStats
from repro.storage.records import XHI, XLO, YHI, YLO


def sweep_intersections(
    left: list[Record],
    right: list[Record],
    stats: IOStats | None = None,
    presorted: bool = False,
) -> Iterator[tuple[Record, Record]]:
    """Yield every pair ``(a, b)`` with intersecting MBRs, ``a`` from
    ``left`` and ``b`` from ``right``.

    Closed-interval semantics: boundary contact counts as intersection.
    CPU work (sort comparisons, per-pair y-tests) is charged to
    ``stats`` when given.  Pass ``presorted=True`` when both inputs are
    already ordered by ``xlo``.
    """
    a = left if presorted else sorted(left, key=lambda r: r[XLO])
    b = right if presorted else sorted(right, key=lambda r: r[XLO])
    if stats is not None and not presorted:
        stats.charge_cpu(
            "compare", sort_comparison_count(len(a)) + sort_comparison_count(len(b))
        )

    ai = bi = 0
    len_a, len_b = len(a), len(b)
    while ai < len_a and bi < len_b:
        if a[ai][XLO] <= b[bi][XLO]:
            yield from _scan(a[ai], b, bi, stats, flip=False)
            ai += 1
        else:
            yield from _scan(b[bi], a, ai, stats, flip=True)
            bi += 1


def sweep_self_intersections(
    records: list[Record],
    stats: IOStats | None = None,
    presorted: bool = False,
) -> Iterator[tuple[Record, Record]]:
    """Yield every unordered pair of distinct intersecting MBRs within
    one list (self-join; each pair reported once, never ``(r, r)``)."""
    items = records if presorted else sorted(records, key=lambda r: r[XLO])
    if stats is not None and not presorted:
        stats.charge_cpu("compare", sort_comparison_count(len(items)))
    for i, current in enumerate(items):
        x_max = current[XHI]
        for j in range(i + 1, len(items)):
            other = items[j]
            if other[XLO] > x_max:
                break
            if stats is not None:
                stats.charge_cpu("mbr_test")
            if current[YLO] <= other[YHI] and other[YLO] <= current[YHI]:
                yield current, other


def _scan(
    pivot: Record,
    others: list[Record],
    start: int,
    stats: IOStats | None,
    flip: bool,
) -> Iterator[tuple[Record, Record]]:
    """Test ``pivot`` against others[start:] while their xlo is within
    pivot's x-extent."""
    x_max = pivot[XHI]
    ylo, yhi = pivot[YLO], pivot[YHI]
    for k in range(start, len(others)):
        other = others[k]
        if other[XLO] > x_max:
            break
        if stats is not None:
            stats.charge_cpu("mbr_test")
        if ylo <= other[YHI] and other[YLO] <= yhi:
            yield (other, pivot) if flip else (pivot, other)

