"""The batched columnar partition pipeline.

The partition phase is S3J's claimed advantage — one scan, no
replication (section 3.1) — yet a record-at-a-time implementation pays
a ``Rect`` construction, a scalar ``level()`` call, a scalar Hilbert
recursion, and a buffer-pool fetch/unpin round-trip per entity.  This
module runs the same phase in *blocks*: input pages are scanned a batch
at a time, levels and curve keys are computed with the vectorized NumPy
kernels (:meth:`repro.filtertree.levels.LevelAssigner.levels`,
:meth:`repro.curves.base.SpaceFillingCurve.keys`), the Dynamic Spatial
Bitmap is set/probed per block, and descriptors are routed to their
level/partition files through the true-bulk
:meth:`repro.storage.pagedfile.PagedFile.extend`.

The load-bearing invariant — enforced by ``tests/test_partition_parity``
— is that the simulated ledger and the emitted records are **identical**
to the scalar reference paths kept in the algorithm modules:

- the same input pages are read in the same order, and block scans
  release their clean input frames (:meth:`BufferPool.release`) so bulk
  reads never push another file's dirty output tail out of the LRU;
- output files receive the same records in the same order, so page
  creates, write-behinds, and flushes are identical per file (and the
  per-file sequential/random classification with them);
- every CPU op (``level``, ``hilbert``, ``partition``, ``bitmap``) is
  charged in bulk with the exact per-record count of the scalar loop;
- :meth:`PagedFile.extend` charges the buffer hits the per-record tail
  fetches would have recorded.

Ledger parity holds whenever the buffer pool retains every open output
tail page between touches — the same condition under which the scalar
path does not thrash.  Identical floating-point expressions are used
throughout (quantization, tile clipping, nearest-center distances), so
the routing decisions are bit-identical, not merely close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.storage.backend import Record
from repro.storage.records import HKEY, XHI, XLO, YHI, YLO

if TYPE_CHECKING:
    from repro.core.bitmap import DynamicSpatialBitmap
    from repro.curves.base import SpaceFillingCurve
    from repro.filtertree.levels import LevelAssigner
    from repro.geometry.rect import Rect
    from repro.storage.manager import StorageManager
    from repro.storage.pagedfile import PagedFile

DEFAULT_BATCH_SIZE = 4096
"""Records per block.  Large enough to amortize the NumPy kernel launch
overhead, small enough that a block's worth of input pages plus the open
output tails fits comfortably in the paper's buffer-pool sizings."""


def iter_record_blocks(
    source: PagedFile, batch_size: int
) -> Iterator[list[Record]]:
    """Yield blocks of at least ``batch_size`` records in file order.

    Pages are read through the buffer pool (so the ledger counts them
    exactly as a record-at-a-time scan would) and their clean frames are
    released as soon as the records are copied out, keeping the pool
    footprint at one input frame regardless of block size.
    """
    block: list[Record] = []
    for page_no in range(source.num_pages):
        block.extend(source.read_page(page_no))
        source.pool.release(source.name, page_no)
        if len(block) >= batch_size:
            yield block
            block = []
    if block:
        yield block


def _corner_columns(
    block: list[Record],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Columnar float64 views of the MBR corners of one block."""
    table = np.array(block, dtype=np.float64)
    return table[:, XLO], table[:, YLO], table[:, XHI], table[:, YHI]


def _quantize(coords: np.ndarray, side: int) -> np.ndarray:
    """Vectorized :meth:`SpaceFillingCurve.quantize`: truncate-to-grid
    with the top edge clamped, validating the unit-square domain."""
    if coords.size and (coords.min() < 0.0 or coords.max() > 1.0):
        raise ValueError("coordinate outside the unit square")
    return np.minimum((coords * side).astype(np.int64), side - 1)


# -- S3J: level files ------------------------------------------------------


def partition_levels(
    source: PagedFile,
    *,
    storage: StorageManager,
    assigner: LevelAssigner,
    curve: SpaceFillingCurve,
    namer: Callable[[int], str],
    bitmap: DynamicSpatialBitmap | None = None,
    building: bool = False,
    hilbert_precomputed: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> dict[int, PagedFile]:
    """Batched S3J partition of one data set into level files.

    The block pipeline of
    :meth:`repro.core.s3j.SizeSeparationSpatialJoin._partition_scalar`:
    levels and curve keys come from the NumPy kernels, the DSB is
    populated (``building=True``) or probed per block, and surviving
    descriptors are routed level-by-level through bulk extends.
    """
    stats = storage.stats
    level_files: dict[int, PagedFile] = {}
    for block in iter_record_blocks(source, batch_size):
        n = len(block)
        xlo, ylo, xhi, yhi = _corner_columns(block)
        levels = assigner.levels(xlo, ylo, xhi, yhi).tolist()
        stats.charge_cpu("level", n)
        if hilbert_precomputed:
            hkeys: list[int] = [record[HKEY] for record in block]
        else:
            qx = _quantize((xlo + xhi) / 2, curve.side)
            qy = _quantize((ylo + yhi) / 2, curve.side)
            hkeys = curve.keys(qx, qy).tolist()
            stats.charge_cpu("hilbert", n)

        kept: Sequence[int] | None = None
        if bitmap is not None:
            if building:
                bitmap.set_batch(xlo, ylo, xhi, yhi, hkeys, levels)
            else:
                admitted = bitmap.admits_batch(xlo, ylo, xhi, yhi, hkeys, levels)
                kept = [i for i in range(n) if admitted[i]]

        # Emitted descriptors reuse the original tuple fields (no float
        # round-trips through NumPy), swapping in the fresh curve key.
        grouped: dict[int, list[Record]] = {}
        if kept is None:  # nothing filtered: emit the whole block
            emitted = [
                record[:HKEY] + (hkey,) for record, hkey in zip(block, hkeys)
            ]
            if len(set(levels)) == 1:  # uniform data: one level file
                grouped[levels[0]] = emitted
            else:
                for level, out in zip(levels, emitted):
                    grouped.setdefault(level, []).append(out)
        else:
            for i in kept:
                grouped.setdefault(levels[i], []).append(
                    block[i][:HKEY] + (hkeys[i],)
                )
        for level in sorted(grouped):
            handle = level_files.get(level)
            if handle is None:
                handle = storage.create_file(namer(level))
                level_files[level] = handle
            handle.extend(grouped[level])
    return level_files


# -- PBSM: tile grid -------------------------------------------------------


def partition_tiles(
    source: PagedFile,
    *,
    storage: StorageManager,
    space: Rect,
    grid: int,
    tile_to_partition: Callable[[int], int],
    namer: Callable[[int], str],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> tuple[dict[int, PagedFile], int, int]:
    """Batched PBSM tiling pass: scatter descriptors into partition
    files with replication.  Returns (files, records written, records
    filtered out) exactly like the scalar pass.
    """
    stats = storage.stats
    files: dict[int, PagedFile] = {}
    written = 0
    filtered = 0
    width = space.width or 1.0
    height = space.height or 1.0
    for block in iter_record_blocks(source, batch_size):
        n = len(block)
        stats.charge_cpu("partition", n)
        xlo, ylo, xhi, yhi = _corner_columns(block)
        # Closed-interval clip against the tile space; rows outside it
        # are the filtered entities (Rect.intersection returning None).
        keep = (
            (xlo <= space.xhi)
            & (space.xlo <= xhi)
            & (ylo <= space.yhi)
            & (space.ylo <= yhi)
        ).tolist()
        txlo = _tile_index(np.maximum(xlo, space.xlo), space.xlo, width, grid)
        tylo = _tile_index(np.maximum(ylo, space.ylo), space.ylo, height, grid)
        txhi = _tile_index(np.minimum(xhi, space.xhi), space.xlo, width, grid)
        tyhi = _tile_index(np.minimum(yhi, space.yhi), space.ylo, height, grid)
        txlo_l, tylo_l = txlo.tolist(), tylo.tolist()
        txhi_l, tyhi_l = txhi.tolist(), tyhi.tolist()

        grouped: dict[int, list[Record]] = {}
        for i in range(n):
            if not keep[i]:
                filtered += 1
                continue
            x0, x1 = txlo_l[i], txhi_l[i]
            y0, y1 = tylo_l[i], tyhi_l[i]
            if x0 == x1 and y0 == y1:  # the common unreplicated case
                targets: Sequence[int] = (tile_to_partition(y0 * grid + x0),)
            else:
                # Same comprehension (and set iteration order) as the
                # scalar path, so replicated appends land in the same
                # partition-file order.
                targets = {
                    tile_to_partition(cy * grid + cx)
                    for cy in range(y0, y1 + 1)
                    for cx in range(x0, x1 + 1)
                }
            record = block[i]
            for p in targets:
                grouped.setdefault(p, []).append(record)
            written += len(targets)
        for p in sorted(grouped):
            handle = files.get(p)
            if handle is None:
                handle = storage.create_file(namer(p))
                files[p] = handle
            handle.extend(grouped[p])
    return files, written, filtered


def _tile_index(
    coords: np.ndarray, origin: float, extent: float, grid: int
) -> np.ndarray:
    """Vectorized tile coordinate: truncation with top-edge clamp, the
    same expression as the scalar ``_tiles_of``."""
    return np.minimum(((coords - origin) / extent * grid).astype(np.int64), grid - 1)


# -- SHJ: nearest-center (A) and overlap (B) partitioning -------------------


def partition_nearest_center(
    source: PagedFile,
    *,
    storage: StorageManager,
    partitions: list,
    namer: Callable[[int], str],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> dict[int, PagedFile]:
    """Batched SHJ first-input pass: assign every entity to the
    partition with the nearest (moving) center, expanding that
    partition's MBR — no replication.

    The assignment is inherently sequential (each absorb moves a
    center), so the per-record argmin stays in the loop; it runs over
    NumPy center arrays instead of a Python ``min`` over partition
    objects, and the bounds are written back to the partition objects
    once per pass.  Distances use the exact scalar expression, so every
    assignment (ties included — first minimum wins in both) matches.
    """
    from repro.geometry.rect import Rect

    stats = storage.stats
    files: dict[int, PagedFile] = {}
    pxlo = np.array([p.mbr.xlo for p in partitions], dtype=np.float64)
    pylo = np.array([p.mbr.ylo for p in partitions], dtype=np.float64)
    pxhi = np.array([p.mbr.xhi for p in partitions], dtype=np.float64)
    pyhi = np.array([p.mbr.yhi for p in partitions], dtype=np.float64)
    pcx = (pxlo + pxhi) / 2
    pcy = (pylo + pyhi) / 2
    counts = [p.count for p in partitions]
    per_record_cost = max(1, len(partitions))

    for block in iter_record_blocks(source, batch_size):
        n = len(block)
        stats.charge_cpu("partition", n * per_record_cost)
        xlo, ylo, xhi, yhi = _corner_columns(block)
        cx = (xlo + xhi) / 2
        cy = (ylo + yhi) / 2
        grouped: dict[int, list[Record]] = {}
        for i in range(n):
            dx = pcx - cx[i]
            dy = pcy - cy[i]
            j = int(np.argmin(dx * dx + dy * dy))
            if xlo[i] < pxlo[j]:
                pxlo[j] = xlo[i]
            if ylo[i] < pylo[j]:
                pylo[j] = ylo[i]
            if xhi[i] > pxhi[j]:
                pxhi[j] = xhi[i]
            if yhi[i] > pyhi[j]:
                pyhi[j] = yhi[i]
            pcx[j] = (pxlo[j] + pxhi[j]) / 2
            pcy[j] = (pylo[j] + pyhi[j]) / 2
            counts[j] += 1
            grouped.setdefault(j, []).append(block[i])
        for j in sorted(grouped):
            handle = files.get(j)
            if handle is None:
                handle = storage.create_file(namer(j))
                files[j] = handle
            handle.extend(grouped[j])

    for j, partition in enumerate(partitions):
        partition.mbr = Rect(
            float(pxlo[j]), float(pylo[j]), float(pxhi[j]), float(pyhi[j])
        )
        partition.count = counts[j]
    return files


def partition_overlaps(
    source: PagedFile,
    *,
    storage: StorageManager,
    partitions: list,
    namer: Callable[[int], str],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> tuple[dict[int, PagedFile], int, int]:
    """Batched SHJ second-input pass: record every entity in each
    non-empty partition whose final MBR it overlaps (replication);
    entities overlapping none are filtered out.  The partitions are
    frozen during this pass, so the overlap tests vectorize into one
    block-by-partitions boolean matrix."""
    stats = storage.stats
    files: dict[int, PagedFile] = {}
    written = 0
    filtered = 0
    pxlo = np.array([p.mbr.xlo for p in partitions], dtype=np.float64)
    pylo = np.array([p.mbr.ylo for p in partitions], dtype=np.float64)
    pxhi = np.array([p.mbr.xhi for p in partitions], dtype=np.float64)
    pyhi = np.array([p.mbr.yhi for p in partitions], dtype=np.float64)
    active = np.array([p.count > 0 for p in partitions], dtype=bool)
    per_record_cost = max(1, len(partitions))

    for block in iter_record_blocks(source, batch_size):
        n = len(block)
        stats.charge_cpu("partition", n * per_record_cost)
        xlo, ylo, xhi, yhi = _corner_columns(block)
        overlap = (
            active[None, :]
            & (pxlo[None, :] <= xhi[:, None])
            & (xlo[:, None] <= pxhi[None, :])
            & (pylo[None, :] <= yhi[:, None])
            & (ylo[:, None] <= pyhi[None, :])
        )
        row_counts = overlap.sum(axis=1)
        filtered += int((row_counts == 0).sum())
        written += int(row_counts.sum())
        grouped: dict[int, list[Record]] = {}
        # nonzero is row-major: ascending record index, then ascending
        # partition index — the scalar enumerate order.
        rows, cols = np.nonzero(overlap)
        for i, j in zip(rows.tolist(), cols.tolist()):
            grouped.setdefault(j, []).append(block[i])
        for j in sorted(grouped):
            handle = files.get(j)
            if handle is None:
                handle = storage.create_file(namer(j))
                files[j] = handle
            handle.extend(grouped[j])
    return files, written, filtered
