"""Self-contained HTML rendering of a :class:`~repro.obs.report.RunReport`.

``repro report run.json --html out.html`` writes a single HTML file —
inline CSS, no JavaScript, no external assets — that renders:

- the run summary and per-phase table (simulated vs wall seconds);
- the **span flame view**: the tracer's nested span tree as stacked
  bars positioned on the run's wall-clock timeline;
- the **shard Gantt lanes**: one bar per shard from the straggler
  analytics, colored by kind (cell vs residual) with the critical-path
  shard highlighted;
- the straggler metrics table (imbalance factor, residual share,
  duration percentiles, parallel efficiency, fault counts).

Everything is rendered server-side from the serialized report, so the
artifact is safe to archive in CI and opens anywhere.
"""

from __future__ import annotations

import html as html_escape
from typing import Any

from repro.obs.fileio import atomic_write_text
from repro.obs.render import _fmt_seconds
from repro.obs.report import RunReport
from repro.obs.straggler import StragglerAnalytics

_MAX_FLAME_DEPTH = 12

_CSS = """
body { font: 13px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 960px; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { padding: 0.25em 0.8em; text-align: right; border-bottom: 1px solid #e0e0e8; }
th:first-child, td:first-child { text-align: left; }
th { background: #f4f4f8; }
.timeline { position: relative; background: #f7f7fb; border: 1px solid #e0e0e8;
            border-radius: 3px; margin: 0.4em 0; }
.bar { position: absolute; height: 16px; border-radius: 2px; overflow: hidden;
       font-size: 10px; line-height: 16px; color: #fff; padding-left: 3px;
       white-space: nowrap; box-sizing: border-box; }
.lane-label { display: inline-block; width: 110px; font-family: monospace;
              font-size: 11px; vertical-align: top; }
.lane-row { margin: 2px 0; }
.lane-track { display: inline-block; position: relative; height: 16px;
              width: calc(100% - 260px); background: #f7f7fb;
              border: 1px solid #e8e8f0; vertical-align: top; }
.lane-note { display: inline-block; width: 130px; font-family: monospace;
             font-size: 11px; padding-left: 6px; }
.cell { background: #4a7ebb; } .residual { background: #c0504d; }
.failed { background: repeating-linear-gradient(45deg, #999, #999 4px,
          #ccc 4px, #ccc 8px); }
.critical { outline: 2px solid #e8a33d; }
.kv td { text-align: left; }
footer { margin-top: 3em; color: #888; font-size: 11px; }
"""

_FLAME_COLORS = (
    "#4a7ebb", "#5b9aa0", "#6b8e23", "#b8860b", "#c0504d",
    "#8064a2", "#4bacc6", "#9a6a4f",
)


def _esc(value: Any) -> str:
    return html_escape.escape(str(value))


def _flame_rows(
    spans: list[dict[str, Any]],
    origin_s: float,
    total_s: float,
    depth: int,
    rows: list[str],
) -> int:
    """Append one absolutely-positioned bar per span; returns max depth."""
    deepest = depth
    for span in spans:
        if depth >= _MAX_FLAME_DEPTH or total_s <= 0:
            break
        left = max(0.0, (span["start_s"] - origin_s) / total_s * 100)
        width = max(0.15, span["wall_s"] / total_s * 100)
        width = min(width, 100 - left)
        color = _FLAME_COLORS[depth % len(_FLAME_COLORS)]
        title = (
            f"{span['name']} — {_fmt_seconds(span['wall_s'])} wall, "
            f"{_fmt_seconds(span['cpu_s'])} cpu"
        )
        rows.append(
            f'<div class="bar" style="left:{left:.3f}%;width:{width:.3f}%;'
            f"top:{depth * 19}px;background:{color}\" "
            f'title="{_esc(title)}">{_esc(span["name"])}</div>'
        )
        child_deepest = _flame_rows(
            span.get("children", []), origin_s, total_s, depth + 1, rows
        )
        deepest = max(deepest, child_deepest)
    return deepest


def _flame_section(report: RunReport) -> str:
    spans = report.spans
    if not spans:
        return ""
    origin = min(span["start_s"] for span in spans)
    total = max(
        span["start_s"] + span["wall_s"] for span in spans
    ) - origin
    rows: list[str] = []
    deepest = _flame_rows(spans, origin, total, 0, rows)
    height = (deepest + 1) * 19 + 4
    return (
        "<h2>Span flame view</h2>"
        f"<p>Wall-clock timeline, {_fmt_seconds(total)} total; hover a bar "
        "for its wall/CPU split.</p>"
        f'<div class="timeline" style="height:{height}px">'
        + "".join(rows)
        + "</div>"
    )


def _gantt_section(analytics: StragglerAnalytics) -> str:
    lanes = sorted(
        analytics.lanes, key=lambda lane: (lane.start_s, lane.shard_id)
    )
    if not lanes:
        return ""
    origin = min(lane.start_s for lane in lanes)
    span = max(lane.end_s for lane in lanes) - origin
    critical = (analytics.critical_path or {}).get("shard_id")
    rows = []
    for lane in lanes:
        if span > 0:
            left = (lane.start_s - origin) / span * 100
            width = max(0.3, lane.wall_s / span * 100)
        else:
            left, width = 0.0, 100.0
        width = min(width, 100 - left)
        classes = ["bar", "failed" if lane.failed else
                   ("residual" if "residual" in lane.kind else "cell")]
        if lane.shard_id == critical:
            classes.append("critical")
        note = "failed" if lane.failed else _fmt_seconds(lane.wall_s)
        if lane.pairs is not None:
            note += f" · {lane.pairs:,}p"
        if lane.attempts > 1:
            note += f" · x{lane.attempts}"
        title = (
            f"{lane.shard_id} ({lane.kind}) — {note}, "
            f"{lane.records if lane.records is not None else '?'} records"
        )
        rows.append(
            '<div class="lane-row">'
            f'<span class="lane-label">{_esc(lane.shard_id)}</span>'
            '<span class="lane-track">'
            f'<div class="{" ".join(classes)}" '
            f'style="left:{left:.3f}%;width:{width:.3f}%;top:0" '
            f'title="{_esc(title)}"></div></span>'
            f'<span class="lane-note">{_esc(note)}</span></div>'
        )
    legend = (
        '<p><span class="bar cell" style="position:static;display:inline-block;'
        'width:2.2em">&nbsp;</span> cell shard &nbsp; '
        '<span class="bar residual" style="position:static;display:inline-block;'
        'width:2.2em">&nbsp;</span> residual shard &nbsp; '
        "orange outline = critical path</p>"
    )
    return (
        f"<h2>Shard Gantt lanes ({len(lanes)} shards, makespan "
        f"{_fmt_seconds(analytics.makespan_s)})</h2>"
        + legend
        + "".join(rows)
    )


def _straggler_table(analytics: StragglerAnalytics) -> str:
    pct = analytics.duration_percentiles
    rows = [
        ("shards", str(analytics.shard_count)),
        ("workers", str(analytics.workers or "-")),
        ("makespan", _fmt_seconds(analytics.makespan_s)),
        ("total shard work", _fmt_seconds(analytics.total_shard_s)),
        (
            "imbalance factor (max/mean)",
            "-" if analytics.imbalance_factor is None
            else f"{analytics.imbalance_factor:.2f}",
        ),
        (
            "residual share",
            "-" if analytics.residual_share is None
            else f"{analytics.residual_share * 100:.1f}%",
        ),
        (
            "parallel efficiency",
            "-" if analytics.parallel_efficiency is None
            else f"{analytics.parallel_efficiency * 100:.1f}%",
        ),
        (
            "shard duration p50 / p95 / p99 / max",
            f"{_fmt_seconds(pct.get('p50'))} / {_fmt_seconds(pct.get('p95'))}"
            f" / {_fmt_seconds(pct.get('p99'))} / {_fmt_seconds(pct.get('max'))}"
            if pct else "-",
        ),
        (
            "retries / timeouts / failures",
            f"{analytics.retries} / {analytics.timeouts} / {analytics.failures}",
        ),
    ]
    body = "".join(
        f"<tr><td>{_esc(k)}</td><td>{_esc(v)}</td></tr>" for k, v in rows
    )
    return (
        "<h2>Straggler analytics</h2>"
        f'<table class="kv"><tbody>{body}</tbody></table>'
    )


def _phase_section(report: RunReport) -> str:
    table = report.phase_table()
    if not table:
        return ""
    rows = "".join(
        f"<tr><td>{_esc(name)}</td><td>{row['simulated_s']:.2f}s</td>"
        f"<td>{_fmt_seconds(row['wall_s'])}</td><td>{row['ios']:,.0f}</td>"
        f"<td>{row['reads']:,.0f}</td><td>{row['writes']:,.0f}</td></tr>"
        for name, row in table.items()
    )
    return (
        "<h2>Phases</h2><table><thead><tr><th>phase</th><th>simulated</th>"
        "<th>wall</th><th>I/Os</th><th>reads</th><th>writes</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )


def render_html(report: RunReport) -> str:
    """The report as one self-contained HTML document."""
    mode = report.metrics.details.get("mode", "ledger")
    workload = report.workload or "?"
    scale = f" @ scale {report.scale}" if report.scale is not None else ""
    analytics = (
        StragglerAnalytics.from_dict(report.analytics)
        if report.analytics
        else None
    )
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>repro report — {_esc(report.algorithm)} on "
        f"{_esc(workload)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(report.algorithm)} on {_esc(workload)}{_esc(scale)}</h1>",
        f"<p>mode <b>{_esc(mode)}</b> · <b>{report.pairs:,}</b> pairs · "
        f"{_fmt_seconds(report.wall_seconds)} wall · "
        f"{report.simulated_seconds:.2f}s simulated · "
        f"{len(report.events)} events</p>",
        _phase_section(report),
        _flame_section(report),
    ]
    if analytics is not None and analytics.lanes:
        parts.append(_gantt_section(analytics))
        parts.append(_straggler_table(analytics))
    parts.append(
        "<footer>Generated by <code>repro report</code> — Size Separation "
        "Spatial Join reproduction. Self-contained; no external assets."
        "</footer></body></html>"
    )
    return "".join(parts)


def write_html_report(report: RunReport, path: str) -> None:
    """Render and write the HTML artifact atomically."""
    atomic_write_text(path, render_html(report))
