"""The storage manager: named files, buffer pool, ledger, cost models."""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import NULL_OBS, Observability
from repro.storage.backend import FileBackend, MemoryBackend, StorageBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostModel
from repro.storage.iostats import IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EntityDescriptorCodec, RecordCodec

DEFAULT_PAGE_SIZE = 4096
"""4 KB pages, as in the paper's bitmap sizing example (section 3.2)."""


@dataclass(frozen=True)
class StorageConfig:
    """Configuration of one storage manager instance.

    ``buffer_pages`` is the paper's ``M``: the number of main-memory
    page frames available to an operator.  Experiments set it to 10% of
    the combined input size (section 5) unless stated otherwise.

    ``backend`` selects the physical page store: ``memory`` (counted,
    not performed), ``disk`` (real files, flush-on-sync durability), or
    ``durable`` (write-ahead logged, crash-consistent; DESIGN.md
    section 16).  The simulated ledger is backend-independent: the same
    run produces byte-identical I/O counts on all three.

    ``fault_plan`` / ``retry`` opt into the fault subsystem (DESIGN.md
    section 11): the physical backend is wrapped in a
    :class:`~repro.faults.inject.FaultInjectingBackend` executing the
    plan and/or a :class:`~repro.faults.retry.RetryingBackend` applying
    the policy.  Both default to ``None`` (no wrapper at all), and a
    retry layer over a fault-free run is a strict no-op — verified by
    the parity tests.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pages: int = 128
    backend: str = "memory"
    directory: str | None = None
    cost_model: CostModel = field(default_factory=CostModel)
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy | None = None


class StorageManager:
    """Creates, opens, and drops paged files over one buffer pool.

    Use as a context manager so file handles and temporary directories
    are released::

        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            f = storage.create_file("level-0")
            ...
    """

    def __init__(
        self,
        config: StorageConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or StorageConfig()
        # Observability is opt-in: NULL_OBS (the default) is a no-op
        # tracer plus registry, and the low-level hooks are handed None
        # so instrumentation costs nothing when disabled.  Enabled or
        # not, the simulated ledger records the same counts.
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.active_metrics
        self.stats = IOStats(metrics=metrics)
        self.cost_model = self.config.cost_model
        self._tempdir: tempfile.TemporaryDirectory[str] | None = None
        self.backend = self._make_backend()
        self.pool = BufferPool(
            self.backend, self.config.buffer_pages, self.stats, metrics=metrics
        )
        self._files: dict[str, PagedFile] = {}
        self._sequences: dict[str, int] = {}
        self.closed = False

    def _make_backend(self) -> StorageBackend:
        if self.config.backend == "memory":
            backend: StorageBackend = MemoryBackend()
        elif self.config.backend == "disk":
            directory = self.config.directory
            if directory is None:
                self._tempdir = tempfile.TemporaryDirectory(prefix="repro-storage-")
                directory = self._tempdir.name
            backend = FileBackend(directory)
        elif self.config.backend == "durable":
            from repro.storage.durable import DurableBackend

            directory = self.config.directory
            if directory is None:
                self._tempdir = tempfile.TemporaryDirectory(prefix="repro-storage-")
                directory = self._tempdir.name
            backend = DurableBackend(directory, page_size=self.config.page_size)
        else:
            raise ValueError(
                f"unknown backend {self.config.backend!r}; choose 'memory', "
                "'disk', or 'durable'"
            )
        # Fault subsystem wrappers (innermost injection, outermost
        # retry, so retries see the injected faults): both are absent
        # unless configured, and with zero faults the retry wrapper is
        # a pure pass-through — the ledger and metrics are untouched.
        if self.config.fault_plan is not None:
            from repro.faults.inject import FaultInjectingBackend

            backend = FaultInjectingBackend(
                backend,
                self.config.fault_plan,
                stats=self.stats,
                metrics=self.obs.active_metrics,
            )
        if self.config.retry is not None:
            from repro.faults.retry import RetryingBackend

            backend = RetryingBackend(backend, self.config.retry, obs=self.obs)
        return backend

    # -- file lifecycle -------------------------------------------------

    def create_file(self, name: str, codec: RecordCodec | None = None) -> PagedFile:
        """Create a new empty paged file (entity descriptors by default)."""
        if name in self._files:
            raise FileExistsError(f"storage file {name!r} already exists")
        codec = codec or EntityDescriptorCodec()
        self.backend.create_file(name, codec, self.config.page_size)
        handle = PagedFile(name, codec, self.config.page_size, self.pool)
        self._files[name] = handle
        return handle

    def open_file(self, name: str) -> PagedFile:
        """Return the handle of an existing file (KeyError-safe)."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no storage file named {name!r}") from None

    def attach_file(self, name: str, codec: RecordCodec | None = None) -> PagedFile:
        """Adopt a file recovered from disk by a durable backend.

        The reopen counterpart of :meth:`create_file`: the file already
        exists in the backend's recovered catalog (a previous process
        wrote it), so no ``create_file`` call is issued — the codec is
        re-bound and a :class:`PagedFile` handle is rebuilt from the
        per-page record counts.  Counts are read directly from the
        backend, never through the buffer pool, so attaching leaves the
        simulated ledger untouched.  Only backends with a persistent
        catalog (``durable``) support this.
        """
        if name in self._files:
            raise FileExistsError(f"storage file {name!r} already open")
        codec = codec or EntityDescriptorCodec()
        backend = self.backend
        while not hasattr(backend, "attach_file"):
            inner = getattr(backend, "inner", None)
            if inner is None:
                raise ValueError(
                    f"backend {self.config.backend!r} has no persistent "
                    "catalog to attach files from"
                )
            backend = inner
        backend.attach_file(name, codec, self.config.page_size)
        counts = backend.file_record_counts(name)
        handle = PagedFile(name, codec, self.config.page_size, self.pool)
        handle.num_pages = len(counts)
        handle.num_records = sum(counts)
        handle._tail_count = counts[-1] if counts else 0
        self._files[name] = handle
        return handle

    def stored_files(self) -> list[str]:
        """Names in the backend's persistent catalog (durable only)."""
        backend = self.backend
        while not hasattr(backend, "stored_files"):
            inner = getattr(backend, "inner", None)
            if inner is None:
                return []
            backend = inner
        return backend.stored_files()

    def drop_file(self, name: str) -> None:
        """Delete a file: its buffered pages are discarded, not flushed."""
        handle = self._files.pop(name, None)
        if handle is None:
            raise FileNotFoundError(f"no storage file named {name!r}")
        self.pool.drop_file(name)
        self.backend.delete_file(name)

    def rename_file(
        self, current: str, target: str, replace: bool = False
    ) -> PagedFile:
        """Rename a file — pure metadata, like a filesystem rename: no
        page is copied, no I/O is charged, and buffered frames move to
        the new name with LRU order, pins, and dirty bits intact.

        When ``target`` already exists the behavior is deterministic:
        ``FileExistsError`` by default, or (with ``replace=True``) the
        existing file is dropped first — its buffered pages are
        discarded, not flushed, and any outstanding handle to it goes
        stale.  Returns the (same) handle, now under its new name.
        """
        if current == target:
            raise ValueError(f"cannot rename {current!r} onto itself")
        handle = self._files.get(current)
        if handle is None:
            raise FileNotFoundError(f"no storage file named {current!r}")
        if target in self._files:
            if not replace:
                raise FileExistsError(f"storage file {target!r} already exists")
            self.drop_file(target)
        self.pool.rename_file(current, target)
        self.backend.rename_file(current, target)
        handle.adopt_name(target)
        self._files[target] = self._files.pop(current)
        return handle

    def list_files(self) -> list[str]:
        """Names of all live files, sorted."""
        return sorted(self._files)

    def next_sequence(self, kind: str) -> int:
        """The next value of a per-manager named counter (0, 1, 2, ...).

        Internal file naming (join inputs, per-run prefixes, sort-run
        temp files) draws from these instead of module-level counters,
        so names depend only on what *this* manager has done — the Nth
        join in a warm process gets the same labels as a fresh process,
        which is what makes run reports byte-identical across both.
        """
        value = self._sequences.get(kind, 0)
        self._sequences[kind] = value + 1
        return value

    # -- accounting helpers ---------------------------------------------

    @property
    def page_size(self) -> int:
        return self.config.page_size

    @property
    def memory_pages(self) -> int:
        """The paper's ``M``."""
        return self.config.buffer_pages

    def descriptors_per_page(self) -> int:
        """The paper's ``E`` for the default entity descriptor codec."""
        return EntityDescriptorCodec().records_per_page(self.config.page_size)

    def phase_boundary(self) -> None:
        """Flush and drop all cached pages.

        Called between operator phases (partition -> sort -> join) so
        each phase pays its own input reads, matching the phase-by-phase
        page-I/O accounting of the paper's section 4.
        """
        self.pool.invalidate()

    def response_time(self) -> float:
        """Simulated response time of all work recorded so far."""
        return self.cost_model.response_time(self.stats.total)

    def sync(self) -> None:
        """Flush dirty buffered pages and push them to the medium.

        ``pool.flush()`` writes every dirty frame through the backend;
        ``backend.sync()`` then makes those writes durable (fsync on the
        file backends, WAL commit + data fsync on the durable one, a
        no-op in memory).  The flush is priced by the ledger exactly as
        any other flush; ``backend.sync()`` itself is free, preserving
        cross-backend ledger parity.
        """
        self.pool.flush()
        self.backend.sync()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Flush dirty pages and release backend resources (idempotent).

        After the first close every buffered frame is dropped and the
        file table cleared, so a long-lived process cycling through
        managers (the service's open-query-close loop) cannot leak pool
        frames or dangling handles; further calls are no-ops.
        """
        if self.closed:
            return
        self.closed = True
        self.pool.flush()
        self.pool.clear()
        self._files.clear()
        self.backend.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> StorageManager:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
