"""Verification cases: one (A, B, predicate) input to cross-check.

A :class:`VerifyCase` is what the differential harness feeds to every
executor — two data sets and a join predicate.  Passing the *same*
object for both data sets marks a self join, mirroring the
:func:`repro.join.api.spatial_join` convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.geometry.entity import Entity
from repro.join.dataset import SpatialDataset
from repro.join.predicates import Intersects, JoinPredicate


@dataclass(frozen=True)
class VerifyCase:
    """One differential-testing input."""

    name: str
    dataset_a: SpatialDataset
    dataset_b: SpatialDataset
    predicate: JoinPredicate = field(default_factory=Intersects)
    source: str = "generated"  # "generated" | "paper"

    @property
    def self_join(self) -> bool:
        return self.dataset_a is self.dataset_b

    @property
    def margin(self) -> float:
        return self.predicate.mbr_margin

    def describe(self) -> str:
        shape = (
            f"{len(self.dataset_a)} self"
            if self.self_join
            else f"{len(self.dataset_a)}x{len(self.dataset_b)}"
        )
        return f"{self.name} ({shape}, {self.predicate.name})"

    def with_datasets(
        self, dataset_a: SpatialDataset, dataset_b: SpatialDataset, suffix: str = ""
    ) -> VerifyCase:
        """This case over different data sets (used by transforms and
        by counterexample minimization).  Preserves self-join identity:
        pass the same object twice to keep a self join."""
        return replace(
            self,
            name=self.name + suffix,
            dataset_a=dataset_a,
            dataset_b=dataset_b,
        )

    def with_entities(
        self, entities_a: list[Entity], entities_b: list[Entity], suffix: str = ""
    ) -> VerifyCase:
        """This case over entity subsets.  For a self join both lists
        must be the same list (one shrunken data set, joined with
        itself)."""
        sub_a = SpatialDataset(self.dataset_a.name, list(entities_a))
        if self.self_join:
            sub_b = sub_a
        else:
            sub_b = SpatialDataset(self.dataset_b.name, list(entities_b))
        return self.with_datasets(sub_a, sub_b, suffix=suffix)
