"""Dynamic Spatial Bitmaps in action (section 3.2).

A highly selective join: customer sites clustered in a few metro areas
against hazard zones covering mostly different territory.  Plain S3J
partitions the two data sets independently and cannot exploit the
selectivity; with DSB enabled, partitioning the first data set builds a
bitmap that filters most of the second data set before it is ever
sorted.

Run:  python examples/dsb_filtering.py
"""

import random

from repro import Entity, Rect, SpatialDataset
from repro.experiments import run_algorithm


def clustered_boxes(
    name: str, centers: list[tuple[float, float]], count: int, seed: int
) -> SpatialDataset:
    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        cx, cy = centers[eid % len(centers)]
        x = min(max(rng.gauss(cx, 0.02), 0.0), 0.98)
        y = min(max(rng.gauss(cy, 0.02), 0.0), 0.98)
        entities.append(
            Entity.from_geometry(eid, Rect(x, y, x + 0.01, y + 0.01))
        )
    return SpatialDataset(name, entities)


def main() -> None:
    # Note the cluster placement: sites keep clear of the x = 0.5 and
    # y = 0.5 lines.  An entity crossing a center line lands in level
    # file 0, and the *fast* DSB projection of a level-0 entity covers
    # the whole bitmap — the precision loss section 3.2 warns about.
    # (The precise mode is immune; swap a cluster onto 0.5 to see the
    # fast mode collapse to zero filtering.)
    sites = clustered_boxes(
        "customer-sites", [(0.15, 0.2), (0.2, 0.8), (0.3, 0.35)], 4_000, seed=1
    )
    hazards = clustered_boxes(
        "hazard-zones", [(0.8, 0.2), (0.75, 0.8), (0.85, 0.65), (0.2, 0.8)],
        4_000,
        seed=2,
    )

    plain = run_algorithm(sites, hazards, "s3j", label="s3j (no DSB)", scale=0.1)
    for mode in ("precise", "fast"):
        filtered = run_algorithm(
            sites,
            hazards,
            "s3j",
            label=f"s3j + DSB ({mode})",
            scale=0.1,
            dsb_level=7,
            dsb_mode=mode,
        )
        assert filtered.result.pairs == plain.result.pairs
        details = filtered.result.metrics.details
        print(f"{filtered.label}:")
        print(f"  filtered out       : {details['dsb_filtered']:,} of {len(hazards):,} hazard zones")
        print(f"  bitmap size        : {details['dsb_pages']} page(s)")
        print(f"  response time      : {filtered.response_time:.2f}s "
              f"(plain: {plain.response_time:.2f}s)")
        print(f"  page I/Os          : {filtered.result.metrics.total_ios:,} "
              f"(plain: {plain.result.metrics.total_ios:,})")
        print()

    print(f"both variants report the same {len(plain.result.pairs):,} joining pairs")


if __name__ == "__main__":
    main()
