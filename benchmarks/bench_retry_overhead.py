"""E-FAULT — overhead and recovery cost of the retrying storage layer.

Three configurations of one S3J run over a uniform workload:

- **plain** — no fault subsystem at all (the default storage stack);
- **layered** — :class:`~repro.faults.retry.RetryPolicy` plus an
  explicitly fault-free plan installed.  The parity gate: pairs and the
  full per-phase simulated ledger must match ``plain`` exactly, and the
  wall-clock overhead of the pass-through wrappers is reported;
- **faulty** — a seeded transient-fault plan under the same retry
  policy, reporting how many injections the retries absorbed and what
  the recovery cost (simulated backoff + fault latency) came to.

Emits ``BENCH_retry_overhead.json``; exits non-zero on any parity
violation::

    python -m benchmarks.bench_retry_overhead [--entities 20000]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.faults import NO_FAULTS, FaultPlan, RetryPolicy
from repro.join.api import spatial_join
from repro.obs import Observability
from repro.storage.manager import StorageConfig

from benchmarks.artifacts import write_bench_artifact
from tests.conftest import make_squares

NUM_ENTITIES = 20000
TRANSIENT_RATE = 0.002


def timed_join(dataset_a, dataset_b, config, obs=None):
    start = time.perf_counter()
    result = spatial_join(
        dataset_a, dataset_b, algorithm="s3j", storage=config, obs=obs
    )
    return result, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=NUM_ENTITIES)
    args = parser.parse_args(argv)

    dataset_a = make_squares(args.entities, 0.002, seed=20260806, name="flt-A")
    dataset_b = make_squares(args.entities, 0.003, seed=20260807, name="flt-B")
    base_config = StorageConfig(buffer_pages=256)
    retry = RetryPolicy(max_attempts=4)

    plain, plain_s = timed_join(dataset_a, dataset_b, base_config)
    layered, layered_s = timed_join(
        dataset_a,
        dataset_b,
        dataclasses.replace(base_config, retry=retry, fault_plan=NO_FAULTS),
    )

    failures: list[str] = []
    if layered.pairs != plain.pairs:
        failures.append(
            f"parity: layered pairs {len(layered.pairs)} != plain {len(plain.pairs)}"
        )
    plain_ledger = {n: s.to_dict() for n, s in plain.metrics.phases.items()}
    layered_ledger = {n: s.to_dict() for n, s in layered.metrics.phases.items()}
    if plain_ledger != layered_ledger:
        failures.append("parity: per-phase ledgers differ under the retry layer")

    faulty_plan = FaultPlan(
        seed=7,
        transient_read_rate=TRANSIENT_RATE,
        transient_write_rate=TRANSIENT_RATE,
    )
    obs = Observability()
    faulty, faulty_s = timed_join(
        dataset_a,
        dataset_b,
        dataclasses.replace(base_config, retry=retry, fault_plan=faulty_plan),
        obs=obs,
    )
    injected = obs.metrics.counter_total("faults.injected")
    absorbed = obs.metrics.counter_total("faults.retries_succeeded")
    if faulty.pairs != plain.pairs:
        failures.append(
            f"recovery: pairs diverged after absorbing {absorbed} fault(s)"
        )
    if injected == 0:
        failures.append("recovery: the faulty configuration injected nothing")

    backoff = obs.metrics.histogram("faults.backoff_s")
    payload = {
        "entities_per_side": args.entities,
        "pairs": len(plain.pairs),
        "plain_wall_s": plain_s,
        "layered_wall_s": layered_s,
        "layer_overhead_pct": 100.0 * (layered_s - plain_s) / plain_s,
        "ledger_parity": plain_ledger == layered_ledger,
        "faulty": {
            "transient_rate": TRANSIENT_RATE,
            "wall_s": faulty_s,
            "injected": injected,
            "retries_attempted": obs.metrics.counter_total(
                "faults.retries_attempted"
            ),
            "retries_succeeded": absorbed,
            "giveups": obs.metrics.counter_total("faults.giveups"),
            "simulated_backoff_s": backoff.total if backoff else 0.0,
            "fault_latency_ops": sum(
                s.cpu_ops.get("fault_latency", 0)
                for s in faulty.metrics.phases.values()
            ),
        },
    }
    path = write_bench_artifact("retry_overhead", payload)

    print(
        f"plain={plain_s:.2f}s  layered={layered_s:.2f}s "
        f"(overhead {payload['layer_overhead_pct']:+.1f}%)  "
        f"faulty={faulty_s:.2f}s absorbed {absorbed}/{injected} injection(s)"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"retry overhead OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
