"""E-FAST — wall-clock gate of the in-memory vectorized fast path.

Runs S3J on uniform workloads (one non-self, one self join) in both
execution modes and measures real host wall-clock:

- **parity** — the memory-mode pair set must equal the ledger-mode
  pair set on every workload (the same gate ``repro verify
  --cross-mode`` applies, here on the benchmark sizes);
- **speedup** — memory mode must be at least ``--min-speedup`` times
  faster than ledger mode (default 5x); the simulated-storage model
  pays a Python-level page scan per descriptor, the fast path a few
  NumPy passes per cell group.

Emits ``BENCH_fastpath.json`` with wall-clock, pairs/second, and the
speedup per workload::

    python -m benchmarks.bench_fastpath [--entities 20000] [--min-speedup 5]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.join.api import spatial_join

from benchmarks.artifacts import write_bench_artifact
from tests.conftest import make_squares

NUM_ENTITIES = int(os.environ.get("REPRO_FASTPATH_N", "20000"))
MIN_SPEEDUP = float(os.environ.get("REPRO_FASTPATH_MIN_SPEEDUP", "5.0"))
REPEATS = 2  # best-of-N: shields the gate from scheduler noise


def _time_mode(dataset_a, dataset_b, mode: str) -> tuple[float, frozenset]:
    """Best-of-``REPEATS`` wall-clock of one mode; returns (s, pairs)."""
    best = float("inf")
    pairs: frozenset = frozenset()
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = spatial_join(dataset_a, dataset_b, mode=mode)
        best = min(best, time.perf_counter() - start)
        pairs = result.pairs
    return best, pairs


def bench_workload(
    name: str, dataset_a, dataset_b, min_speedup: float
) -> tuple[dict, list[str]]:
    """Time both modes on one workload; return (row, failures)."""
    failures: list[str] = []
    ledger_s, ledger_pairs = _time_mode(dataset_a, dataset_b, "ledger")
    memory_s, memory_pairs = _time_mode(dataset_a, dataset_b, "memory")
    if memory_pairs != ledger_pairs:
        failures.append(
            f"{name}: memory mode found {len(memory_pairs)} pairs, "
            f"ledger mode {len(ledger_pairs)} — modes diverge"
        )
    speedup = ledger_s / memory_s if memory_s > 0 else float("inf")
    if speedup < min_speedup:
        failures.append(
            f"{name}: memory mode only {speedup:.1f}x faster than ledger "
            f"({memory_s:.3f}s vs {ledger_s:.3f}s); gate is {min_speedup}x"
        )
    row = {
        "workload": name,
        "entities": len(dataset_a)
        + (0 if dataset_b is dataset_a else len(dataset_b)),
        "pairs": len(ledger_pairs),
        "ledger_wall_s": ledger_s,
        "memory_wall_s": memory_s,
        "ledger_pairs_per_s": len(ledger_pairs) / ledger_s,
        "memory_pairs_per_s": len(memory_pairs) / memory_s,
        "speedup": speedup,
    }
    return row, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=NUM_ENTITIES)
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP)
    args = parser.parse_args(argv)

    half = args.entities // 2
    uniform_a = make_squares(half, 0.002, seed=20260806, name="fast-A")
    uniform_b = make_squares(half, 0.003, seed=20260807, name="fast-B")
    selfjoin = make_squares(args.entities, 0.002, seed=20260808, name="fast-S")

    rows = []
    failures: list[str] = []
    for name, a, b in [
        ("uniform", uniform_a, uniform_b),
        ("self-join", selfjoin, selfjoin),
    ]:
        row, workload_failures = bench_workload(name, a, b, args.min_speedup)
        rows.append(row)
        failures.extend(workload_failures)
        print(
            f"{name:<10} pairs={row['pairs']:<8} "
            f"ledger={row['ledger_wall_s']:.3f}s "
            f"({row['ledger_pairs_per_s']:,.0f} pairs/s)  "
            f"memory={row['memory_wall_s']:.3f}s "
            f"({row['memory_pairs_per_s']:,.0f} pairs/s)  "
            f"speedup={row['speedup']:.1f}x"
        )

    path = write_bench_artifact(
        "fastpath",
        {
            "entities": args.entities,
            "min_speedup": args.min_speedup,
            "repeats": REPEATS,
            "rows": rows,
        },
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"fastpath OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
