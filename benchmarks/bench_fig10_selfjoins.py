"""E-F10a / E-F10b — figures 10a and 10b: the stress self-joins.

- TR (figure 10a): high coverage and extreme size variability; both
  baselines replicate heavily (the paper reports r_B = 10 for SHJ) and
  PBSM pays a large duplicate-elimination sort.
- CFD (figure 10b): 200k-point within-distance self-join on a heavily
  clustered mesh; PBSM needs many repartitioning rounds and SHJ's
  sampling degenerates.
"""

import pytest

from repro.experiments.workloads import workload_by_name

from benchmarks.conftest import cached_workload_row, print_phase_breakdown


def test_fig10a_triangular_self_join(benchmark, repro_scale):
    workload = workload_by_name("TR")
    row = benchmark.pedantic(
        lambda: cached_workload_row(workload, repro_scale), rounds=1, iterations=1
    )
    rows = [row["s3j"], row["pbsm_small"], row["pbsm_large"], row["shj"]]
    print_phase_breakdown("Figure 10a: TR self join", rows)

    # Replication is heavy for both baselines (paper: 4.92 - 10).
    assert row["pbsm_small"]["r_A"] + row["pbsm_small"]["r_B"] >= 2.1
    assert row["shj"]["r_B"] > 3.0
    # PBSM's sort (duplicate elimination) is a large share of its time.
    pbsm = row["pbsm_small"]
    assert pbsm["sort_s"] > pbsm["time_s"] * 0.2
    # S3J wins outright (paper: 2.3x - 3.1x).
    assert row["pbsm_small"]["normalized"] > 1.5
    assert row["shj"]["normalized"] > 1.0
    benchmark.extra_info["rows"] = rows


def test_fig10b_cfd_self_join(benchmark, repro_scale):
    workload = workload_by_name("CFD")
    row = benchmark.pedantic(
        lambda: cached_workload_row(workload, repro_scale), rounds=1, iterations=1
    )
    rows = [row["s3j"], row["pbsm_small"], row["pbsm_large"], row["shj"]]
    print_phase_breakdown("Figure 10b: CFD self join (within 1e-6)", rows)

    # SHJ replicates the second input ~4x (paper: r_B = 4).
    assert row["shj"]["r_B"] == pytest.approx(4.0, rel=0.4)
    # PBSM is partition-bound: clustering forces repartitioning.
    pbsm = row["pbsm_small"]
    assert pbsm["partition_s"] > pbsm["join_s"]
    # Nobody beats S3J decisively on this workload.
    assert row["pbsm_small"]["normalized"] >= 0.9
    assert row["shj"]["normalized"] >= 0.9
    benchmark.extra_info["rows"] = rows
