"""The I/O and CPU ledger.

Every physical page transfer performed by the buffer pool, and every
counted CPU operation (Hilbert computations, comparisons, MBR
intersection tests...), is recorded here, attributed both to a running
total and to the currently open *phase* — so experiments can report the
paper's per-phase breakdown (Table 2: partition / sort / join).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


def file_label(file_name: str) -> str:
    """The metric label for a file: anonymous sort runs collapse into
    one ``__sort-run`` family so per-file series stay bounded."""
    if file_name.startswith("__sort-run"):
        return "__sort-run"
    return file_name


@dataclass
class PhaseStats:
    """Counters accumulated while one phase was active."""

    page_reads: int = 0
    page_writes: int = 0
    random_reads: int = 0
    random_writes: int = 0
    buffer_hits: int = 0
    cpu_ops: dict[str, int] = field(default_factory=dict)

    @property
    def sequential_reads(self) -> int:
        return self.page_reads - self.random_reads

    @property
    def sequential_writes(self) -> int:
        return self.page_writes - self.random_writes

    @property
    def total_ios(self) -> int:
        """Total physical page transfers (the paper's page reads and writes)."""
        return self.page_reads + self.page_writes

    def charge_cpu(self, op: str, count: int = 1) -> None:
        """Count ``count`` operations of kind ``op`` in this bucket."""
        self.cpu_ops[op] = self.cpu_ops.get(op, 0) + count

    def merged_into(self, other: PhaseStats) -> None:
        """Add this bucket's counters into ``other`` (for snapshots)."""
        other.page_reads += self.page_reads
        other.page_writes += self.page_writes
        other.random_reads += self.random_reads
        other.random_writes += self.random_writes
        other.buffer_hits += self.buffer_hits
        for op, count in self.cpu_ops.items():
            other.charge_cpu(op, count)

    def copy(self) -> PhaseStats:
        """An independent deep copy of this bucket."""
        fresh = PhaseStats()
        self.merged_into(fresh)
        return fresh

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready counters (for :class:`~repro.obs.report.RunReport`)."""
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "random_reads": self.random_reads,
            "random_writes": self.random_writes,
            "buffer_hits": self.buffer_hits,
            "cpu_ops": dict(self.cpu_ops),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> PhaseStats:
        return cls(
            page_reads=int(data["page_reads"]),
            page_writes=int(data["page_writes"]),
            random_reads=int(data["random_reads"]),
            random_writes=int(data["random_writes"]),
            buffer_hits=int(data["buffer_hits"]),
            cpu_ops={str(op): int(n) for op, n in data["cpu_ops"].items()},
        )


class IOStats:
    """Ledger of physical I/O and counted CPU work, with phase breakdown.

    Phases nest; counts are attributed to the innermost open phase and
    to the grand total.  Typical use::

        stats = IOStats()
        with stats.phase("partition"):
            ...  # buffer pool records transfers automatically
        print(stats.phases["partition"].total_ios)
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.total = PhaseStats()
        self.phases: dict[str, PhaseStats] = {}
        self._open: list[PhaseStats] = []
        # Last page position per file, separately for reads and writes:
        # a transfer is sequential when it immediately follows the
        # previous transfer of the same file (modeling per-file
        # readahead / append buffering).
        self._last_read: dict[str, int] = {}
        self._last_write: dict[str, int] = {}
        # Observability only — never read by the ledger or cost model.
        # None (the default) skips the hooks entirely; run lengths track
        # the current sequential streak per file for the transfer
        # histograms.
        self.metrics = metrics
        self._read_run: dict[str, int] = {}
        self._write_run: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Open a named accounting phase for the duration of the block."""
        bucket = self.phases.setdefault(name, PhaseStats())
        self._open.append(bucket)
        try:
            yield bucket
        finally:
            self._open.pop()

    def _buckets(self) -> list[PhaseStats]:
        # Innermost open phase wins, so phases may nest (e.g. PBSM
        # attributing repartition work back to its partition phase)
        # without double counting: the per-phase buckets always sum to
        # the total.
        if self._open:
            return [self.total, self._open[-1]]
        return [self.total]

    def record_read(self, file_name: str, page_no: int) -> None:
        """Record one physical page read; classifies it as sequential
        when it immediately follows the previous read of the same file."""
        random = self._last_read.get(file_name) != page_no - 1
        self._last_read[file_name] = page_no
        for bucket in self._buckets():
            bucket.page_reads += 1
            if random:
                bucket.random_reads += 1
        if self.metrics is not None:
            self._observe_transfer(
                "io.reads", "io.read_run_pages", self._read_run, file_name, random
            )

    def record_write(self, file_name: str, page_no: int) -> None:
        """Record one physical page write (sequential/random as above)."""
        random = self._last_write.get(file_name) != page_no - 1
        self._last_write[file_name] = page_no
        for bucket in self._buckets():
            bucket.page_writes += 1
            if random:
                bucket.random_writes += 1
        if self.metrics is not None:
            self._observe_transfer(
                "io.writes", "io.write_run_pages", self._write_run, file_name, random
            )

    def _observe_transfer(
        self,
        counter: str,
        run_histogram: str,
        runs: dict[str, int],
        file_name: str,
        random: bool,
    ) -> None:
        """Per-file transfer metrics: sequential/random counters plus a
        histogram of completed sequential run lengths (a new random
        transfer ends the previous streak)."""
        label = file_label(file_name)
        kind = "random" if random else "sequential"
        self.metrics.count(counter, file=label, kind=kind)
        if random:
            streak = runs.get(file_name, 0)
            if streak:
                self.metrics.observe(run_histogram, streak, file=label)
            runs[file_name] = 1
        else:
            runs[file_name] = runs.get(file_name, 0) + 1

    def record_hit(self) -> None:
        """Record a buffer pool hit (a logical access with no transfer)."""
        for bucket in self._buckets():
            bucket.buffer_hits += 1

    def record_hits(self, count: int) -> None:
        """Record ``count`` buffer pool hits at once (bulk-append paths
        charge the hits their record-at-a-time equivalent would have
        produced, so the ledger stays identical between the two)."""
        if count <= 0:
            return
        for bucket in self._buckets():
            bucket.buffer_hits += count

    def charge_cpu(self, op: str, count: int = 1) -> None:
        """Count ``count`` CPU operations of kind ``op`` (e.g. "hilbert",
        "mbr_test", "compare")."""
        for bucket in self._buckets():
            bucket.charge_cpu(op, count)

    def reset(self) -> None:
        """Zero all counters and phases (run-sequencing positions are
        kept).  Used after experiment setup (writing base data) so a
        join run measures only its own work."""
        if self._open:
            raise RuntimeError("cannot reset the ledger while a phase is open")
        self.total = PhaseStats()
        self.phases = {}

    def snapshot(self) -> PhaseStats:
        """A copy of the running totals (for before/after deltas)."""
        copy = PhaseStats()
        self.total.merged_into(copy)
        return copy

    def phase_snapshot(self) -> dict[str, PhaseStats]:
        """Independent deep copies of every per-phase bucket.

        Unlike reaching into :attr:`phases` directly, mutating the
        returned buckets (or their ``cpu_ops`` dicts) never aliases the
        live ledger — this is what metrics collection must use."""
        return {name: bucket.copy() for name, bucket in self.phases.items()}
