"""E-PART — throughput of the batched partition pipeline.

Measures wall-clock of the partition phase, scalar versus batched
(:mod:`repro.core.partition`), on a 100k-entity uniform workload, and
verifies the bit-identical contract while at it: same level/partition
file contents, same per-phase ledger.

The simulated quantities (page I/Os, CPU op counts) are *identical* by
construction — only the Python-level wall-clock changes, which is what
makes large-scale experiments affordable.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.baselines.pbsm import PartitionBasedSpatialMergeJoin
from repro.baselines.shj import SpatialHashJoin
from repro.core.s3j import SizeSeparationSpatialJoin
from repro.storage.manager import StorageConfig, StorageManager

from benchmarks.artifacts import write_bench_artifact
from tests.conftest import make_squares

NUM_ENTITIES = int(os.environ.get("REPRO_PARTITION_N", "100000"))
BUFFER_PAGES = 64


def _dataset():
    return make_squares(NUM_ENTITIES, 0.002, seed=20260806, name="uniform-100k")


def _run_s3j_partition(dataset, batch_size):
    """Partition one data set into level files; return wall-clock,
    file contents, and the phase ledger."""
    with StorageManager(StorageConfig(buffer_pages=BUFFER_PAGES)) as storage:
        source = dataset.write_descriptors(storage, "in")
        storage.phase_boundary()
        storage.stats.reset()
        algorithm = SizeSeparationSpatialJoin(storage, batch_size=batch_size)
        start = time.perf_counter()
        with storage.stats.phase("partition"):
            files = algorithm._partition(source, "A", bitmap=None, building=True)
        elapsed = time.perf_counter() - start
        contents = {
            level: [tuple(record) for record in handle.scan()]
            for level, handle in files.items()
        }
        return elapsed, contents, storage.stats.phases["partition"]


def test_s3j_partition_batched_speedup(benchmark):
    """Acceptance: >= 5x wall-clock on the partition phase with a
    byte-identical ledger and byte-identical level files."""
    dataset = _dataset()
    scalar_time, scalar_contents, scalar_ledger = _run_s3j_partition(dataset, None)
    batched_time, batched_contents, batched_ledger = benchmark.pedantic(
        lambda: _run_s3j_partition(dataset, 4096), rounds=1, iterations=1
    )

    assert batched_contents == scalar_contents
    assert batched_ledger == scalar_ledger
    speedup = scalar_time / batched_time
    print(
        f"\n--- S3J partition, {NUM_ENTITIES} entities ---\n"
        f"scalar  {scalar_time * 1e3:9.1f} ms\n"
        f"batched {batched_time * 1e3:9.1f} ms   ({speedup:.1f}x)"
    )
    benchmark.extra_info["entities"] = NUM_ENTITIES
    benchmark.extra_info["scalar_s"] = scalar_time
    benchmark.extra_info["batched_s"] = batched_time
    benchmark.extra_info["speedup"] = speedup
    write_bench_artifact(
        "partition_throughput",
        {
            "entities": NUM_ENTITIES,
            "scalar_s": scalar_time,
            "batched_s": batched_time,
            "speedup": speedup,
        },
    )
    assert speedup >= 5.0


@pytest.mark.parametrize("algo_name", ["pbsm", "shj"])
def test_baseline_partition_batched_parity_and_speedup(benchmark, algo_name):
    """The baselines' partition passes ride the same pipeline: verify
    the ledger contract at scale and report (don't gate) the speedup —
    SHJ's A-pass keeps a per-record argmin, so its gain is smaller."""
    a = make_squares(NUM_ENTITIES // 4, 0.002, seed=7, name="A")
    b = make_squares(NUM_ENTITIES // 4, 0.002, seed=8, name="B")

    def run(batch_size):
        with StorageManager(StorageConfig(buffer_pages=BUFFER_PAGES)) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            if algo_name == "pbsm":
                algorithm = PartitionBasedSpatialMergeJoin(
                    storage, tiles_per_dim=16, batch_size=batch_size
                )
            else:
                algorithm = SpatialHashJoin(storage, batch_size=batch_size)
            start = time.perf_counter()
            pairs, metrics = algorithm.run_filter_step(file_a, file_b)
            elapsed = time.perf_counter() - start
            return elapsed, pairs, dict(storage.stats.phases)

    scalar_time, scalar_pairs, scalar_phases = run(None)
    batched_time, batched_pairs, batched_phases = benchmark.pedantic(
        lambda: run(4096), rounds=1, iterations=1
    )
    assert batched_pairs == scalar_pairs
    assert batched_phases == scalar_phases
    speedup = scalar_time / batched_time
    print(f"\n{algo_name}: scalar {scalar_time:.2f}s, batched {batched_time:.2f}s "
          f"({speedup:.1f}x, full filter step)")
    benchmark.extra_info["speedup"] = speedup
