"""Terminal rendering of a :class:`~repro.obs.report.RunReport`.

``repro report <run.json>`` prints what a finished run looked like:
the phase table (simulated vs wall seconds, I/O counts), and — when the
run was sharded with events enabled — the straggler picture: per-shard
Gantt lanes on the run's timeline, the duration distribution, the
imbalance factor, and the critical path.  Everything here reads the
serialized report only; nothing recomputes or touches a ledger.
"""

from __future__ import annotations

from typing import Any

from repro.obs.report import RunReport
from repro.obs.straggler import ShardLane, StragglerAnalytics

GANTT_WIDTH = 48
"""Character width of the Gantt bar area."""

_BAR_FULL = "█"
_BAR_FAILED = "░"


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_ratio(value: float | None, suffix: str = "") -> str:
    return "-" if value is None else f"{value:.2f}{suffix}"


def render_header(report: RunReport) -> list[str]:
    lines = [f"algorithm : {report.algorithm}"]
    if report.workload:
        scale = f" (scale {report.scale})" if report.scale is not None else ""
        lines.append(f"workload  : {report.workload}{scale}")
    mode = report.metrics.details.get("mode", "ledger")
    lines.append(f"mode      : {mode}")
    lines.append(f"pairs     : {report.pairs:,}")
    lines.append(
        f"time      : {_fmt_seconds(report.wall_seconds)} wall, "
        f"{report.simulated_seconds:.2f}s simulated"
    )
    return lines


def render_phase_table(report: RunReport) -> list[str]:
    table = report.phase_table()
    if not table:
        return []
    lines = [
        "",
        f"{'phase':<12}{'simulated':>11}{'wall':>10}{'I/Os':>10}"
        f"{'reads':>9}{'writes':>9}",
    ]
    for name, row in table.items():
        lines.append(
            f"{name:<12}{row['simulated_s']:>10.2f}s"
            f"{_fmt_seconds(row['wall_s']):>10}{row['ios']:>10,.0f}"
            f"{row['reads']:>9,.0f}{row['writes']:>9,.0f}"
        )
    return lines


def _gantt_bar(lane: ShardLane, span_s: float, origin_s: float) -> str:
    """One lane's bar, positioned on a ``GANTT_WIDTH``-char timeline."""
    if span_s <= 0:
        return _BAR_FULL * (1 if lane.wall_s >= 0 else 0)
    start = int((lane.start_s - origin_s) / span_s * GANTT_WIDTH)
    length = max(1, round(lane.wall_s / span_s * GANTT_WIDTH))
    start = min(start, GANTT_WIDTH - 1)
    length = min(length, GANTT_WIDTH - start)
    char = _BAR_FAILED if lane.failed else _BAR_FULL
    return " " * start + char * length


def render_gantt(analytics: StragglerAnalytics) -> list[str]:
    """Per-shard lanes on the run's relative timeline."""
    lanes = sorted(analytics.lanes, key=lambda lane: (lane.start_s, lane.shard_id))
    if not lanes:
        return []
    origin = min(lane.start_s for lane in lanes)
    span = max(lane.end_s for lane in lanes) - origin
    lines = ["", f"shard lanes ({len(lanes)} shards, "
             f"makespan {_fmt_seconds(analytics.makespan_s)}):"]
    for lane in lanes:
        bar = _gantt_bar(lane, span, origin)
        status = "FAILED" if lane.failed else _fmt_seconds(lane.wall_s)
        extra = f" x{lane.attempts}" if lane.attempts > 1 else ""
        pairs = f" {lane.pairs:,}p" if lane.pairs is not None else ""
        lines.append(
            f"  {lane.shard_id:<12} |{bar:<{GANTT_WIDTH}}| {status}{pairs}{extra}"
        )
    return lines


def render_straggler_summary(analytics: StragglerAnalytics) -> list[str]:
    lines = ["", "straggler analytics:"]
    if analytics.workers is not None:
        lines.append(f"  workers             : {analytics.workers}")
    if analytics.planner is not None:
        lines.append(f"  planner             : {analytics.planner}")
    lines.append(f"  total shard work    : {_fmt_seconds(analytics.total_shard_s)}")
    lines.append(
        f"  imbalance factor    : {_fmt_ratio(analytics.imbalance_factor)}"
        "  (max shard / mean shard; 1.00 = balanced)"
    )
    if analytics.record_imbalance_factor is not None:
        lines.append(
            f"  record imbalance    : "
            f"{_fmt_ratio(analytics.record_imbalance_factor)}"
            "  (max shard records / mean; plan-deterministic)"
        )
    if analytics.residual_share is not None:
        lines.append(
            f"  residual share      : {analytics.residual_share * 100:.1f}% "
            "of shard work in residual shards"
        )
    if analytics.parallel_efficiency is not None:
        lines.append(
            f"  parallel efficiency : "
            f"{analytics.parallel_efficiency * 100:.1f}%"
        )
    pct = analytics.duration_percentiles
    if pct:
        lines.append(
            "  shard durations     : "
            f"p50 {_fmt_seconds(pct.get('p50'))}, "
            f"p95 {_fmt_seconds(pct.get('p95'))}, "
            f"p99 {_fmt_seconds(pct.get('p99'))}, "
            f"max {_fmt_seconds(pct.get('max'))}"
        )
    if analytics.retries or analytics.timeouts or analytics.failures:
        lines.append(
            f"  faults              : {analytics.retries} retries, "
            f"{analytics.timeouts} timeouts, {analytics.failures} failures"
        )
    if analytics.critical_path:
        cp = analytics.critical_path
        share = cp.get("share_of_total")
        share_text = f" ({share * 100:.1f}% of shard work)" if share else ""
        lines.append(
            f"  critical path       : {cp['shard_id']} "
            f"({_fmt_seconds(cp.get('wall_s'))}{share_text})"
        )
        phase_wall = cp.get("phase_wall") or {}
        for phase, seconds in phase_wall.items():
            lines.append(f"      {phase:<16}{_fmt_seconds(seconds):>10}")
    return lines


def render_events_summary(report: RunReport) -> list[str]:
    if not report.events:
        return []
    counts: dict[str, int] = {}
    for event in report.events:
        counts[event["type"]] = counts.get(event["type"], 0) + 1
    parts = ", ".join(f"{n} {t}" for t, n in sorted(counts.items()))
    return ["", f"events    : {len(report.events)} ({parts})"]


def render_report(report: RunReport) -> str:
    """The full terminal view of one run report."""
    lines = render_header(report)
    lines += render_phase_table(report)
    analytics = (
        StragglerAnalytics.from_dict(report.analytics)
        if report.analytics
        else None
    )
    if analytics is not None and analytics.lanes:
        lines += render_gantt(analytics)
        lines += render_straggler_summary(analytics)
    lines += render_events_summary(report)
    return "\n".join(lines) + "\n"


def analytics_of(report: RunReport) -> StragglerAnalytics | None:
    """The report's analytics, deserialized (None when absent)."""
    if not report.analytics:
        return None
    return StragglerAnalytics.from_dict(report.analytics)


def summary_dict(report: RunReport) -> dict[str, Any]:
    """A compact machine-readable summary (``repro report --json``)."""
    summary: dict[str, Any] = {
        "algorithm": report.algorithm,
        "workload": report.workload,
        "pairs": report.pairs,
        "wall_seconds": report.wall_seconds,
        "simulated_seconds": report.simulated_seconds,
        "phase_table": report.phase_table(),
        "events": len(report.events),
    }
    analytics = analytics_of(report)
    if analytics is not None:
        summary["analytics"] = {
            "shards": analytics.shard_count,
            "workers": analytics.workers,
            "planner": analytics.planner,
            "makespan_s": analytics.makespan_s,
            "imbalance_factor": analytics.imbalance_factor,
            "record_imbalance_factor": analytics.record_imbalance_factor,
            "residual_share": analytics.residual_share,
            "parallel_efficiency": analytics.parallel_efficiency,
            "duration_percentiles": analytics.duration_percentiles,
        }
    return summary
