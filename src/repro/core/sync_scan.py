"""The synchronized scan: S3J's join phase.

Every entity in a sorted level file is contained in exactly one cell of
the ``2^l`` grid at its level ``l``, and that cell corresponds to one
contiguous Hilbert key range.  Cells at different levels are either
nested or disjoint, so the entities' key ranges form a family of
*nested intervals*: two entities can intersect only if one's interval
contains the other's.

The scan merges the *pages* of all level files of both data sets in
order of Hilbert range — the paper's "process entries in A_l(Hs, He)
with those contained in B_(l-i)(Hs, He) for i = 0..l", which "strongly
resembles an L-way merge sort" (section 3.1).  Each page is read
exactly once, x-sorted once, and plane-swept (with the same sweep
module PBSM uses, per section 5) against the still-open pages of the
other data set.  A page stays open while any of its entities' intervals
can still enclose later arrivals.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterator

from repro.storage.backend import Record
from repro.storage.costs import sort_comparison_count
from repro.storage.iostats import IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.records import HKEY, XLO
from repro.sweep.plane_sweep import sweep_intersections

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventSink
    from repro.obs.metrics import MetricsRegistry

PairSink = Callable[[Record, Record], None]

_SIDE_A = 0
_SIDE_B = 1


def synchronized_scan(
    files_a: dict[int, PagedFile],
    files_b: dict[int, PagedFile],
    order: int,
    on_pair: PairSink,
    stats: IOStats | None = None,
    metrics: MetricsRegistry | None = None,
    events: EventSink | None = None,
) -> int:
    """Merge the sorted level files of both data sets, reporting every
    pair of MBR-intersecting descriptors to ``on_pair`` (``a`` first).

    ``files_a``/``files_b`` map level -> Hilbert-sorted level file;
    ``order`` is the curve order the Hilbert values were computed at.
    Returns the number of pages processed.

    ``metrics`` (observability only — never part of the simulated
    ledger) records open-page depth, per-level-pair sweep counts, and
    candidate pairs tested versus emitted.  ``events`` (also
    observability-only) receives a rate-limited liveness heartbeat per
    merged page, so a long scan stays visible in the event stream.
    """
    beat = events is not None and events.enabled
    streams = [
        _page_stream(handle, level, order, _SIDE_A, stats)
        for level, handle in files_a.items()
    ] + [
        _page_stream(handle, level, order, _SIDE_B, stats)
        for level, handle in files_b.items()
    ]
    # Open pages per side: (max interval end, x-sorted records, level).
    open_a: list[tuple[int, list[Record], int]] = []
    open_b: list[tuple[int, list[Record], int]] = []
    processed = 0
    emitted = 0
    tests_before = 0
    if metrics is not None and stats is not None:
        tests_before = stats.total.cpu_ops.get("mbr_test", 0)

    for start, tiebreak, max_end, side, records in heapq.merge(*streams):
        _expire(open_a, start)
        _expire(open_b, start)
        level = tiebreak[1]
        if metrics is not None:
            metrics.count("scan.pages", side="A" if side == _SIDE_A else "B")
            metrics.observe("scan.open_pages", len(open_a) + len(open_b))
        if side == _SIDE_A:
            for _, other_records, other_level in open_b:
                if metrics is not None:
                    metrics.count("scan.level_sweeps", a=level, b=other_level)
                for rec_a, rec_b in sweep_intersections(
                    records, other_records, stats=stats, presorted=True
                ):
                    on_pair(rec_a, rec_b)
                    emitted += 1
            open_a.append((max_end, records, level))
        else:
            for _, other_records, other_level in open_a:
                if metrics is not None:
                    metrics.count("scan.level_sweeps", a=other_level, b=level)
                for rec_b, rec_a in sweep_intersections(
                    records, other_records, stats=stats, presorted=True
                ):
                    on_pair(rec_a, rec_b)
                    emitted += 1
            open_b.append((max_end, records, level))
        processed += 1
        if beat:
            events.heartbeat("join")

    if metrics is not None:
        metrics.count("scan.pairs_emitted", emitted)
        if stats is not None:
            metrics.count(
                "scan.pairs_tested",
                stats.total.cpu_ops.get("mbr_test", 0) - tests_before,
            )
    return processed


def _page_stream(
    handle: PagedFile, level: int, order: int, side: int, stats: IOStats | None
) -> Iterator[tuple[int, tuple[int, int, int], int, int, list[Record]]]:
    """Yield (start, tiebreak, max_end, side, x-sorted records) per page.

    The interval of an entity is the Hilbert key range of its
    level-``level`` cell: the stored key truncated to the top
    ``2*level`` bits.  Truncation is monotone, so a Hilbert-sorted
    level file is also sorted by interval start, and the first record
    of a page carries the page's minimum start.
    """
    shift = 2 * (order - level)
    size = 1 << shift
    for page_no in range(handle.num_pages):
        records = handle.read_page(page_no)
        if not records:
            continue
        start = (records[0][HKEY] >> shift) << shift
        max_end = ((records[-1][HKEY] >> shift) << shift) + size
        records.sort(key=lambda record: record[XLO])
        if stats is not None:
            stats.charge_cpu("compare", sort_comparison_count(len(records)))
        yield start, (side, level, page_no), max_end, side, records


def _expire(open_pages: list[tuple[int, list[Record], int]], start: int) -> None:
    """Drop pages none of whose intervals can reach the new start.

    Page max-ends are not nested (a page mixes cells), so this is a
    filter rather than a stack pop; the open set stays small because
    only pages holding large (low-level) entities persist.
    """
    if any(end <= start for end, _, _ in open_pages):
        open_pages[:] = [item for item in open_pages if item[0] > start]
