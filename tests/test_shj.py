"""Tests for Spatial Hash Join."""

import pytest

from repro.baselines.shj import SpatialHashJoin, suggested_partitions
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import brute_force_pairs, brute_force_self_pairs, make_squares


def run_shj(dataset_a, dataset_b, buffer_pages=32, **params):
    with StorageManager(StorageConfig(buffer_pages=buffer_pages)) as storage:
        file_a = dataset_a.write_descriptors(storage, "in-a")
        file_b = dataset_b.write_descriptors(storage, "in-b")
        storage.phase_boundary()
        storage.stats.reset()
        algo = SpatialHashJoin(storage, **params)
        return algo.join(file_a, file_b, self_join=dataset_a is dataset_b)


class TestCorrectness:
    def test_matches_brute_force(self):
        a = make_squares(300, 0.03, seed=1, name="A")
        b = make_squares(300, 0.05, seed=2, name="B")
        assert run_shj(a, b).pairs == brute_force_pairs(a, b)

    def test_self_join(self):
        a = make_squares(250, 0.04, seed=3)
        assert run_shj(a, a).pairs == brute_force_self_pairs(a)

    def test_empty_first_input(self):
        a = make_squares(0, 0.1, seed=4, name="A")
        b = make_squares(50, 0.1, seed=5, name="B")
        assert run_shj(a, b).pairs == frozenset()

    def test_empty_second_input(self):
        a = make_squares(50, 0.1, seed=6, name="A")
        b = make_squares(0, 0.1, seed=7, name="B")
        assert run_shj(a, b).pairs == frozenset()

    @pytest.mark.parametrize("partitions", [2, 5, 20])
    def test_any_partition_count_correct(self, partitions):
        a = make_squares(200, 0.04, seed=8, name="A")
        b = make_squares(200, 0.04, seed=9, name="B")
        result = run_shj(a, b, num_partitions=partitions)
        assert result.pairs == brute_force_pairs(a, b)

    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_sampling_seed_never_affects_result(self, seed):
        a = make_squares(200, 0.04, seed=10, name="A")
        b = make_squares(200, 0.04, seed=11, name="B")
        result = run_shj(a, b, seed=seed)
        assert result.pairs == brute_force_pairs(a, b)

    def test_blockwise_overflow_correct(self):
        """An A partition bigger than memory must fall back to
        blockwise joins and stay exact."""
        a = make_squares(1500, 0.03, seed=12, name="A")
        b = make_squares(400, 0.03, seed=13, name="B")
        result = run_shj(a, b, buffer_pages=16, num_partitions=1)
        assert result.pairs == brute_force_pairs(a, b)
        assert result.metrics.details["overflowed_pairs"] >= 1


class TestAlgorithmShape:
    def test_no_replication_in_first_input(self):
        a = make_squares(300, 0.08, seed=14, name="A")
        b = make_squares(300, 0.08, seed=15, name="B")
        result = run_shj(a, b)
        assert result.metrics.replication_a == 1.0

    def test_second_input_replicates(self):
        """Partition MBRs overlap, so B entities are recorded in
        several partitions (section 2.2)."""
        a = make_squares(400, 0.06, seed=16, name="A")
        b = make_squares(400, 0.06, seed=17, name="B")
        result = run_shj(a, b)
        assert result.metrics.replication_b > 1.0

    def test_no_sort_phase(self):
        a = make_squares(100, 0.05, seed=18)
        result = run_shj(a, a)
        assert result.metrics.phase_names == ("partition", "join")
        assert "sort" not in result.metrics.phases

    def test_filtering_of_unmatched_b(self):
        """B entities overlapping no partition MBR are dropped."""
        import random

        from repro.geometry.entity import Entity
        from repro.geometry.rect import Rect
        from repro.join.dataset import SpatialDataset

        rng = random.Random(19)
        left = SpatialDataset(
            "left",
            [
                Entity.from_geometry(
                    i,
                    Rect(
                        x := rng.uniform(0, 0.2),
                        y := rng.uniform(0, 0.2),
                        x + 0.01,
                        y + 0.01,
                    ),
                )
                for i in range(200)
            ],
        )
        right = SpatialDataset(
            "right",
            [
                Entity.from_geometry(
                    i,
                    Rect(
                        x := rng.uniform(0.7, 0.9),
                        y := rng.uniform(0.7, 0.9),
                        x + 0.01,
                        y + 0.01,
                    ),
                )
                for i in range(200)
            ],
        )
        result = run_shj(left, right)
        assert result.pairs == frozenset()
        assert result.metrics.details["filtered_b"] == 200

    def test_sampling_charges_random_reads(self):
        """Equation 16's cD term: sampling performs random page reads."""
        a = make_squares(1700, 0.02, seed=20, name="A")
        b = make_squares(400, 0.02, seed=21, name="B")
        with StorageManager(StorageConfig(buffer_pages=32)) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            algo = SpatialHashJoin(storage, num_partitions=10)
            algo.join(file_a, file_b)
            partition = storage.stats.phases["partition"]
            assert partition.random_reads >= 5


class TestSuggestedPartitions:
    def test_scales_with_input(self):
        assert suggested_partitions(1000, 100) > suggested_partitions(100, 100)

    def test_capped_by_memory(self):
        assert suggested_partitions(100000, 50) <= 46

    def test_minimum_two(self):
        assert suggested_partitions(1, 1000) == 2
