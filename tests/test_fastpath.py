"""Tests for the in-memory vectorized fast path (``repro.fastpath``).

Three layers of evidence:

- **kernel vs oracle** — the forward-sweep interval kernel against a
  brute-force all-pairs oracle, including a hypothesis suite biased
  toward the hard inputs (duplicate coordinates, zero-area rectangles,
  boundary-touching intervals);
- **join vs oracle** — ``memory_spatial_join`` against the brute-force
  MBR join on generated workloads, self and non-self, with and without
  predicate margins;
- **cross-mode parity** — ``spatial_join(mode="memory")`` against the
  default ledger mode at worker counts 1 and 2: identical pair sets.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath import (
    ColumnarDataset,
    default_cell_level,
    forward_sweep_pairs,
    memory_spatial_join,
    sweep_intersecting_pairs,
)
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import available_algorithms, spatial_join
from repro.join.dataset import SpatialDataset
from repro.join.predicates import WithinDistance

from .conftest import brute_force_pairs, brute_force_self_pairs, make_squares

# ---------------------------------------------------------------------------
# Strategies: small discrete coordinate grids force duplicate coords and
# boundary-touching rectangles far more often than uniform floats would.

GRID = 8


def _boxes(draw, max_count: int) -> tuple[np.ndarray, ...]:
    count = draw(st.integers(min_value=0, max_value=max_count))
    coord = st.integers(min_value=0, max_value=GRID)
    xlo, ylo, xhi, yhi = [], [], [], []
    for _ in range(count):
        x1, x2 = sorted((draw(coord), draw(coord)))  # zero width allowed
        y1, y2 = sorted((draw(coord), draw(coord)))
        xlo.append(x1 / GRID)
        ylo.append(y1 / GRID)
        xhi.append(x2 / GRID)
        yhi.append(y2 / GRID)
    return tuple(np.asarray(arr, dtype=np.float64) for arr in (xlo, ylo, xhi, yhi))


@st.composite
def box_arrays(draw, max_count: int = 12):
    return _boxes(draw, max_count)


def _oracle_x_pairs(axlo, axhi, bxlo, bxhi) -> set[tuple[int, int]]:
    return {
        (i, j)
        for i in range(len(axlo))
        for j in range(len(bxlo))
        if axlo[i] <= bxhi[j] and bxlo[j] <= axhi[i]
    }


def _oracle_box_pairs(a, b) -> set[tuple[int, int]]:
    axlo, aylo, axhi, ayhi = a
    bxlo, bylo, bxhi, byhi = b
    return {
        (i, j)
        for i in range(len(axlo))
        for j in range(len(bxlo))
        if axlo[i] <= bxhi[j]
        and bxlo[j] <= axhi[i]
        and aylo[i] <= byhi[j]
        and bylo[j] <= ayhi[i]
    }


class TestForwardSweepKernel:
    @settings(max_examples=200, deadline=None)
    @given(a=box_arrays(), b=box_arrays())
    def test_x_candidates_match_oracle(self, a, b):
        axlo, _, axhi, _ = a
        bxlo, _, bxhi, _ = b
        oa = np.argsort(axlo, kind="stable")
        ob = np.argsort(bxlo, kind="stable")
        ia, ib = forward_sweep_pairs(axlo[oa], axhi[oa], bxlo[ob], bxhi[ob])
        got = set(zip(oa[ia].tolist(), ob[ib].tolist()))
        assert len(ia) == len(got), "kernel produced a duplicate pair"
        assert got == _oracle_x_pairs(axlo, axhi, bxlo, bxhi)

    @settings(max_examples=200, deadline=None)
    @given(a=box_arrays(), b=box_arrays())
    def test_intersecting_pairs_match_oracle(self, a, b):
        ia, ib, candidates = sweep_intersecting_pairs(*a, *b)
        got = set(zip(ia.tolist(), ib.tolist()))
        assert len(ia) == len(got), "kernel produced a duplicate pair"
        assert got == _oracle_box_pairs(a, b)
        assert candidates >= len(got)

    def test_boundary_touching_counts(self):
        # a.xhi == b.xlo and a.yhi == b.ylo: closed intervals intersect.
        a = tuple(np.array([v]) for v in (0.0, 0.0, 0.25, 0.25))
        b = tuple(np.array([v]) for v in (0.25, 0.25, 0.5, 0.5))
        ia, ib, _ = sweep_intersecting_pairs(*a, *b)
        assert set(zip(ia.tolist(), ib.tolist())) == {(0, 0)}

    def test_duplicate_identical_boxes(self):
        coords = (
            np.array([0.1, 0.1, 0.1]),
            np.array([0.2, 0.2, 0.2]),
            np.array([0.3, 0.3, 0.3]),
            np.array([0.4, 0.4, 0.4]),
        )
        ia, ib, _ = sweep_intersecting_pairs(*coords, *coords)
        assert len(ia) == 9  # full 3x3 cross product, each pair once

    def test_zero_area_point_on_edge(self):
        point = tuple(np.array([v]) for v in (0.5, 0.5, 0.5, 0.5))
        box = tuple(np.array([v]) for v in (0.25, 0.25, 0.5, 0.5))
        ia, ib, _ = sweep_intersecting_pairs(*point, *box)
        assert len(ia) == 1

    def test_empty_inputs(self):
        empty = tuple(np.empty(0) for _ in range(4))
        box = tuple(np.array([v]) for v in (0.0, 0.0, 1.0, 1.0))
        for a, b in [(empty, box), (box, empty), (empty, empty)]:
            ia, ib, candidates = sweep_intersecting_pairs(*a, *b)
            assert len(ia) == len(ib) == candidates == 0


class TestColumnarDataset:
    def test_margin_matches_entity_expansion(self):
        dataset = make_squares(40, 0.02, seed=7)
        margin = 0.015625  # 2**-6, exactly representable
        col = ColumnarDataset.from_dataset(dataset, margin=margin)
        for idx, entity in enumerate(dataset):
            box = entity.mbr.expanded(margin).clamped()
            assert col.xlo[idx] == box.xlo and col.xhi[idx] == box.xhi
            assert col.ylo[idx] == box.ylo and col.yhi[idx] == box.yhi

    def test_empty_dataset(self):
        col = ColumnarDataset.from_dataset(SpatialDataset("empty", []))
        assert len(col) == 0
        assert col.level.dtype == np.int64 and col.key.dtype == np.int64

    def test_default_cell_level_bounds(self):
        assert default_cell_level(0, max_level=8) == 0
        assert default_cell_level(100, max_level=8) == 0
        assert default_cell_level(128 * 4**3, max_level=8) == 3
        assert default_cell_level(10**9, max_level=8) == 8


class TestMemoryJoinOracle:
    @pytest.mark.parametrize("count", [0, 1, 2, 50, 300])
    def test_self_join_matches_brute_force(self, count):
        dataset = make_squares(count, 0.02, seed=count)
        result = memory_spatial_join(dataset, dataset)
        assert result.pairs == brute_force_self_pairs(dataset)
        assert result.complete

    @pytest.mark.parametrize("count", [0, 1, 50, 300])
    def test_non_self_join_matches_brute_force(self, count):
        a = make_squares(count, 0.02, seed=count, name="A")
        b = make_squares(max(count, 1), 0.03, seed=count + 1, name="B")
        result = memory_spatial_join(a, b)
        assert result.pairs == brute_force_pairs(a, b)

    def test_within_distance_margin_applied(self):
        a = make_squares(80, 0.01, seed=3, name="A")
        b = make_squares(80, 0.01, seed=4, name="B")
        predicate = WithinDistance(0.01)
        result = memory_spatial_join(a, b, predicate=predicate)
        assert result.pairs == brute_force_pairs(a, b, predicate.mbr_margin)

    @pytest.mark.parametrize("cell_level", [0, 1, 3, 5])
    def test_forced_cell_level_parity(self, cell_level):
        a = make_squares(120, 0.015, seed=9, name="A")
        b = make_squares(130, 0.02, seed=10, name="B")
        expected = brute_force_pairs(a, b)
        result = memory_spatial_join(a, b, cell_level=cell_level)
        assert result.pairs == expected

    def test_all_residual_skew(self):
        # Every box straddles the center point: all land at level 0, so
        # the join degenerates to one group pair (the worst-case skew).
        entities = [
            Entity.from_geometry(
                eid, Rect(0.5 - d, 0.5 - d, 0.5 + d, 0.5 + d)
            )
            for eid, d in enumerate(np.linspace(0.01, 0.3, 30))
        ]
        dataset = SpatialDataset("skew", entities)
        result = memory_spatial_join(dataset, dataset)
        assert result.pairs == brute_force_self_pairs(dataset)
        assert len(result.pairs) == 30 * 29 // 2

    def test_metrics_shape(self):
        a = make_squares(60, 0.02, seed=1, name="A")
        b = make_squares(60, 0.02, seed=2, name="B")
        result = memory_spatial_join(a, b)
        metrics = result.metrics
        assert metrics.details["mode"] == "memory"
        assert metrics.total_ios == 0
        assert set(metrics.breakdown()) == {"partition", "sort", "join"}
        json.dumps(metrics.to_dict())  # must be serializable

    def test_refine(self):
        a = make_squares(60, 0.02, seed=5, name="A")
        predicate = WithinDistance(0.01)
        result = memory_spatial_join(a, a, predicate=predicate, refine=True)
        assert result.refined is not None
        assert result.refined <= result.pairs


class TestCrossModeParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_non_self_parity(self, workers):
        a = make_squares(150, 0.015, seed=11, name="A")
        b = make_squares(170, 0.02, seed=12, name="B")
        ledger = spatial_join(a, b, workers=workers, mode="ledger")
        memory = spatial_join(a, b, workers=workers, mode="memory")
        assert ledger.pairs == memory.pairs == brute_force_pairs(a, b)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_self_join_within_distance_parity(self, workers):
        a = make_squares(140, 0.01, seed=13)
        predicate = WithinDistance(0.004)
        ledger = spatial_join(
            a, a, predicate=predicate, workers=workers, mode="ledger"
        )
        memory = spatial_join(
            a, a, predicate=predicate, workers=workers, mode="memory"
        )
        expected = brute_force_self_pairs(a, predicate.mbr_margin)
        assert ledger.pairs == memory.pairs == expected


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        a = make_squares(5, 0.1, seed=0)
        with pytest.raises(ValueError, match="unknown mode"):
            spatial_join(a, a, mode="turbo")

    def test_memory_mode_requires_s3j(self):
        a = make_squares(5, 0.1, seed=0)
        with pytest.raises(ValueError, match="memory"):
            spatial_join(a, a, algorithm="pbsm", mode="memory")

    def test_memory_mode_rejects_storage(self):
        from repro.join.api import default_storage_config

        a = make_squares(5, 0.1, seed=0)
        with pytest.raises(ValueError, match="storage"):
            spatial_join(
                a, a, mode="memory", storage=default_storage_config(a, a)
            )

    def test_memory_mode_rejects_ledger_params(self):
        a = make_squares(5, 0.1, seed=0)
        with pytest.raises(ValueError, match="dsb_level"):
            spatial_join(a, a, mode="memory", dsb_level=2)

    def test_runner_rejects_fault_layers(self):
        from repro.experiments.runner import run_algorithm
        from repro.faults.retry import RetryPolicy

        a = make_squares(5, 0.1, seed=0)
        with pytest.raises(ValueError, match="storage"):
            run_algorithm(a, a, "s3j", mode="memory", retry=RetryPolicy())


EXACT_EPS = 0.0625  # 2**-4: the distance below is exactly representable


def _exact_margin_points() -> tuple[SpatialDataset, SpatialDataset]:
    """Two points whose x-distance is *exactly* the predicate distance.

    With ``WithinDistance(0.0625)`` each box expands by ``eps/2`` per
    side, so the expanded boxes touch at x = 0.5 exactly — a pair that
    only closed-interval semantics keeps, sitting precisely on a
    Hilbert cell boundary at every level (the sharded planner's worst
    case).
    """
    left = Entity.from_geometry(0, Rect(0.46875, 0.5, 0.46875, 0.5))
    right = Entity.from_geometry(1, Rect(0.53125, 0.5, 0.53125, 0.5))
    return (
        SpatialDataset("left", [left]),
        SpatialDataset("right", [right]),
    )


class TestWithinDistanceExactMargin:
    """Regression: distance exactly equal to the predicate margin.

    The pair's expanded MBRs share a single boundary point on the
    center meridian; every executor configuration must report it.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["ledger", "memory"])
    def test_non_self(self, workers, mode):
        a, b = _exact_margin_points()
        result = spatial_join(
            a,
            b,
            predicate=WithinDistance(EXACT_EPS),
            workers=workers,
            mode=mode,
        )
        assert result.pairs == {(0, 1)}

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["ledger", "memory"])
    def test_self(self, workers, mode):
        a, b = _exact_margin_points()
        dataset = SpatialDataset("both", list(a) + list(b))
        result = spatial_join(
            dataset,
            dataset,
            predicate=WithinDistance(EXACT_EPS),
            workers=workers,
            mode=mode,
        )
        assert result.pairs == {(0, 1)}

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["ledger", "memory"])
    def test_exact_grid_chain(self, workers, mode):
        # Points spaced exactly eps apart along y = 0.5: every adjacent
        # pair sits exactly at the margin, non-adjacent pairs beyond it.
        xs = [0.25 + k * EXACT_EPS for k in range(8)]
        dataset = SpatialDataset(
            "chain",
            [
                Entity.from_geometry(eid, Rect(x, 0.5, x, 0.5))
                for eid, x in enumerate(xs)
            ],
        )
        result = spatial_join(
            dataset,
            dataset,
            predicate=WithinDistance(EXACT_EPS),
            workers=workers,
            mode=mode,
        )
        expected = {(eid, eid + 1) for eid in range(7)}
        assert result.pairs == expected


def _degenerate_datasets() -> dict[str, SpatialDataset]:
    skew = SpatialDataset(
        "skew",
        [
            Entity.from_geometry(
                eid, Rect(0.5 - d, 0.5 - d, 0.5 + d, 0.5 + d)
            )
            for eid, d in enumerate([0.01, 0.05, 0.1, 0.2, 0.3])
        ],
    )
    return {
        "empty": SpatialDataset("empty", []),
        "single": SpatialDataset(
            "single", [Entity.from_geometry(0, Rect(0.4, 0.4, 0.6, 0.6))]
        ),
        "skew": skew,
    }


class TestDegenerateMatrix:
    """0-entity, 1-entity, and all-residual inputs through every
    algorithm, worker count, and execution mode that accepts them."""

    @pytest.mark.parametrize("shape", ["empty", "single", "skew"])
    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_serial_ledger(self, shape, algorithm):
        dataset = _degenerate_datasets()[shape]
        result = spatial_join(dataset, dataset, algorithm=algorithm)
        assert result.pairs == brute_force_self_pairs(dataset)
        assert result.complete

    @pytest.mark.parametrize("shape", ["empty", "single", "skew"])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("mode", ["ledger", "memory"])
    def test_s3j_worker_mode_matrix(self, shape, workers, mode):
        dataset = _degenerate_datasets()[shape]
        result = spatial_join(
            dataset, dataset, workers=workers, mode=mode
        )
        assert result.pairs == brute_force_self_pairs(dataset)
        assert result.complete

    @pytest.mark.parametrize("mode", ["ledger", "memory"])
    def test_empty_against_populated(self, mode):
        empty = _degenerate_datasets()["empty"]
        populated = make_squares(30, 0.05, seed=21, name="pop")
        for a, b in [(empty, populated), (populated, empty)]:
            result = spatial_join(a, b, mode=mode)
            assert result.pairs == frozenset()
            assert result.complete
