"""The resident S3J index: level files + delta + tombstones + epoch.

A level file is just a Hilbert-sorted run (PAPER.md section 3), so the
LSM idiom applies directly: the **base** is the partitioned + sorted
level files kept open across queries in one long-lived storage
manager; incremental ``insert``/``delete`` land in a small in-memory
**delta** (one sorted buffer per level, deletes of base entities as
tombstones) merged into every query's view; ``compact`` folds the delta
back into the level files (write-new + atomic rename, the external
sorter's temp-file discipline) once it grows past a threshold.

Every mutation *and* every compaction bumps the **epoch**.  The epoch
is the index's only cache key ingredient besides the query itself: a
result cached at epoch ``e`` is valid exactly as long as the live set
is the one ``e`` named — compaction changes no live entity but does
change which files back them, so it too must (and does) advance the
epoch rather than silently re-using entries computed against dropped
files.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
from bisect import insort
from pathlib import Path
from typing import Iterable, Iterator

from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import DEFAULT_MAX_LEVEL, LevelAssigner
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.join.result import Pair, canonical_pairs
from repro.obs import Observability
from repro.service.scan import DEFAULT_CHUNK_RECORDS, live_self_scan
from repro.storage.backend import Record
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, HKEY, XHI, XLO, YHI, YLO

DEFAULT_COMPACTION_THRESHOLD = 256
"""Delta records (inserts + tombstones) that trigger compaction."""

SNAPSHOT_FILE = "index-snapshot.json"
"""Delta/tombstone/epoch snapshot of a durable index, in its data
directory next to the page store.  Written atomically before every
mutation is acknowledged."""

SNAPSHOT_SCHEMA = 1


def _sort_key(record: Record) -> tuple[int, int]:
    """Level files are Hilbert-sorted; eid breaks ties deterministically."""
    return (record[HKEY], record[EID])


class PersistentIndex:
    """One resident spatial-join index over a long-lived storage manager.

    Synchronous and single-writer by design: the service front-end
    (:class:`repro.service.api.JoinService`) serializes mutations and
    compaction around queries.  All query I/O against the base level
    files is charged to the manager's simulated ledger under the
    ``query`` / ``compaction`` phases, so ``repro report`` renders a
    service run with the same machinery as a batch join.
    """

    def __init__(
        self,
        entities: Iterable[Entity] = (),
        storage: StorageConfig | None = None,
        obs: Observability | None = None,
        curve: SpaceFillingCurve | None = None,
        max_level: int = DEFAULT_MAX_LEVEL,
        compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        name: str = "idx",
        data_dir: str | None = None,
    ) -> None:
        if compaction_threshold < 1:
            raise ValueError("compaction_threshold must be positive")
        self.curve = curve or HilbertCurve()
        self.assigner = LevelAssigner(
            order=self.curve.order, max_level=min(max_level, self.curve.order)
        )
        config = storage or StorageConfig()
        if data_dir is not None:
            # A durable index: the page store (and its WAL) plus the
            # delta snapshot all live under this directory, and a later
            # process can reopen the whole thing.
            config = dataclasses.replace(
                config, backend="durable", directory=data_dir
            )
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.storage = StorageManager(config, obs=obs)
        self.obs = self.storage.obs
        self.name = name
        self.compaction_threshold = compaction_threshold
        self.chunk_records = chunk_records
        self.epoch = 0
        self.compactions = 0
        self.recovered = False
        self._base: dict[int, PagedFile] = {}
        self._delta: dict[int, list[Record]] = {}
        self._tombstones: dict[int, set[int]] = {}  # level -> base eids
        self._live: dict[int, tuple[int, Entity]] = {}  # eid -> (level, entity)
        seed = list(entities)
        if self.data_dir is not None:
            self._sweep_orphans()
        if self.data_dir is not None and (self.data_dir / SNAPSHOT_FILE).exists():
            if seed:
                raise ValueError(
                    f"{self.data_dir} already holds an index; reopening "
                    "cannot also bulk-load entities"
                )
            self._reopen()
        else:
            self._bulk_load(seed)
            self._persist()

    # -- construction ----------------------------------------------------

    def _describe(self, entity: Entity) -> tuple[int, Record]:
        box = entity.mbr
        level = self.assigner.level(box)
        hilbert = self.curve.key_of_normalized(*box.center)
        record = (entity.eid, box.xlo, box.ylo, box.xhi, box.yhi, hilbert)
        return level, record

    def _bulk_load(self, entities: list[Entity]) -> None:
        by_level: dict[int, list[Record]] = {}
        for entity in entities:
            if entity.eid in self._live:
                raise ValueError(f"duplicate entity id {entity.eid}")
            level, record = self._describe(entity)
            by_level.setdefault(level, []).append(record)
            self._live[entity.eid] = (level, entity)
        with self.storage.stats.phase("load"):
            for level, records in sorted(by_level.items()):
                records.sort(key=_sort_key)
                handle = self.storage.create_file(self._level_name(level))
                handle.append_many(records)
                handle.flush()
                self._base[level] = handle

    def _level_name(self, level: int) -> str:
        return f"{self.name}-L{level}"

    # -- durability ------------------------------------------------------

    @classmethod
    def open(
        cls,
        data_dir: str,
        storage: StorageConfig | None = None,
        obs: Observability | None = None,
        **kwargs: object,
    ) -> PersistentIndex:
        """Open (or create) a durable index rooted at ``data_dir`` —
        sugar for ``PersistentIndex(data_dir=...)``."""
        return cls(storage=storage, obs=obs, data_dir=data_dir, **kwargs)  # type: ignore[arg-type]

    def _sweep_orphans(self) -> None:
        """Resolve debris a dead process left behind.

        Half-written ``*.tmp`` files from interrupted atomic writes are
        deleted.  A ``-compact`` level file is an interrupted compaction
        rename, and which half of the rename it died in decides its
        fate: the replace-rename deletes the old base *before* renaming
        the temp onto its name, and the temp is fully written and
        durable before the rename begins — so a temp whose base still
        exists lost the race (the base is authoritative; drop the temp),
        while a temp whose base is *gone* is the complete replacement
        (finish the rename it was killed in the middle of).
        """
        assert self.data_dir is not None
        for tmp in self.data_dir.glob("*.tmp"):
            tmp.unlink()
        stored = set(self.storage.stored_files())
        for name in sorted(stored):
            if not name.endswith("-compact"):
                continue
            base = name[: -len("-compact")]
            if base in stored:
                self._backend().delete_file(name)
            else:
                self._backend().rename_file(name, base)

    def _backend(self):
        """The innermost (catalog-bearing) backend of the manager."""
        backend = self.storage.backend
        while not hasattr(backend, "stored_files"):
            backend = backend.inner
        return backend

    def _persist(self) -> None:
        """Write the delta snapshot atomically (fsync + rename).

        Called after every mutation *before* the caller gets its new
        epoch back, so an acknowledged operation is on the medium: the
        base level files are durable the moment their pages hit the
        WAL-backed store, and everything else — delta buffers,
        tombstones, epoch — round-trips through this snapshot.  A crash
        mid-write leaves the previous snapshot intact (atomic replace),
        so recovery sees either k or k+1 acknowledged operations, never
        a torn state.  Plain file I/O, invisible to the simulated
        ledger.
        """
        if self.data_dir is None:
            return
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "name": self.name,
            "epoch": self.epoch,
            "compactions": self.compactions,
            "levels": sorted(self._base),
            "delta": {
                str(level): [list(record) for record in records]
                for level, records in sorted(self._delta.items())
            },
            "tombstones": {
                str(level): sorted(dead)
                for level, dead in sorted(self._tombstones.items())
            },
        }
        from repro.obs.fileio import atomic_write_json

        atomic_write_json(self.data_dir / SNAPSHOT_FILE, payload, indent=None)

    def _reopen(self) -> None:
        """Rebuild the live index from the page store and the snapshot.

        All reads go straight to the recovered backend catalog — never
        through the buffer pool — so reopening is free in the simulated
        ledger, like process start-up should be.

        The snapshot may be one acknowledged mutation *ahead* of a
        compaction that did or did not commit before the crash (rename
        logged vs. not), so the delta is normalized against the
        recovered base: a delta record already present verbatim in its
        base level was folded by a committed compaction and is dropped,
        as is a tombstone whose eid no longer appears in the base.
        """
        assert self.data_dir is not None
        data = json.loads((self.data_dir / SNAPSHOT_FILE).read_text("utf-8"))
        if data.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"unsupported snapshot schema {data.get('schema')!r}")
        if data.get("name") != self.name:
            raise ValueError(
                f"store at {self.data_dir} holds index {data.get('name')!r}, "
                f"asked to open {self.name!r}"
            )
        self.epoch = int(data["epoch"])
        self.compactions = int(data["compactions"])
        self.recovered = True

        def typed(row: list) -> Record:
            return (
                int(row[0]),
                float(row[1]),
                float(row[2]),
                float(row[3]),
                float(row[4]),
                int(row[5]),
            )

        # Base levels: every surviving level file in the catalog (the
        # snapshot's level list can trail a committed compaction that
        # emptied or created a level, so the catalog is authoritative).
        prefix = f"{self.name}-L"
        base_records: dict[int, list[Record]] = {}
        for stored in self.storage.stored_files():
            if not stored.startswith(prefix):
                continue
            level = int(stored[len(prefix) :])
            handle = self.storage.attach_file(stored)
            self._base[level] = handle
            base_records[level] = list(self._raw_scan(handle))
        snapshot_delta = {
            int(key): [typed(row) for row in rows]
            for key, rows in data["delta"].items()
        }
        snapshot_dead = {
            int(key): {int(eid) for eid in eids}
            for key, eids in data["tombstones"].items()
        }
        for level in sorted(set(snapshot_delta) | set(snapshot_dead)):
            by_eid = {r[EID]: r for r in base_records.get(level, ())}
            # A delta record found verbatim in the base was folded by a
            # compaction that committed (rename logged) just before the
            # crash; its tombstone twin, if any, is equally stale.  A
            # record *not* in the base is still pending — and so is a
            # tombstone whose eid the base still carries.
            records = [
                r for r in snapshot_delta.get(level, []) if by_eid.get(r[EID]) != r
            ]
            pending = {r[EID] for r in records}
            dead = {
                eid
                for eid in snapshot_dead.get(level, set())
                if eid in by_eid and (eid in pending or eid not in {
                    r[EID] for r in snapshot_delta.get(level, [])
                })
            }
            if records:
                self._delta[level] = records
            if dead:
                self._tombstones[level] = dead
        # The live set: base minus tombstones, plus the delta.
        for level, records in base_records.items():
            dead = self._tombstones.get(level, set())
            for record in records:
                if record[EID] not in dead:
                    self._live[record[EID]] = (level, self._entity_of(record))
        for level, records in self._delta.items():
            for record in records:
                self._live[record[EID]] = (level, self._entity_of(record))
        self._persist()

    def _raw_scan(self, handle: PagedFile) -> Iterator[Record]:
        """Every record of a base file, read directly from the backend
        (no buffer pool, no ledger charge)."""
        backend = self._backend()
        for page_no in range(handle.num_pages):
            yield from backend.read_page(handle.name, page_no)

    @staticmethod
    def _entity_of(record: Record) -> Entity:
        return Entity(
            record[EID], Rect(record[XLO], record[YLO], record[XHI], record[YHI])
        )

    # -- the live view ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, eid: int) -> bool:
        return eid in self._live

    @property
    def delta_records(self) -> int:
        """Pending delta size: buffered inserts plus tombstones."""
        return sum(len(buf) for buf in self._delta.values()) + sum(
            len(dead) for dead in self._tombstones.values()
        )

    @property
    def needs_compaction(self) -> bool:
        return self.delta_records >= self.compaction_threshold

    def levels(self) -> list[int]:
        """Levels with any live or pending data, sorted."""
        return sorted(set(self._base) | set(self._delta))

    def level_records(self, level: int) -> Iterator[Record]:
        """The live records of one level in Hilbert order: the base
        level file merged with the delta buffer, minus tombstones.
        Base pages are read through the buffer pool, so the simulated
        ledger prices every query's base I/O."""
        handle = self._base.get(level)
        base: Iterable[Record] = handle.scan() if handle is not None else ()
        delta = self._delta.get(level, ())
        dead = self._tombstones.get(level)
        if dead:
            # Tombstones name *base* records only — a delta record with
            # the same eid (a re-insert after deleting a base entity)
            # is live and must pass through.
            base = (record for record in base if record[EID] not in dead)
        return heapq.merge(base, delta, key=_sort_key)

    def live_entities(self) -> list[Entity]:
        """The live entity set (insertion-independent order: by eid)."""
        return [entity for _, (_, entity) in sorted(self._live.items())]

    def snapshot_dataset(self, name: str = "live") -> SpatialDataset:
        """The live set as a :class:`SpatialDataset` — the input the
        cold-batch oracle joins (verify/service.py)."""
        return SpatialDataset(name, self.live_entities())

    # -- mutations -------------------------------------------------------

    def insert(self, entity: Entity) -> int:
        """Add one entity to the live set; returns the new epoch."""
        if entity.eid in self._live:
            raise ValueError(f"entity id {entity.eid} is already live")
        level, record = self._describe(entity)
        insort(self._delta.setdefault(level, []), record, key=_sort_key)
        self._live[entity.eid] = (level, entity)
        self.epoch += 1
        self._persist()
        return self.epoch

    def delete(self, eid: int) -> int:
        """Remove one live entity; returns the new epoch.

        An entity still sitting in the delta is removed outright; an
        entity already in a base level file gets a tombstone that the
        merge applies until the next compaction folds it in.
        """
        try:
            level, _ = self._live.pop(eid)
        except KeyError:
            raise KeyError(f"no live entity with id {eid}") from None
        buffer = self._delta.get(level)
        if buffer is not None:
            for position, record in enumerate(buffer):
                if record[EID] == eid:
                    del buffer[position]
                    if not buffer:
                        del self._delta[level]
                    break
            else:
                self._tombstones.setdefault(level, set()).add(eid)
        else:
            self._tombstones.setdefault(level, set()).add(eid)
        self.epoch += 1
        self._persist()
        return self.epoch

    # -- compaction ------------------------------------------------------

    def compact(self) -> bool:
        """Fold the delta and tombstones into the base level files.

        Write-new + atomic rename per affected level (the external
        sorter's temp-file discipline: the replacement is complete
        before it takes the base name, and the temp file is dropped on
        any failure).  Returns whether anything was folded; when it
        was, the epoch advances so cached results keyed on the old
        epoch can never be served against the new file set.
        """
        affected = sorted(set(self._delta) | set(self._tombstones))
        if not affected:
            return False
        with self.storage.stats.phase("compaction"):
            self.storage.phase_boundary()
            for level in affected:
                records = list(self.level_records(level))
                temp_name = f"{self._level_name(level)}-compact"
                temp = self.storage.create_file(temp_name)
                try:
                    temp.append_many(records)
                    temp.flush()
                    if records:
                        self.storage.rename_file(
                            temp_name, self._level_name(level), replace=True
                        )
                        self._base[level] = temp
                    else:
                        self.storage.drop_file(temp_name)
                        if level in self._base:
                            self.storage.drop_file(self._level_name(level))
                            del self._base[level]
                except BaseException:
                    if temp_name in self.storage.list_files():
                        self.storage.drop_file(temp_name)
                    raise
                self._delta.pop(level, None)
                self._tombstones.pop(level, None)
        self.compactions += 1
        self.epoch += 1
        self._persist()
        return True

    # -- queries ---------------------------------------------------------

    def point_query(self, x: float, y: float) -> tuple[int, ...]:
        """Ids of live entities whose MBR contains the point, sorted."""
        return self.window_query(Rect.point(x, y))

    def window_query(self, window: Rect) -> tuple[int, ...]:
        """Ids of live entities whose MBR intersects the window, sorted.

        A linear merge-scan of every level's live stream (closed-
        interval semantics, same as the sweep) — correctness-first; the
        base pages it touches are priced by the ledger like any scan.
        """
        hits: list[int] = []
        with self.storage.stats.phase("query"):
            self.storage.phase_boundary()
            for level in self.levels():
                for record in self.level_records(level):
                    if (
                        record[XLO] <= window.xhi
                        and window.xlo <= record[XHI]
                        and record[YLO] <= window.yhi
                        and window.ylo <= record[YHI]
                    ):
                        hits.append(record[EID])
        return tuple(sorted(hits))

    def self_join(self) -> frozenset[Pair]:
        """All intersecting live pairs — the synchronized self-scan over
        the live per-level streams, canonicalized like a batch self
        join (``(min, max)``, no ``(e, e)``)."""
        raw: set[Pair] = set()
        with self.storage.stats.phase("query"):
            self.storage.phase_boundary()
            live_self_scan(
                {level: self.level_records(level) for level in self.levels()},
                self.curve.order,
                lambda a, b: raw.add((a[EID], b[EID])),
                chunk_records=self.chunk_records,
                stats=self.storage.stats,
                metrics=self.obs.active_metrics,
            )
        return canonical_pairs(raw, self_join=True)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the storage manager (idempotent)."""
        self.storage.close()

    def __enter__(self) -> PersistentIndex:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
