"""Guttman R-tree with quadratic split, plus STR bulk loading."""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats


class _Node:
    """One R-tree node: entries are (mbr, child-or-payload) pairs."""

    __slots__ = ("leaf", "entries")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: list[tuple[Rect, Any]] = []

    def mbr(self) -> Rect:
        box = self.entries[0][0]
        for rect, _ in self.entries[1:]:
            box = box.union(rect)
        return box


class RTree:
    """A dynamic R-tree over (MBR, payload) pairs.

    ``max_entries`` is the node fanout; with the default entity
    descriptor (48 bytes) about 85 entries fit a 4 KB page, but a
    smaller default keeps trees bushy on the modest partition sizes
    SHJ builds them over.  Node visits during insertion and search are
    charged to ``stats`` as ``rtree`` CPU operations when provided.
    """

    def __init__(
        self,
        max_entries: int = 32,
        min_entries: int | None = None,
        stats: IOStats | None = None,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, max_entries // 3)
        if self.min_entries > max_entries // 2:
            raise ValueError("min_entries must be at most max_entries / 2")
        self.stats = stats
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        height = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0][1]
            height += 1
        return height

    # -- construction -----------------------------------------------------

    def insert(self, mbr: Rect, payload: Any) -> None:
        """Insert one (MBR, payload) pair."""
        split = self._insert(self._root, mbr, payload)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            self._root.entries = [
                (old_root.mbr(), old_root),
                (split.mbr(), split),
            ]
        self._size += 1

    @classmethod
    def bulk_load(
        cls,
        items: list[tuple[Rect, Any]],
        max_entries: int = 32,
        stats: IOStats | None = None,
    ) -> RTree:
        """Sort-Tile-Recursive bulk loading: packs leaves by x-then-y
        tile order, then builds upper levels bottom-up."""
        tree = cls(max_entries=max_entries, stats=stats)
        if not items:
            return tree
        leaves: list[_Node] = []
        for group in _str_tiles(items, max_entries):
            leaf = _Node(leaf=True)
            leaf.entries = group
            leaves.append(leaf)
        level: list[_Node] = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            packed = _str_tiles([(n.mbr(), n) for n in level], max_entries)
            for group in packed:
                parent = _Node(leaf=False)
                parent.entries = group
                parents.append(parent)
            level = parents
        tree._root = level[0]
        tree._size = len(items)
        return tree

    # -- queries ----------------------------------------------------------

    def search(self, window: Rect) -> Iterator[Any]:
        """Yield payloads whose MBR intersects the query window."""
        for _, payload in self.search_entries(window):
            yield payload

    def search_entries(self, window: Rect) -> Iterator[tuple[Rect, Any]]:
        """Yield (MBR, payload) entries intersecting the query window."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._charge()
            for rect, child in node.entries:
                if rect.intersects(window):
                    if node.leaf:
                        yield rect, child
                    else:
                        stack.append(child)

    def all_entries(self) -> Iterator[tuple[Rect, Any]]:
        """Yield every stored (MBR, payload) pair."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for rect, child in node.entries:
                if node.leaf:
                    yield rect, child
                else:
                    stack.append(child)

    # -- invariant checks (used by the test suite) --------------------------

    def check_invariants(self) -> None:
        """Verify R-tree structural invariants; raises AssertionError."""
        self._check(self._root, is_root=True)

    def _check(self, node: _Node, is_root: bool) -> int:
        if not is_root:
            assert len(node.entries) >= self.min_entries, "node underflow"
        assert len(node.entries) <= self.max_entries, "node overflow"
        if node.leaf:
            return 1
        depths = set()
        for rect, child in node.entries:
            assert rect.contains(child.mbr()), "parent MBR does not cover child"
            depths.add(self._check(child, is_root=False))
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1

    # -- internals ----------------------------------------------------------

    def _charge(self) -> None:
        if self.stats is not None:
            self.stats.charge_cpu("rtree")

    def _insert(self, node: _Node, mbr: Rect, payload: Any) -> _Node | None:
        """Recursive insert; returns the new sibling if ``node`` split."""
        self._charge()
        if node.leaf:
            node.entries.append((mbr, payload))
        else:
            index = self._choose_subtree(node, mbr)
            child_rect, child = node.entries[index]
            split = self._insert(child, mbr, payload)
            if split is not None:
                # The child lost entries to its new sibling: recompute
                # both MBRs tightly.
                node.entries[index] = (child.mbr(), child)
                node.entries.append((split.mbr(), split))
            else:
                node.entries[index] = (child_rect.union(mbr), child)
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, mbr: Rect) -> int:
        """Guttman's ChooseLeaf: least enlargement, ties by least area."""
        best_index = 0
        best_enlargement = math.inf
        best_area = math.inf
        for index, (rect, _) in enumerate(node.entries):
            area = rect.area
            enlargement = rect.union(mbr).area - area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = index
                best_enlargement = enlargement
                best_area = area
        return best_index

    def _split(self, node: _Node) -> _Node:
        """Quadratic split; ``node`` keeps one group, the returned new
        sibling gets the other."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = entries[seed_a][0]
        box_b = entries[seed_b][0]
        remaining = [
            entry for i, entry in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # If one group must take everything to reach min_entries, do so.
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            if need_a >= len(remaining):
                group_a.extend(remaining)
                box_a = _extend(box_a, remaining)
                break
            if need_b >= len(remaining):
                group_b.extend(remaining)
                box_b = _extend(box_b, remaining)
                break
            index, prefer_a = self._pick_next(remaining, box_a, box_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                box_a = box_a.union(entry[0])
            else:
                group_b.append(entry)
                box_b = box_b.union(entry[0])
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        return sibling

    def _pick_seeds(self, entries: list[tuple[Rect, Any]]) -> tuple[int, int]:
        """The pair wasting the most area if grouped together."""
        worst = -math.inf
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).area
                    - entries[i][0].area
                    - entries[j][0].area
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    def _pick_next(
        self, remaining: list[tuple[Rect, Any]], box_a: Rect, box_b: Rect
    ) -> tuple[int, bool]:
        """Entry with the strongest group preference, and that group."""
        best_index = 0
        best_diff = -1.0
        prefer_a = True
        for index, (rect, _) in enumerate(remaining):
            enlarge_a = box_a.union(rect).area - box_a.area
            enlarge_b = box_b.union(rect).area - box_b.area
            diff = abs(enlarge_a - enlarge_b)
            if diff > best_diff:
                best_diff = diff
                best_index = index
                prefer_a = enlarge_a < enlarge_b
        return best_index, prefer_a


def _extend(box: Rect, entries: list[tuple[Rect, Any]]) -> Rect:
    for rect, _ in entries:
        box = box.union(rect)
    return box


def _str_tiles(
    items: list[tuple[Rect, Any]], capacity: int
) -> Iterator[list[tuple[Rect, Any]]]:
    """Group items into STR tiles of at most ``capacity`` entries."""
    count = len(items)
    leaf_count = math.ceil(count / capacity)
    slice_count = math.ceil(math.sqrt(leaf_count))
    by_x = sorted(items, key=lambda item: item[0].center[0])
    slice_size = math.ceil(count / slice_count)
    for start in range(0, count, slice_size):
        vertical = sorted(
            by_x[start : start + slice_size], key=lambda item: item[0].center[1]
        )
        for leaf_start in range(0, len(vertical), capacity):
            yield vertical[leaf_start : leaf_start + capacity]
