"""The write-ahead log of the durable page store.

Classic physical-redo WAL discipline (DESIGN.md section 16): every
mutation of the durable store — a page write, a file create/delete/
rename — is first appended to the log and ``fsync``'d, and only then
applied to the data file.  Recovery replays committed records onto the
data file (idempotent physical redo), so a torn data-page write is
*healed* from the log instead of merely detected, and a torn log tail
(the one record a power cut interrupted) is identified by its checksum
and truncated away.

The log is **segmented**: records append to ``wal-<seq>.log`` until the
segment exceeds ``segment_bytes``, then a fresh segment (with the next
sequence number, never reused) is started.  A checkpoint makes every
record redundant — the data file is fsynced and the full catalog
persisted — after which all segments are deleted and a new one begins.

Record layout (little-endian)::

    magic   u32   0x57414C31 ("1LAW" on disk)
    lsn     u64   monotonically increasing, 1-based
    op      u8    1=page write  2=create  3=delete  4=rename
    crc     u32   crc32 over (lsn, op, body)
    length  u32   body length in bytes
    body    ...   op-specific (see the pack_* helpers)

A record is **committed** once an ``fsync`` covering it returned; the
store fsyncs after every append.  The scanner accepts a record only if
the magic matches, the LSN is the expected successor, the declared body
is fully present, and the checksum agrees — anything else is the torn
tail and scanning stops there.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

WAL_MAGIC = 0x57414C31
WAL_HEADER = struct.Struct("<IQBII")  # magic, lsn, op, crc, body length

OP_WRITE = 1
OP_CREATE = 2
OP_DELETE = 3
OP_RENAME = 4

_WRITE_BODY = struct.Struct("<QQQ")  # file id, page no, slot
_CREATE_BODY = struct.Struct("<QII")  # file id, record size, capacity
_DELETE_BODY = struct.Struct("<Q")  # file id
_RENAME_BODY = struct.Struct("<Q")  # file id

DEFAULT_SEGMENT_BYTES = 256 * 1024
"""Segment rotation threshold: a segment exceeding this is closed and
the next record starts ``wal-<seq+1>.log``."""

MAX_BODY_BYTES = 64 * 1024 * 1024
"""Sanity bound on a declared body length; a corrupt length field must
not make the scanner allocate gigabytes before the checksum rejects it."""


class WalError(RuntimeError):
    """A structural WAL problem recovery cannot talk itself past."""


@dataclass(frozen=True)
class WalRecord:
    """One committed log record."""

    lsn: int
    op: int
    body: bytes

    def encode(self) -> bytes:
        crc = record_crc(self.lsn, self.op, self.body)
        return (
            WAL_HEADER.pack(WAL_MAGIC, self.lsn, self.op, crc, len(self.body))
            + self.body
        )


def record_crc(lsn: int, op: int, body: bytes) -> int:
    return zlib.crc32(body, zlib.crc32(struct.pack("<QB", lsn, op)))


# -- op bodies ---------------------------------------------------------


def pack_write(file_id: int, page_no: int, slot: int, payload: bytes) -> bytes:
    return _WRITE_BODY.pack(file_id, page_no, slot) + payload


def unpack_write(body: bytes) -> tuple[int, int, int, bytes]:
    file_id, page_no, slot = _WRITE_BODY.unpack_from(body, 0)
    return file_id, page_no, slot, body[_WRITE_BODY.size :]


def pack_create(file_id: int, record_size: int, capacity: int, name: str) -> bytes:
    return _CREATE_BODY.pack(file_id, record_size, capacity) + name.encode()


def unpack_create(body: bytes) -> tuple[int, int, int, str]:
    file_id, record_size, capacity = _CREATE_BODY.unpack_from(body, 0)
    return file_id, record_size, capacity, body[_CREATE_BODY.size :].decode()


def pack_delete(file_id: int) -> bytes:
    return _DELETE_BODY.pack(file_id)


def unpack_delete(body: bytes) -> int:
    return _DELETE_BODY.unpack(body)[0]


def pack_rename(file_id: int, new_name: str) -> bytes:
    return _RENAME_BODY.pack(file_id) + new_name.encode()


def unpack_rename(body: bytes) -> tuple[int, str]:
    (file_id,) = _RENAME_BODY.unpack_from(body, 0)
    return file_id, body[_RENAME_BODY.size :].decode()


# -- the segmented log -------------------------------------------------


def segment_name(sequence: int) -> str:
    return f"wal-{sequence:08d}.log"


def segment_sequence(path: Path) -> int:
    return int(path.name[len("wal-") : -len(".log")])


def list_segments(directory: Path) -> list[Path]:
    """Existing segment files in sequence order."""
    return sorted(directory.glob("wal-*.log"), key=segment_sequence)


class WriteAheadLog:
    """The append side of the segmented log.

    ``append`` buffers into the current segment and flushes to the OS;
    ``sync`` fsyncs, which is the commit point.  The ``partial_writer``
    hook exists for the crash harness only: it lets the durable store
    persist a deliberate *prefix* of one record before dying, producing
    an honest torn tail.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        start_sequence: int = 1,
    ) -> None:
        self.directory = Path(directory)
        self.segment_bytes = segment_bytes
        self.sequence = start_sequence
        self._handle = open(self.directory / segment_name(self.sequence), "ab")
        self.bytes_appended = 0  # across segments since construction/reset

    @property
    def segment_path(self) -> Path:
        return self.directory / segment_name(self.sequence)

    def append(
        self,
        record: WalRecord,
        partial_writer: Callable[[object, bytes], None] | None = None,
    ) -> None:
        """Append one record (rotating first if the segment is full)."""
        data = record.encode()
        if (
            self._handle.tell() > 0
            and self._handle.tell() + len(data) > self.segment_bytes
        ):
            self._rotate()
        if partial_writer is not None:
            partial_writer(self._handle, data)
        else:
            self._handle.write(data)
        self._handle.flush()
        self.bytes_appended += len(data)

    def sync(self) -> None:
        """The commit point: everything appended so far is now durable."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _rotate(self) -> None:
        self.sync()
        self._handle.close()
        self.sequence += 1
        self._handle = open(self.directory / segment_name(self.sequence), "ab")

    def reset(self, next_sequence: int) -> None:
        """Checkpoint aftermath: delete every segment, start a fresh one
        with a sequence number that has never been used."""
        self._handle.close()
        for path in list_segments(self.directory):
            path.unlink()
        self.sequence = next_sequence
        self._handle = open(self.directory / segment_name(self.sequence), "ab")
        self.bytes_appended = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()


@dataclass
class WalScan:
    """What recovery learned from reading the log."""

    records: int = 0
    truncated_bytes: int = 0
    truncated_segment: str | None = None
    dropped_segments: int = 0


def scan_segments(
    directory: Path,
    apply: Callable[[WalRecord], None],
    truncate: bool = True,
) -> WalScan:
    """Read every committed record in LSN order and feed it to ``apply``.

    The first structurally invalid record — bad magic, non-successor
    LSN, short body, checksum mismatch — is the torn tail: scanning
    stops, the segment is truncated at that offset (when ``truncate``),
    and any *later* segment is deleted outright (it can only exist if
    the tail segment tore mid-rotation; its records were never
    acknowledged).
    """
    scan = WalScan()
    expected_lsn: int | None = None
    torn = False
    for path in list_segments(directory):
        if torn:
            path.unlink()
            scan.dropped_segments += 1
            continue
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            good, record = _decode_at(data, offset, expected_lsn)
            if not good:
                torn = True
                scan.truncated_bytes = len(data) - offset
                scan.truncated_segment = path.name
                if truncate:
                    with open(path, "r+b") as handle:
                        handle.truncate(offset)
                        handle.flush()
                        os.fsync(handle.fileno())
                break
            assert record is not None
            apply(record)
            scan.records += 1
            expected_lsn = record.lsn + 1
            offset += WAL_HEADER.size + len(record.body)
    return scan


def _decode_at(
    data: bytes, offset: int, expected_lsn: int | None
) -> tuple[bool, WalRecord | None]:
    if offset + WAL_HEADER.size > len(data):
        return False, None
    magic, lsn, op, crc, length = WAL_HEADER.unpack_from(data, offset)
    if magic != WAL_MAGIC or length > MAX_BODY_BYTES:
        return False, None
    if expected_lsn is not None and lsn != expected_lsn:
        return False, None
    body_start = offset + WAL_HEADER.size
    if body_start + length > len(data):
        return False, None
    body = data[body_start : body_start + length]
    if record_crc(lsn, op, body) != crc:
        return False, None
    return True, WalRecord(lsn, op, body)


def iter_records(directory: Path) -> Iterator[WalRecord]:
    """Committed records in LSN order (no truncation side effects)."""
    records: list[WalRecord] = []
    scan_segments(directory, records.append, truncate=False)
    return iter(records)
