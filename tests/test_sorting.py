"""Tests for the external merge sort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.external_sort import ExternalSorter, SortResult
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.records import HKEY, CandidatePairCodec


def fill_descriptors(storage, name, keys):
    handle = storage.create_file(name)
    for i, key in enumerate(keys):
        handle.append((i, 0.0, 0.0, 0.0, 0.0, key))
    return handle


class TestBasics:
    def test_sorts_by_key(self, storage):
        keys = [5, 3, 9, 1, 7, 7, 0]
        source = fill_descriptors(storage, "in", keys)
        sorter = ExternalSorter(storage)
        result = sorter.sort(source, "out", key=lambda r: r[HKEY])
        assert [r[HKEY] for r in result.output.scan()] == sorted(keys)

    def test_empty_input(self, storage):
        source = fill_descriptors(storage, "in", [])
        result = ExternalSorter(storage).sort(source, "out", key=lambda r: r[HKEY])
        assert list(result.output.scan()) == []
        assert result.initial_runs == 0

    def test_single_record(self, storage):
        source = fill_descriptors(storage, "in", [42])
        result = ExternalSorter(storage).sort(source, "out", key=lambda r: r[HKEY])
        assert [r[HKEY] for r in result.output.scan()] == [42]

    def test_output_registered_under_name(self, storage):
        source = fill_descriptors(storage, "in", [3, 1, 2])
        ExternalSorter(storage).sort(source, "out", key=lambda r: r[HKEY])
        assert [r[HKEY] for r in storage.open_file("out").scan()] == [1, 2, 3]

    def test_intermediate_runs_cleaned_up(self, storage):
        source = fill_descriptors(storage, "in", list(range(500, 0, -1)))
        sorter = ExternalSorter(storage, memory_pages=2)
        sorter.sort(source, "out", key=lambda r: r[HKEY])
        leftovers = [f for f in storage.list_files() if f.startswith("__sort-run")]
        assert leftovers == []

    def test_invalid_memory(self, storage):
        with pytest.raises(ValueError):
            ExternalSorter(storage, memory_pages=1)
        with pytest.raises(ValueError):
            ExternalSorter(storage, bulk_pages=0)

    def test_sort_twice_into_same_output_name(self, storage):
        """Re-sorting into an existing output name deterministically
        replaces the previous output (regression for the old backend
        copy + ``_tail_count`` poke, which raised FileExistsError after
        doing all the sort work)."""
        first = fill_descriptors(storage, "in1", [5, 3, 9])
        second = fill_descriptors(storage, "in2", [8, 2, 6, 4])
        sorter = ExternalSorter(storage)
        sorter.sort(first, "out", key=lambda r: r[HKEY])
        result = sorter.sort(second, "out", key=lambda r: r[HKEY])
        assert [r[HKEY] for r in result.output.scan()] == [2, 4, 6, 8]
        assert [r[HKEY] for r in storage.open_file("out").scan()] == [2, 4, 6, 8]
        leftovers = [f for f in storage.list_files() if f.startswith("__sort-run")]
        assert leftovers == []

    def test_sort_multipass_twice_into_same_output_name(self):
        """Same regression under multi-pass merging (several runs)."""
        with StorageManager(StorageConfig(buffer_pages=8)) as storage:
            first = fill_descriptors(storage, "in1", list(range(400, 0, -1)))
            second = fill_descriptors(storage, "in2", list(range(0, 900, 2)))
            sorter = ExternalSorter(storage, memory_pages=2)
            sorter.sort(first, "out", key=lambda r: r[HKEY])
            result = sorter.sort(second, "out", key=lambda r: r[HKEY])
            assert [r[HKEY] for r in result.output.scan()] == list(range(0, 900, 2))


class TestMultiPass:
    def test_many_runs_merge_to_one(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            keys = list(range(2000))
            random.Random(5).shuffle(keys)
            source = fill_descriptors(storage, "in", keys)
            sorter = ExternalSorter(storage, memory_pages=2)
            result = sorter.sort(source, "out", key=lambda r: r[HKEY])
            assert result.initial_runs > sorter.fan_in  # forces 2+ merge passes
            assert result.merge_passes >= 2
            assert [r[HKEY] for r in result.output.scan()] == sorted(keys)

    def test_predicted_passes_matches_actual(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            keys = list(range(3000))
            random.Random(6).shuffle(keys)
            source = fill_descriptors(storage, "in", keys)
            sorter = ExternalSorter(storage, memory_pages=3)
            predicted = sorter.predicted_passes(source.num_pages)
            result = sorter.sort(source, "out", key=lambda r: r[HKEY])
            assert result.total_passes == predicted

    def test_fits_in_memory_single_pass(self, storage):
        source = fill_descriptors(storage, "in", [3, 1, 2])
        sorter = ExternalSorter(storage)
        result = sorter.sort(source, "out", key=lambda r: r[HKEY])
        assert result.total_passes == 1
        assert sorter.predicted_passes(source.num_pages) == 1

    def test_sort_io_matches_equation3(self):
        """Sort page I/O = 2 * passes * S (equation 3)."""
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            keys = list(range(1700))  # 20 pages
            random.Random(7).shuffle(keys)
            source = fill_descriptors(storage, "in", keys)
            storage.phase_boundary()
            storage.stats.reset()
            sorter = ExternalSorter(storage, memory_pages=4)
            with storage.stats.phase("sort"):
                result = sorter.sort(source, "out", key=lambda r: r[HKEY])
            pages = source.num_pages
            expected = 2 * result.total_passes * pages
            measured = storage.stats.phases["sort"].total_ios
            assert measured == pytest.approx(expected, rel=0.15)


class TestDuplicateElimination:
    def test_unique_drops_duplicates(self, storage):
        pairs = [(1, 2), (3, 4), (1, 2), (5, 6), (3, 4), (1, 2)]
        handle = storage.create_file("pairs", CandidatePairCodec())
        handle.append_many(pairs)
        sorter = ExternalSorter(storage)
        result = sorter.sort(handle, "out", key=lambda r: r, unique=True)
        assert list(result.output.scan()) == [(1, 2), (3, 4), (5, 6)]

    def test_unique_across_runs(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            handle = storage.create_file("pairs", CandidatePairCodec())
            # Duplicates scattered so they land in different runs.
            for i in range(1000):
                handle.append((i % 97, (i * 31) % 97))
            sorter = ExternalSorter(storage, memory_pages=2)
            result = sorter.sort(handle, "out", key=lambda r: r, unique=True)
            records = list(result.output.scan())
            assert records == sorted(set(records))

    def test_non_unique_keeps_duplicates(self, storage):
        handle = storage.create_file("pairs", CandidatePairCodec())
        handle.append_many([(1, 2), (1, 2)])
        result = ExternalSorter(storage).sort(handle, "out", key=lambda r: r)
        assert list(result.output.scan()) == [(1, 2), (1, 2)]


class TestProperties:
    @given(st.lists(st.integers(0, 10**9), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_output_is_sorted_permutation(self, keys):
        with StorageManager(StorageConfig(buffer_pages=16)) as storage:
            source = fill_descriptors(storage, "in", keys)
            sorter = ExternalSorter(storage, memory_pages=2)
            result = sorter.sort(source, "out", key=lambda r: r[HKEY])
            assert [r[HKEY] for r in result.output.scan()] == sorted(keys)

    @given(st.lists(st.integers(0, 50), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_unique_output_is_sorted_set(self, keys):
        with StorageManager(StorageConfig(buffer_pages=16)) as storage:
            handle = storage.create_file("pairs", CandidatePairCodec())
            handle.append_many((k, k) for k in keys)
            sorter = ExternalSorter(storage, memory_pages=2)
            result = sorter.sort(handle, "out", key=lambda r: r, unique=True)
            assert list(result.output.scan()) == sorted({(k, k) for k in keys})


class TestSortResult:
    def test_total_passes(self):
        result = SortResult(output=None, initial_runs=5, merge_passes=2)
        assert result.total_passes == 3
