"""Chaos tests for the long-lived join service.

The sampled-scenario sweep (repro.verify.service_chaos) plus targeted
cases: the breaker trichotomy under a mid-stream fault burst, loud
compaction failures leaving the base files intact, and cache
invalidation across a compaction epoch (the stale-cache bug class the
epoch key exists to kill).
"""

import asyncio

from repro.faults.errors import FaultError
from repro.faults.plan import FaultPlan, ScheduledFault
from repro.service import (
    BreakerState,
    JoinService,
    PersistentIndex,
    ServiceConfig,
)
from repro.storage.manager import StorageConfig
from repro.verify.service_chaos import (
    run_service_chaos,
    sample_service_scenario,
)

from tests.conftest import make_squares


def square_entity(eid, x, y, side=0.1):
    from repro.geometry.entity import Entity
    from repro.geometry.rect import Rect

    return Entity.from_geometry(eid, Rect(x, y, x + side, y + side))


class TestScenarioSampling:
    def test_deterministic_in_seed_and_index(self):
        a = sample_service_scenario(3, seed=9)
        b = sample_service_scenario(3, seed=9)
        assert a == b
        assert sample_service_scenario(4, seed=9) != a

    def test_profiles_cycle(self):
        profiles = [sample_service_scenario(i, seed=0).profile for i in range(4)]
        assert len(set(profiles)) == 4
        assert sample_service_scenario(3, seed=0).plan is None  # quiet


class TestServiceChaosSweep:
    def test_sweep_passes(self):
        report = run_service_chaos(cases=4, seed=1, ops=25, entities=60)
        assert report.ok, report.summary()
        assert len(report.outcomes) == 4

    def test_report_shape(self):
        report = run_service_chaos(cases=2, seed=5, ops=15, entities=40)
        payload = report.to_dict()
        assert payload["scenarios"] == 2
        assert all(
            set(o) >= {"scenario", "violations", "ok_queries"}
            for o in payload["outcomes"]
        )


class TestFaultBurstTrichotomy:
    def test_burst_trips_breaker_then_partial(self):
        """A read-fault burst: the first failures are loud, the tripped
        breaker then declares partial results, never a silent wrong set."""
        dataset = make_squares(80, side=0.04, seed=31)
        plan = FaultPlan(
            schedule=(
                ScheduledFault(op="read", kind="transient", first=1, last=None),
            )
        )

        async def scenario():
            index = PersistentIndex(
                dataset.entities, storage=StorageConfig(fault_plan=plan)
            )
            try:
                config = ServiceConfig(breaker_threshold=2, breaker_reset_s=60.0)
                service = JoinService(index, config)
                first = await service.join()
                second = await service.join()
                assert first.status == second.status == "failed"
                assert "injected" in first.error
                assert service.breaker.state is BreakerState.OPEN
                third = await service.join()
                assert third.status == "partial"
                assert third.pairs == frozenset()  # declared, not fabricated
                (failure,) = third.failures
                assert failure.error_type == "CircuitOpen"
                assert failure.shard_id == "service"
            finally:
                index.close()

        asyncio.run(scenario())

    def test_compaction_fault_is_loud_and_base_survives(self):
        """A fold that dies mid-compaction raises a typed error and the
        pre-compaction answers remain exactly reachable."""
        dataset = make_squares(60, side=0.04, seed=37)
        # The compaction fold is the first heavy read sequence we run,
        # so a scheduled read fault inside it dies there deterministically.
        plan = FaultPlan(
            schedule=(
                ScheduledFault(op="read", kind="permanent", first=1, last=2),
            )
        )

        async def scenario():
            index = PersistentIndex(
                dataset.entities,
                storage=StorageConfig(fault_plan=plan),
                compaction_threshold=10**9,
            )
            try:
                service = JoinService(index)
                await service.insert(square_entity(7000, 0.4, 0.4))
                live_before = [e.eid for e in index.live_entities()]
                epoch_before = index.epoch
                failed_loudly = False
                try:
                    await service.compact()
                except FaultError:
                    failed_loudly = True
                assert failed_loudly
                assert index.compactions == 0
                assert index.epoch == epoch_before  # no phantom epoch bump
                assert [e.eid for e in index.live_entities()] == live_before
                # Past the fault window the index answers from the
                # untouched base + delta.
                outcome = await service.window(0.0, 0.0, 1.0, 1.0)
                while outcome.status != "ok":  # burn breaker probes
                    await asyncio.sleep(0.06)
                    outcome = await service.window(0.0, 0.0, 1.0, 1.0)
                assert set(outcome.eids) == set(live_before)
            finally:
                index.close()

        asyncio.run(scenario())


class TestCacheInvalidationAcrossCompaction:
    def test_compaction_epoch_orphans_cached_results(self):
        """Compaction changes no live entity, yet it must still advance
        the cache epoch: an entry computed against the dropped files may
        never be served against the new file set."""
        dataset = make_squares(70, side=0.04, seed=41)

        async def scenario():
            index = PersistentIndex(
                dataset.entities, compaction_threshold=10**9
            )
            try:
                service = JoinService(index)
                await service.insert(square_entity(8000, 0.3, 0.3, side=0.2))
                warm = await service.join()
                hit = await service.join()
                assert not warm.cached and hit.cached
                epoch_cached = warm.epoch

                assert await service.compact()
                assert index.epoch == epoch_cached + 1

                fresh = await service.join()
                assert not fresh.cached  # old-epoch entry was orphaned
                assert fresh.epoch == epoch_cached + 1
                assert fresh.pairs == warm.pairs  # same live set, same answer
                assert service.cache.get((("join",), epoch_cached)) is not None
                # ...the stale entry may still exist in LRU order, but no
                # lookup path can reach it: keys always carry the current
                # epoch.
            finally:
                index.close()

        asyncio.run(scenario())

    def test_mutation_between_cache_and_read_recomputes(self):
        dataset = make_squares(40, side=0.05, seed=43)

        async def scenario():
            index = PersistentIndex(dataset.entities)
            try:
                service = JoinService(index)
                window_args = (0.2, 0.2, 0.7, 0.7)
                first = await service.window(*window_args)
                await service.insert(square_entity(9000, 0.4, 0.4))
                second = await service.window(*window_args)
                assert not second.cached
                assert 9000 in second.eids
                assert 9000 not in first.eids
            finally:
                index.close()

        asyncio.run(scenario())
