"""Multi-pass external merge sort over paged files."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.storage.backend import Record
from repro.storage.costs import sort_comparison_count
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import RecordCodec

SortKey = Callable[[Record], Any]


@dataclass(frozen=True)
class SortResult:
    """What one external sort did."""

    output: PagedFile
    initial_runs: int
    merge_passes: int

    @property
    def total_passes(self) -> int:
        """Run formation plus merge passes (the paper's ``l_i``)."""
        return 1 + self.merge_passes


class ExternalSorter:
    """Sort a paged file by a record key in ``M`` pages of memory.

    Run formation fills ``memory_pages`` worth of records, sorts them in
    memory, and spills a run; merging proceeds with fan-in
    ``F = max(2, memory_pages // bulk_pages - 1)`` (one buffer is
    reserved for output), the paper's ``F = M / B`` with bulk reads of
    ``B`` pages.  With ``unique=True`` adjacent duplicate records are
    dropped in every pass — duplicate elimination "can take place in any
    phase of the sort" (section 4.1.2).
    """

    def __init__(
        self,
        storage: StorageManager,
        memory_pages: int | None = None,
        bulk_pages: int = 1,
    ) -> None:
        if bulk_pages < 1:
            raise ValueError("bulk_pages must be positive")
        self.storage = storage
        self.memory_pages = memory_pages or storage.memory_pages
        if self.memory_pages < 2:
            raise ValueError("external sort needs at least two memory pages")
        self.bulk_pages = bulk_pages
        # Numbered per storage manager (monotonic, never reused — unlike
        # ``id(self)``), so two sorters on one manager cannot collide on
        # run names, and names never depend on process-wide history.
        self._uid = storage.next_sequence("sorter")
        self._seq = 0
        # Temp run files created by the in-flight sort; emptied on
        # success, dropped best-effort if a pass raises mid-sort.
        self._live_runs: set[str] = set()

    @property
    def fan_in(self) -> int:
        """Merge fan-in ``F`` (at least two-way)."""
        return max(2, self.memory_pages // self.bulk_pages - 1)

    def predicted_passes(self, file_pages: int) -> int:
        """The paper's ``l_i = ceil(log_F(S_i / M)) + 1`` pass count
        (1 when the file fits in memory)."""
        if file_pages <= self.memory_pages:
            return 1
        runs = math.ceil(file_pages / self.memory_pages)
        return 1 + math.ceil(math.log(runs, self.fan_in))

    def sort(
        self,
        source: PagedFile,
        output_name: str,
        key: SortKey,
        unique: bool = False,
    ) -> SortResult:
        """Sort ``source`` into a new file named ``output_name``."""
        obs = self.storage.obs
        try:
            with obs.tracer.span(f"sort:{output_name}", kind="sort") as span:
                codec = source.codec
                run_names = self._form_runs(source, key, codec, unique)
                initial_runs = len(run_names)
                merge_passes = 0
                while len(run_names) > 1:
                    run_names = self._merge_pass(run_names, key, codec, unique)
                    merge_passes += 1
                if run_names:
                    final_name = run_names[0]
                else:  # empty input: produce an empty output file
                    final_name = self._new_run_name()
                    self._create_run(final_name, codec)
                output = self._rename(final_name, output_name)
                span.set(
                    input_pages=source.num_pages,
                    initial_runs=initial_runs,
                    merge_passes=merge_passes,
                    fan_in=self.fan_in,
                )
        except BaseException:
            # A pass raised mid-sort (I/O fault, bad key, ...): drop the
            # temp runs so a failed sort does not leak storage files.
            self._discard_live_runs()
            raise
        metrics = obs.active_metrics
        if metrics is not None:
            metrics.count("sort.sorts")
            metrics.gauge("sort.fan_in", self.fan_in)
            metrics.observe("sort.initial_runs", initial_runs)
            metrics.observe("sort.merge_passes", merge_passes)
            metrics.observe("sort.input_pages", source.num_pages)
        return SortResult(output=output, initial_runs=initial_runs, merge_passes=merge_passes)

    # -- internals --------------------------------------------------------

    def _new_run_name(self) -> str:
        self._seq += 1
        return f"__sort-run-{self._uid}-{self._seq}"

    def _create_run(self, name: str, codec: RecordCodec) -> PagedFile:
        handle = self.storage.create_file(name, codec)
        self._live_runs.add(name)
        return handle

    def _drop_run(self, name: str) -> None:
        self.storage.drop_file(name)
        self._live_runs.discard(name)

    def _discard_live_runs(self) -> None:
        """Best-effort drop of every temp run the failed sort left
        behind.  Dropping discards buffered pages without flushing, so
        this issues no page I/O; a backend so broken that even
        ``delete_file`` raises still must not mask the original error."""
        for name in sorted(self._live_runs):
            try:
                self.storage.drop_file(name)
            except Exception:
                pass
        self._live_runs.clear()

    def _form_runs(
        self, source: PagedFile, key: SortKey, codec: RecordCodec, unique: bool
    ) -> list[str]:
        """Pass 0: read the input sequentially, spill sorted runs of
        ``memory_pages`` pages each."""
        run_names: list[str] = []
        capacity = self.memory_pages * source.records_per_page
        batch: list[Record] = []

        def spill() -> None:
            if not batch:
                return
            batch.sort(key=key)
            self.storage.stats.charge_cpu(
                "compare", sort_comparison_count(len(batch))
            )
            name = self._new_run_name()
            run = self._create_run(name, codec)
            run.append_many(_drop_adjacent_duplicates(iter(batch)) if unique else batch)
            self.storage.pool.invalidate(name)  # spill the run to disk
            run_names.append(name)
            batch.clear()

        for record in source.scan():
            batch.append(record)
            if len(batch) >= capacity:
                spill()
        spill()
        return run_names

    def _merge_pass(
        self, run_names: list[str], key: SortKey, codec: RecordCodec, unique: bool
    ) -> list[str]:
        """Merge groups of ``fan_in`` runs into longer runs."""
        fan_in = self.fan_in
        merged_names: list[str] = []
        for start in range(0, len(run_names), fan_in):
            group = run_names[start : start + fan_in]
            if len(group) == 1:
                # A lone leftover run passes through without being copied.
                merged_names.append(group[0])
                continue
            name = self._new_run_name()
            out = self._create_run(name, codec)
            streams = [self.storage.open_file(run).scan() for run in group]
            merged = self._merge_streams(streams, key)
            if unique:
                merged = _drop_adjacent_duplicates(merged)
            out.append_many(merged)
            self.storage.pool.invalidate(name)
            for run in group:
                self._drop_run(run)
            merged_names.append(name)
        return merged_names

    def _merge_streams(
        self, streams: list[Iterator[Record]], key: SortKey
    ) -> Iterator[Record]:
        """Heap-based k-way merge, charging one comparison per heap op."""
        heap: list[tuple[Any, int, Record]] = []
        for index, stream in enumerate(streams):
            record = next(stream, None)
            if record is not None:
                heap.append((key(record), index, record))
        heapq.heapify(heap)
        levels = max(1, math.ceil(math.log2(len(streams) + 1)))
        while heap:
            sort_key, index, record = heapq.heappop(heap)
            self.storage.stats.charge_cpu("compare", levels)
            yield record
            nxt = next(streams[index], None)
            if nxt is not None:
                heapq.heappush(heap, (key(nxt), index, nxt))

    def _rename(self, current: str, target: str) -> PagedFile:
        """Move the final run under its public name — a true metadata
        rename (:meth:`StorageManager.rename_file`): no page is copied
        and no I/O is charged.  Sorting into an existing output name
        deterministically replaces it, so re-sorting into the same name
        is well-defined (the prior output's handle goes stale)."""
        handle = self.storage.rename_file(current, target, replace=True)
        self._live_runs.discard(current)
        return handle


def _drop_adjacent_duplicates(records: Iterator[Record]) -> Iterator[Record]:
    """Yield records, skipping ones equal to their predecessor."""
    previous: Record | None = None
    for record in records:
        if record != previous:
            yield record
            previous = record
