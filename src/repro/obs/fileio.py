"""Atomic artifact writes.

Every JSON artifact the system emits (``--report`` / ``--trace`` run
files, ``BENCH_*.json`` benchmark artifacts, the trajectory history)
goes through :func:`atomic_write_text`: the content is written to a
temporary sibling file and moved into place with :func:`os.replace`,
which is atomic on POSIX and Windows.  An interrupted run therefore
either leaves the previous artifact untouched or the new one complete —
never a truncated JSON document that poisons downstream tooling.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str | os.PathLike[str], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination directory (``os.replace``
    must not cross filesystems) and is removed on any failure, so a
    crashed write leaves neither a truncated destination nor litter.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str | os.PathLike[str],
    payload: Any,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> None:
    """Serialize ``payload`` and write it atomically.

    Serialization happens *before* the temporary file is created, so a
    payload that fails to encode never disturbs the existing artifact.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
