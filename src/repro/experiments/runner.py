"""Run one join experiment under the paper's conditions.

Two conventions make scaled-down runs faithful to the full-size paper
experiments:

1. **Memory sizing** — the buffer pool gets 10% of the combined input
   size (section 5), in pages.
2. **Page-count compensation** — entity counts shrink by
   ``REPRO_SCALE``, and the page capacity ``E`` shrinks with them, so
   *file sizes in pages match the paper at any scale*.  All the
   memory-geometry decisions (PBSM's partition count and repartition
   rate, SHJ's slot count and whether partitions fit, sort fan-ins)
   depend only on page counts, so they come out exactly as at full
   scale.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Any

from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.join.api import spatial_join
from repro.join.dataset import SpatialDataset
from repro.join.predicates import Intersects, JoinPredicate
from repro.join.result import JoinResult
from repro.obs import Observability
from repro.obs.report import RunReport, build_run_report
from repro.storage.manager import StorageConfig
from repro.storage.records import EntityDescriptorCodec

FULL_SCALE_ENTRIES_PER_PAGE = 85
"""``E`` at scale 1.0: 4 KB pages of 48-byte descriptors."""

MEMORY_FRACTION = 0.10
"""Buffer pool = 10% of combined input size (section 5)."""


def make_storage_config(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    scale: float = 1.0,
    memory_fraction: float = MEMORY_FRACTION,
) -> StorageConfig:
    """Paper-faithful storage configuration for one experiment."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    entries = max(1, round(FULL_SCALE_ENTRIES_PER_PAGE * scale))
    page_size = EntityDescriptorCodec().record_size * entries
    pages = math.ceil(len(dataset_a) / entries) + math.ceil(len(dataset_b) / entries)
    buffer_pages = max(16, math.ceil(memory_fraction * pages))
    return StorageConfig(page_size=page_size, buffer_pages=buffer_pages)


@dataclass
class ExperimentResult:
    """One algorithm's run within an experiment."""

    algorithm: str
    label: str
    result: JoinResult
    report: RunReport | None = None

    @property
    def response_time(self) -> float:
        return self.result.metrics.response_time

    @property
    def breakdown(self) -> dict[str, float]:
        return self.result.metrics.breakdown()

    def row(self, baseline_time: float | None = None) -> dict[str, Any]:
        """A printable summary row (Table 4 style)."""
        metrics = self.result.metrics
        row: dict[str, Any] = {
            "algorithm": self.label,
            "time_s": round(self.response_time, 2),
            "total_ios": metrics.total_ios,
            "r_A": round(metrics.replication_a, 2),
            "r_B": round(metrics.replication_b, 2),
            "pairs": len(self.result.pairs),
        }
        if baseline_time:
            row["normalized"] = round(self.response_time / baseline_time, 2)
        for phase, seconds in self.breakdown.items():
            row[f"{phase}_s"] = round(seconds, 2)
        return row


def run_algorithm(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    algorithm: str,
    label: str | None = None,
    predicate: JoinPredicate | None = None,
    scale: float = 1.0,
    obs: Observability | None = None,
    workers: int = 1,
    shard_level: int | None = None,
    planner: str | None = None,
    mode: str = "ledger",
    backend: str = "memory",
    data_dir: str | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    **params: Any,
) -> ExperimentResult:
    """Run one algorithm on one workload under paper conditions.

    With an enabled ``obs`` the returned :class:`ExperimentResult` also
    carries a machine-readable :class:`~repro.obs.report.RunReport`.
    ``workers``/``shard_level`` select the sharded parallel executor
    (:mod:`repro.parallel`) and ``planner`` its shard decomposition
    (two-layer by default); the per-shard storage managers all use
    this experiment's paper-faithful configuration.

    ``mode="memory"`` runs the in-memory fast path instead of the
    simulated-storage model: no storage configuration exists there, so
    ``retry``/``fault_plan`` (storage-level layers) are rejected.

    ``retry`` installs a retrying storage layer and ``fault_plan``
    a fault-injecting one (DESIGN.md section 11) — both ride inside the
    storage config, so sharded runs apply them in every worker too.

    ``backend`` selects the physical page store (``memory``/``disk``/
    ``durable``) and ``data_dir`` where the file-backed ones keep their
    files (a temporary directory otherwise).  The choice never shows in
    the ledger: metrics are byte-identical across backends.
    """
    if mode == "memory":
        if retry is not None or fault_plan is not None:
            raise ValueError(
                "retry/fault_plan are storage layers; mode='memory' has "
                "no storage to wrap"
            )
        if backend != "memory" or data_dir is not None:
            raise ValueError(
                "backend/data_dir are storage settings; mode='memory' has "
                "no storage to configure"
            )
        config = None
    else:
        config = make_storage_config(dataset_a, dataset_b, scale=scale)
        if backend != "memory" or data_dir is not None:
            config = dataclasses.replace(
                config, backend=backend, directory=data_dir
            )
        if retry is not None or fault_plan is not None:
            config = dataclasses.replace(
                config, retry=retry, fault_plan=fault_plan
            )
    # Sharded runs get their run_started/run_completed bracket from the
    # parallel executor (which knows the shard plan); serial runs get
    # theirs here so every instrumented run's event stream is bracketed.
    events = obs.events if obs is not None else None
    serial = workers == 1 and shard_level is None
    bracket = events is not None and events.enabled and serial
    if bracket:
        events.emit(
            "run_started",
            algorithm=algorithm,
            mode=mode,
            workers=1,
            self_join=dataset_a is dataset_b,
        )
    t0 = time.perf_counter()
    result = spatial_join(
        dataset_a,
        dataset_b,
        algorithm=algorithm,
        predicate=predicate or Intersects(),
        storage=config,
        obs=obs,
        workers=workers,
        shard_level=shard_level,
        planner=planner,
        mode=mode,
        **params,
    )
    if bracket:
        events.emit(
            "run_completed",
            algorithm=algorithm,
            pairs=len(result.pairs),
            wall_s=time.perf_counter() - t0,
        )
    report = None
    if obs is not None and obs.enabled:
        report = build_run_report(
            result,
            obs,
            workload=f"{dataset_a.name}-{dataset_b.name}",
            scale=scale,
        )
    return ExperimentResult(
        algorithm=algorithm, label=label or algorithm, result=result, report=report
    )
