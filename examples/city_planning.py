"""The paper's motivating query (section 2):

    "find all movie theaters that are adjacent to a parking lot"

— a spatial join between a polygon data set of parking lots and a
polygon data set of movie theaters under a *next to* (distance-within)
predicate, with exact refinement of the candidate pairs.

Run:  python examples/city_planning.py
"""

import random

from repro import Entity, Polygon, SpatialDataset, WithinDistance, spatial_join


def rectangular_lot(rng: random.Random, eid: int, max_side: float) -> Entity:
    """A random axis-aligned rectangular lot as a polygon."""
    x = rng.uniform(0.02, 0.95)
    y = rng.uniform(0.02, 0.95)
    w = rng.uniform(0.004, max_side)
    h = rng.uniform(0.004, max_side)
    lot = Polygon(((x, y), (x + w, y), (x + w, y + h), (x, y + h)))
    return Entity.from_geometry(eid, lot)


def main() -> None:
    rng = random.Random(2026)
    parking_lots = SpatialDataset(
        "parking-lots",
        [rectangular_lot(rng, eid, max_side=0.012) for eid in range(3_000)],
    )
    theaters = SpatialDataset(
        "movie-theaters",
        [rectangular_lot(rng, eid, max_side=0.008) for eid in range(400)],
    )

    # "next to": within 0.2% of the city's extent of each other.
    next_to = WithinDistance(0.002)
    result = spatial_join(
        theaters,
        parking_lots,
        algorithm="s3j",
        predicate=next_to,
        refine=True,
    )

    print(f"candidate pairs from the filter step : {len(result.pairs):,}")
    print(f"pairs surviving exact refinement     : {len(result.refined):,}")
    served = {theater for theater, _ in result.refined}
    print(
        f"theaters with at least one adjacent lot: {len(served)} / {len(theaters)}"
    )
    print()
    print("join metrics:", result.metrics.describe())

    # The refinement step matters: MBR adjacency over-approximates
    # polygon adjacency (Chebyshev vs Euclidean corner distances).
    dropped = len(result.pairs) - len(result.refined)
    print(f"refinement discarded {dropped} false candidates")


if __name__ == "__main__":
    main()
