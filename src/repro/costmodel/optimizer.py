"""A cost-based join-method chooser.

Section 4's motivation: "S3J has relatively simple cost estimation
formulas that can be exploited by a query optimizer."  This module is
that optimizer fragment: given catalog statistics about two inputs, it
prices all three algorithms with the section-4 formulas and picks the
cheapest, exposing the per-algorithm estimates for inspection.

The discussion in section 5.3 is encoded in the estimators: S3J's
estimate needs no data statistics beyond sizes (its headline
advantage); PBSM's and SHJ's estimates depend on replication factors
that can only be *guessed* without detailed statistics, so both carry
an explicit uncertainty note when the catalog lacks them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.costmodel.pbsm import (
    expected_replication_factor,
    pbsm_io,
    pbsm_partitions,
)
from repro.costmodel.s3j import s3j_io, s3j_worst_case_io
from repro.costmodel.shj import shj_io
from repro.filtertree.occupancy import level_fractions


@dataclass(frozen=True)
class CatalogStats:
    """What a catalog would know about one join input."""

    pages: int
    avg_side: float | None = None       # mean entity extent (None: unknown)
    replication_hint: float | None = None  # measured r_f, if available

    def __post_init__(self) -> None:
        if self.pages < 0:
            raise ValueError("pages must be non-negative")
        if self.avg_side is not None and not 0.0 <= self.avg_side <= 1.0:
            raise ValueError("avg_side must be in [0, 1]")


@dataclass(frozen=True)
class PlanEstimate:
    """One algorithm's predicted cost."""

    algorithm: str
    total_ios: int
    notes: tuple[str, ...] = field(default_factory=tuple)


def estimate_plans(
    stats_a: CatalogStats,
    stats_b: CatalogStats,
    memory_pages: int,
    result_pages: int = 0,
    tiles_per_dim: int = 32,
) -> list[PlanEstimate]:
    """Price all three algorithms; cheapest first."""
    if memory_pages < 2:
        raise ValueError("memory_pages must be at least 2")
    estimates = [
        _estimate_s3j(stats_a, stats_b, memory_pages, result_pages),
        _estimate_pbsm(
            stats_a, stats_b, memory_pages, result_pages, tiles_per_dim
        ),
        _estimate_shj(stats_a, stats_b, memory_pages, result_pages),
    ]
    return sorted(estimates, key=lambda e: e.total_ios)


def choose_algorithm(
    stats_a: CatalogStats,
    stats_b: CatalogStats,
    memory_pages: int,
    result_pages: int = 0,
    tiles_per_dim: int = 32,
) -> str:
    """Name of the predicted-cheapest algorithm."""
    return estimate_plans(
        stats_a, stats_b, memory_pages, result_pages, tiles_per_dim
    )[0].algorithm


def _estimate_s3j(
    stats_a: CatalogStats,
    stats_b: CatalogStats,
    memory: int,
    result_pages: int,
) -> PlanEstimate:
    notes = []
    if stats_a.avg_side is not None and stats_b.avg_side is not None:
        fractions_a = level_fractions(max(stats_a.avg_side, 1e-6))
        fractions_b = level_fractions(max(stats_b.avg_side, 1e-6))
        total = s3j_io(
            stats_a.pages, stats_b.pages, memory, fractions_a, fractions_b,
            result_pages,
        ).total_ios
    else:
        # No statistics at all: S3J still has a guaranteed bound —
        # section 4's worst case (equation 6).
        total = s3j_worst_case_io(
            stats_a.pages, stats_b.pages, memory, result_pages
        )
        notes.append("no size statistics: worst-case bound (eq. 6)")
    return PlanEstimate("s3j", int(total), tuple(notes))


def _estimate_pbsm(
    stats_a: CatalogStats,
    stats_b: CatalogStats,
    memory: int,
    result_pages: int,
    tiles_per_dim: int,
) -> PlanEstimate:
    notes = []
    r_a = stats_a.replication_hint
    r_b = stats_b.replication_hint
    if r_a is None:
        if stats_a.avg_side is not None:
            r_a = expected_replication_factor(stats_a.avg_side, tiles_per_dim)
        else:
            r_a = 1.5
            notes.append("replication of A guessed (no statistics)")
    if r_b is None:
        if stats_b.avg_side is not None:
            r_b = expected_replication_factor(stats_b.avg_side, tiles_per_dim)
        else:
            r_b = 1.5
            notes.append("replication of B guessed (no statistics)")
    candidate_pages = max(result_pages, math.ceil(result_pages * r_a * r_b))
    total = pbsm_io(
        stats_a.pages,
        stats_b.pages,
        memory,
        replication_a=r_a,
        replication_b=r_b,
        candidate_pages=candidate_pages,
        result_pages=result_pages,
    ).total_ios
    return PlanEstimate("pbsm", int(total), tuple(notes))


def _estimate_shj(
    stats_a: CatalogStats,
    stats_b: CatalogStats,
    memory: int,
    result_pages: int,
) -> PlanEstimate:
    from repro.baselines.shj import suggested_partitions

    notes = []
    partitions = suggested_partitions(stats_a.pages, memory)
    r_b = stats_b.replication_hint
    if r_b is None:
        r_b = 1.5
        notes.append("replication of B guessed (no statistics)")
    part_pages = (stats_a.pages + r_b * stats_b.pages) / max(1, partitions)
    fits = part_pages <= max(1, memory - 1)
    if not fits:
        notes.append("partitions predicted not to fit: blockwise join")
    total = shj_io(
        stats_a.pages,
        stats_b.pages,
        memory,
        num_partitions=partitions,
        replication_b=r_b,
        result_pages=result_pages,
        partitions_fit=fits,
    ).total_ios
    return PlanEstimate("shj", int(total), tuple(notes))
