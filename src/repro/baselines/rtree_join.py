"""R-tree join as a registered algorithm.

Wraps the synchronized R-tree traversal of
:mod:`repro.rtree.join` (Brinkhoff, Kriegel & Seeger, SIGMOD 1993) in
the :class:`~repro.join.base.SpatialJoinAlgorithm` interface so it can
run against descriptor files, report per-phase metrics, and serve as a
differential reference for the partition-based algorithms (it shares
no partitioning, sorting, or sweeping code with them).

Phases:

1. **build** — scan both descriptor files (paged reads through the
   buffer pool) and STR-bulk-load one R-tree per input.
2. **join** — synchronized depth-first traversal; node visits and MBR
   tests are charged as CPU operations.

The trees live in memory; like SHJ's per-partition trees they are not
paged, so the join phase performs no I/O beyond writing the result.
"""

from __future__ import annotations

from repro.geometry.rect import Rect
from repro.join.base import SpatialJoinAlgorithm
from repro.join.metrics import JoinMetrics
from repro.rtree.join import rtree_join
from repro.rtree.rtree import RTree
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, XHI, XLO, YHI, YLO, CandidatePairCodec


class RTreeSpatialJoin(SpatialJoinAlgorithm):
    """Synchronized R-tree traversal over two bulk-loaded trees.

    Parameters
    ----------
    storage:
        The storage manager to run against.
    fanout:
        Node capacity of the bulk-loaded trees.
    """

    name = "rtree"
    phase_names = ("build", "join")

    def __init__(self, storage: StorageManager, fanout: int = 32) -> None:
        super().__init__(storage)
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.fanout = fanout

    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        stats = self.storage.stats
        tracer = self.obs.tracer

        with self._phase("build"):
            with tracer.span("bulk-load:A", side="A"):
                tree_a = self._load(input_a)
            with tracer.span("bulk-load:B", side="B"):
                tree_b = self._load(input_b)
            self.storage.phase_boundary()

        pairs: set[tuple[int, int]] = set()
        result = self.storage.create_file(
            self._file_name("result"), CandidatePairCodec()
        )
        with self._phase("join"):
            with tracer.span("traverse") as span:
                for eid_a, eid_b in rtree_join(tree_a, tree_b, stats=stats):
                    pair = (eid_a, eid_b)
                    pairs.add(pair)
                    result.append(pair)
                span.set(pairs=len(pairs))
            self.storage.phase_boundary()

        metrics = self._build_metrics(
            tree_heights=(tree_a.height, tree_b.height),
            result_pages=result.num_pages,
        )
        # The traversal never replicates an input entity.
        metrics.replication_a = 1.0
        metrics.replication_b = 1.0
        return pairs, metrics

    def _load(self, source: PagedFile) -> RTree:
        stats = self.storage.stats
        items: list[tuple[Rect, int]] = []
        for record in source.scan():
            stats.charge_cpu("rtree")
            items.append(
                (
                    Rect(record[XLO], record[YLO], record[XHI], record[YHI]),
                    record[EID],
                )
            )
        return RTree.bulk_load(items, max_entries=self.fanout, stats=stats)
