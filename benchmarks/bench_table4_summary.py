"""E-T4 — regenerate Table 4: response times of PBSM (small and large
tile counts) and SHJ normalized to S3J, plus observed replication
factors, for all six evaluation workloads.

Shape assertions encode the paper's qualitative claims:

- S3J is never beaten by PBSM on any workload;
- PBSM with more tiles is at least as slow as with fewer;
- the replication-hostile workloads (TR) show large factors;
- S3J itself never replicates.
"""

import pytest

from repro.experiments.workloads import WORKLOADS

from benchmarks.artifacts import write_bench_artifact
from benchmarks.conftest import cached_workload_row


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_table4_row(benchmark, workload, repro_scale):
    row = benchmark.pedantic(
        lambda: cached_workload_row(workload, repro_scale), rounds=1, iterations=1
    )

    paper = row["paper_normalized"]
    print(f"\n--- Table 4 row: {workload.name} (figure {workload.figure}) ---")
    print(f"{'algorithm':<14}{'norm':>7}{'paper':>7}{'r_A':>6}{'r_B':>6}{'ios':>10}")
    print(f"{'s3j':<14}{1.0:>7.2f}{1.0:>7.2f}"
          f"{row['s3j']['r_A']:>6.2f}{row['s3j']['r_B']:>6.2f}"
          f"{row['s3j']['total_ios']:>10,}")
    for key, paper_key in (
        ("pbsm_small", "pbsm_small"),
        ("pbsm_large", "pbsm_large"),
        ("shj", "shj"),
    ):
        entry = row[key]
        print(
            f"{entry['algorithm']:<14}{entry['normalized']:>7.2f}"
            f"{paper[paper_key]:>7.2f}{entry['r_A']:>6.2f}{entry['r_B']:>6.2f}"
            f"{entry['total_ios']:>10,}"
        )

    # Qualitative shape of the paper's Table 4.  (CFD is the one
    # workload where our PBSM lands at parity instead of losing —
    # see EXPERIMENTS.md — hence the tolerances.)
    assert row["pbsm_small"]["normalized"] >= 0.85
    assert row["pbsm_large"]["normalized"] >= row["pbsm_small"]["normalized"] * 0.8
    assert row["s3j"]["r_A"] == 1.0 and row["s3j"]["r_B"] == 1.0
    if workload.name == "TR":
        assert row["shj"]["r_B"] > 3.0      # paper: 10
        assert row["pbsm_large"]["normalized"] > row["pbsm_small"]["normalized"]
    if workload.name == "CFD":
        assert row["shj"]["r_B"] == pytest.approx(4.0, rel=0.4)  # paper: 4

    benchmark.extra_info["row"] = {
        k: v for k, v in row.items() if k not in ("paper_replication",)
    }
    write_bench_artifact(
        f"table4_{workload.name}",
        {k: v for k, v in row.items() if k not in ("paper_replication",)},
    )
