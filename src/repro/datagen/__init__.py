"""Synthetic and real-data-like workload generators (Table 3).

Every generator is deterministic given its seed, and produces entities
normalized to the unit square:

- :func:`~repro.datagen.uniform.uniform_squares` — the UN1/UN2/UN3
  uniformly distributed square data sets, parameterized by coverage.
- :func:`~repro.datagen.triangular.triangular_squares` — the TR data
  set: square sizes ``d = 2^-l`` with ``l`` triangular-distributed.
- :func:`~repro.datagen.tiger.road_segments` — TIGER/Line-like road
  segment data sets standing in for the Long Beach (LB) and Montgomery
  (MG) county extracts (see DESIGN.md substitutions).
- :func:`~repro.datagen.cfd.cfd_points` — a CFD-vertex-like point data
  set: a dense cluster around an airfoil cross-section with a sparse
  far field.
- :func:`~repro.datagen.shift.shifted_copy` — the LB'/MG' transform:
  each entity's center becomes the lower-left corner of an equal-size
  entity.
- :mod:`~repro.datagen.paper` — the full Table 3 catalog at a chosen
  scale factor.
"""

from repro.datagen.cfd import cfd_points
from repro.datagen.paper import paper_datasets, table3_rows
from repro.datagen.shift import shifted_copy
from repro.datagen.tiger import road_segments
from repro.datagen.triangular import triangular_squares
from repro.datagen.uniform import uniform_squares, uniform_squares_by_coverage

__all__ = [
    "cfd_points",
    "paper_datasets",
    "road_segments",
    "shifted_copy",
    "table3_rows",
    "triangular_squares",
    "uniform_squares",
    "uniform_squares_by_coverage",
]
