"""LRU buffer pool with pin/unpin and write-back.

All logical page accesses in the library go through this pool; only
misses and dirty evictions reach the backend, and each backend transfer
is recorded in the :class:`~repro.storage.iostats.IOStats` ledger.
This is how the library measures the quantity the paper's entire
section 4 is written in: physical page reads and writes.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.storage.backend import Record, StorageBackend
from repro.storage.iostats import IOStats, file_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class BufferPoolExhausted(RuntimeError):
    """Raised when every frame is pinned and a new page is needed."""


class Frame:
    """One buffer frame: cached page contents plus bookkeeping."""

    __slots__ = ("records", "dirty", "pins")

    def __init__(self, records: list[Record], dirty: bool) -> None:
        self.records = records
        self.dirty = dirty
        self.pins = 0


class BufferPool:
    """A fixed-capacity LRU page cache.

    ``capacity`` is the paper's ``M`` (memory size in pages).  Pages are
    fetched with :meth:`page` (a pinning context manager) or
    :meth:`fetch`/:meth:`unpin`; eviction writes dirty frames back to
    the backend.
    """

    def __init__(
        self,
        backend: StorageBackend,
        capacity: int,
        stats: IOStats,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.backend = backend
        self.capacity = capacity
        self.stats = stats
        # Observability only (hit/miss/eviction/write-back series);
        # None skips the hooks. The simulated ledger lives in `stats`.
        self.metrics = metrics
        self._frames: OrderedDict[tuple[str, int], Frame] = OrderedDict()

    def __len__(self) -> int:
        return len(self._frames)

    def fetch(self, file_name: str, page_no: int) -> Frame:
        """Pin and return the frame holding the given page, reading it
        from the backend on a miss."""
        key = (file_name, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
            self.stats.record_hit()
            if self.metrics is not None:
                self.metrics.count("buffer.hits")
        else:
            self._make_room()
            records = self.backend.read_page(file_name, page_no)
            self.stats.record_read(file_name, page_no)
            if self.metrics is not None:
                self.metrics.count("buffer.misses")
            frame = Frame(records, dirty=False)
            self._frames[key] = frame
        frame.pins += 1
        return frame

    def create(self, file_name: str, page_no: int) -> Frame:
        """Pin and return a frame for a brand-new page (no read I/O)."""
        key = (file_name, page_no)
        if key in self._frames:
            raise ValueError(f"page {key} already buffered")
        self._make_room()
        frame = Frame([], dirty=True)
        self._frames[key] = frame
        frame.pins += 1
        return frame

    def unpin(self, file_name: str, page_no: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the page for write-back."""
        frame = self._frames[(file_name, page_no)]
        if frame.pins <= 0:
            raise RuntimeError(f"unpin of unpinned page ({file_name}, {page_no})")
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    @contextmanager
    def page(self, file_name: str, page_no: int, create: bool = False) -> Iterator[list[Record]]:
        """Context manager giving pinned access to a page's record list.

        Mutating the list is allowed; the page is marked dirty on exit
        when its contents compare unequal (``!=``) to a snapshot taken
        at entry.  This is *value* comparison, not identity: replacing a
        record in place, appending, and deleting are all detected, while
        rewriting a record with an equal value is treated as clean.
        Newly created pages are always dirty (callers may also mark
        explicitly via :meth:`unpin`)."""
        frame = self.create(file_name, page_no) if create else self.fetch(file_name, page_no)
        before = list(frame.records) if not create else None
        try:
            yield frame.records
        finally:
            dirty = create or frame.records != before
            self.unpin(file_name, page_no, dirty=dirty)

    def _make_room(self) -> None:
        """Evict the least recently used unpinned frame if full."""
        if len(self._frames) < self.capacity:
            return
        for key, frame in self._frames.items():
            if frame.pins == 0:
                self._evict(key, frame)
                return
        raise BufferPoolExhausted(
            f"all {self.capacity} frames pinned; cannot fetch another page"
        )

    def _evict(self, key: tuple[str, int], frame: Frame) -> None:
        if frame.dirty:
            self.backend.write_page(key[0], key[1], frame.records)
            self.stats.record_write(key[0], key[1])
            if self.metrics is not None:
                self.metrics.count("buffer.writebacks", file=file_label(key[0]))
        if self.metrics is not None:
            self.metrics.count("buffer.evictions", file=file_label(key[0]))
        del self._frames[key]

    def flush(self, file_name: str | None = None) -> None:
        """Write back dirty frames (of one file, or all) without evicting."""
        for (name, page_no), frame in self._frames.items():
            if file_name is not None and name != file_name:
                continue
            if frame.dirty:
                self.backend.write_page(name, page_no, frame.records)
                self.stats.record_write(name, page_no)
                if self.metrics is not None:
                    self.metrics.count("buffer.writebacks", file=file_label(name))
                frame.dirty = False

    def invalidate(self, file_name: str | None = None) -> None:
        """Flush then drop frames — used at operator phase boundaries so
        that page I/O counts match the paper's phase-by-phase analysis
        (each phase re-reads its input from disk)."""
        self.flush(file_name)
        keys = [
            key
            for key, frame in self._frames.items()
            if file_name is None or key[0] == file_name
        ]
        for key in keys:
            if self._frames[key].pins > 0:
                raise RuntimeError(f"cannot invalidate pinned page {key}")
            del self._frames[key]

    def write_behind(self, file_name: str, page_no: int) -> None:
        """Flush one page and drop its frame (no-op if absent/pinned).

        Called by :class:`~repro.storage.pagedfile.PagedFile` the moment
        an output page fills: full output pages go straight to disk
        sequentially instead of lingering and forcing the LRU to evict
        some *partial* output buffer (which would have to be read back
        — the classic partitioning thrash).
        """
        key = (file_name, page_no)
        frame = self._frames.get(key)
        if frame is None or frame.pins > 0:
            return
        self._evict(key, frame)

    def release(self, file_name: str, page_no: int) -> None:
        """Drop one clean, unpinned frame without any I/O (no-op when
        the frame is absent, pinned, or dirty).

        Block scans call this after copying a page out, so a bulk
        reader pulling many input pages per batch does not push the
        partial output tails of other files out of the LRU — keeping
        the eviction (and therefore ledger) behavior of the batched
        partition pipeline identical to the record-at-a-time path.
        """
        key = (file_name, page_no)
        frame = self._frames.get(key)
        if frame is None or frame.pins > 0 or frame.dirty:
            return
        del self._frames[key]

    def drop_file(self, file_name: str) -> None:
        """Discard frames of a deleted file without writing them back."""
        for key in [k for k in self._frames if k[0] == file_name]:
            del self._frames[key]

    def clear(self) -> None:
        """Drop every frame, pinned or not, without any I/O.

        Manager close only: unlike :meth:`invalidate` this never raises
        on a pinned frame, so a close running during exception
        unwinding (e.g. a fault aborted a scan mid-pin) cannot mask the
        original error — and a long-lived process cycling managers
        cannot accumulate frames across open-query-close cycles.
        """
        self._frames.clear()

    def rename_file(self, old: str, new: str) -> None:
        """Re-key buffered frames of ``old`` under ``new``, preserving
        LRU order, pin counts, and dirty bits (no I/O, no ledger
        events — a rename is pure metadata)."""
        if any(key[0] == new for key in self._frames):
            raise ValueError(f"file {new!r} still has buffered frames")
        renamed = OrderedDict()
        for (name, page_no), frame in self._frames.items():
            renamed[(new if name == old else name, page_no)] = frame
        self._frames = renamed
