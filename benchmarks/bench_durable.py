"""E-DUR — the durable backend's real cost and its ledger neutrality.

Runs the same S3J batch join three ways — ``memory`` (counted I/O),
``disk`` (plain files), ``durable`` (WAL + fsync per page write) — and
measures:

- **ledger parity**: the simulated metrics must be byte-identical
  across backends (the durable machinery is invisible to the paper's
  cost model); the benchmark *fails* if they diverge.
- **durable overhead**: durable wall-clock over memory wall-clock on
  the same host/process.  Both sides of the ratio share the run, so
  the ratio is portable and trajectory-gated (collapse-only — fsync
  cost varies wildly across filesystems).
- **measured vs DiskModel**: the ledger's simulated seconds (Seagate
  Hawk, 18.1 ms random access) against the durable backend's real
  seconds, the calibration line ROADMAP promised
  (``bench_analytic_vs_measured.py`` prints the same comparison).
- **reopen cost**: wall-clock to recover + reattach the store a fresh
  process would pay.

Emits ``BENCH_durable.json``::

    python -m benchmarks.bench_durable [--entities 2000]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.datagen.uniform import uniform_squares
from repro.experiments.runner import run_algorithm
from repro.storage.durable import DurableBackend

from benchmarks.artifacts import write_bench_artifact

NUM_ENTITIES = 2_000
SCALE = 0.05
SIDE = 0.01


def drive(entities: int) -> tuple[dict, list[str]]:
    a = uniform_squares(entities, SIDE, seed=11, name="DURA")
    b = uniform_squares(entities, SIDE, seed=12, name="DURB")
    failures: list[str] = []
    walls: dict[str, float] = {}
    ledgers: dict[str, dict] = {}
    pairs: dict[str, int] = {}
    simulated = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-durable-") as data_dir:
        for backend in ("memory", "disk", "durable"):
            start = time.perf_counter()
            run = run_algorithm(
                a,
                b,
                "s3j",
                scale=SCALE,
                backend=backend,
                data_dir=data_dir if backend == "durable" else None,
            )
            walls[backend] = time.perf_counter() - start
            ledgers[backend] = run.result.metrics.to_dict()
            pairs[backend] = len(run.result.pairs)
            simulated = run.result.metrics.response_time
        for backend in ("disk", "durable"):
            if ledgers[backend] != ledgers["memory"]:
                failures.append(
                    f"simulated ledger diverged on the {backend} backend"
                )
            if pairs[backend] != pairs["memory"]:
                failures.append(f"pair count diverged on the {backend} backend")
        # What a restarted process pays: recovery replay + catalog scan.
        start = time.perf_counter()
        store = DurableBackend(data_dir)
        attached = 0
        for name in store.stored_files():
            store.file_record_counts(name)
            attached += 1
        reopen_wall = time.perf_counter() - start
        recovery = (
            store.last_recovery.to_dict() if store.last_recovery else None
        )
        store.close()
    payload = {
        "entities_per_side": entities,
        "pairs": pairs["memory"],
        "memory_wall_s": walls["memory"],
        "disk_wall_s": walls["disk"],
        "durable_wall_s": walls["durable"],
        "durable_overhead": walls["durable"] / walls["memory"],
        "simulated_s": simulated,
        "model_vs_measured": simulated / walls["durable"],
        "reopen_wall_s": reopen_wall,
        "reopened_files": attached,
        "recovery": recovery,
        "ledger_parity_ok": not failures,
    }
    return payload, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=NUM_ENTITIES)
    args = parser.parse_args(argv)
    payload, failures = drive(args.entities)
    print(
        f"durable    entities={payload['entities_per_side']:<6} "
        f"pairs={payload['pairs']:<7} "
        f"memory={payload['memory_wall_s']:.3f}s "
        f"disk={payload['disk_wall_s']:.3f}s "
        f"durable={payload['durable_wall_s']:.3f}s "
        f"(overhead {payload['durable_overhead']:.2f}x)"
    )
    print(
        f"model      simulated={payload['simulated_s']:.2f}s "
        f"measured={payload['durable_wall_s']:.3f}s "
        f"(DiskModel/real {payload['model_vs_measured']:.1f}x)  "
        f"reopen={payload['reopen_wall_s']*1000:.1f}ms "
        f"({payload['reopened_files']} files)"
    )
    path = write_bench_artifact("durable", payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"durable OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
