"""Tests for the experiment harness (paper protocol)."""

import pytest

from repro.experiments.runner import (
    FULL_SCALE_ENTRIES_PER_PAGE,
    make_storage_config,
    run_algorithm,
)
from repro.experiments.table4 import format_table4, run_workload, table4_rows
from repro.experiments.workloads import WORKLOADS, workload_by_name

from tests.conftest import make_squares

TINY = 0.02  # ~2000-entity workloads: fast enough for unit tests


class TestStorageConfig:
    def test_page_capacity_scales(self):
        a = make_squares(100, 0.02, seed=1)
        full = make_storage_config(a, a, scale=1.0)
        fifth = make_storage_config(a, a, scale=0.2)
        assert full.page_size == 48 * FULL_SCALE_ENTRIES_PER_PAGE
        assert fifth.page_size == 48 * 17

    def test_page_counts_scale_invariant(self):
        """The whole point: S in pages is the same at any scale."""
        import math

        for scale in (1.0, 0.2, 0.05):
            count = int(100_000 * scale)
            entries = max(1, round(FULL_SCALE_ENTRIES_PER_PAGE * scale))
            assert math.ceil(count / entries) == pytest.approx(1177, rel=0.1)

    def test_memory_is_ten_percent(self):
        a = make_squares(8500, 0.01, seed=2)
        config = make_storage_config(a, a, scale=1.0)
        assert config.buffer_pages == 20  # 10% of 200 pages

    def test_invalid_scale(self):
        a = make_squares(10, 0.1, seed=3)
        with pytest.raises(ValueError):
            make_storage_config(a, a, scale=0.0)


class TestWorkloads:
    def test_six_workloads(self):
        assert len(WORKLOADS) == 6
        assert [w.figure for w in WORKLOADS] == ["8a", "8b", "9a", "9b", "10a", "10b"]

    def test_lookup(self):
        assert workload_by_name("TR").self_join
        with pytest.raises(ValueError):
            workload_by_name("XX")

    def test_self_join_flags(self):
        assert workload_by_name("TR").self_join
        assert workload_by_name("CFD").self_join
        assert not workload_by_name("UN1-UN2").self_join
        assert not workload_by_name("LB-LB'").self_join  # shifted copy

    def test_datasets_materialize(self):
        a, b = workload_by_name("UN1-UN2").datasets(scale=TINY)
        assert a.name == "UN1" and b.name == "UN2"
        a, b = workload_by_name("TR").datasets(scale=TINY)
        assert a is b  # self join
        a, b = workload_by_name("LB-LB'").datasets(scale=TINY)
        assert b.name == "LB'"
        assert len(a) == len(b)

    def test_predicates(self):
        assert workload_by_name("CFD").predicate().name == "within_distance"
        assert workload_by_name("TR").predicate().name == "intersects"

    def test_paper_reference_numbers_present(self):
        for workload in WORKLOADS:
            assert set(workload.paper_normalized) == {
                "pbsm_small",
                "pbsm_large",
                "shj",
            }


class TestRunner:
    def test_run_algorithm_row(self):
        a = make_squares(300, 0.03, seed=4, name="A")
        b = make_squares(300, 0.03, seed=5, name="B")
        run = run_algorithm(a, b, "s3j", scale=TINY)
        row = run.row()
        assert row["algorithm"] == "s3j"
        assert row["pairs"] == len(run.result.pairs)
        assert "partition_s" in row and "join_s" in row

    def test_normalized_column(self):
        a = make_squares(200, 0.03, seed=6, name="A")
        b = make_squares(200, 0.03, seed=7, name="B")
        run = run_algorithm(a, b, "pbsm", scale=TINY)
        row = run.row(baseline_time=run.response_time)
        assert row["normalized"] == 1.0


class TestTable4:
    def test_un_row_structure_and_agreement(self):
        row = run_workload(workload_by_name("UN1-UN2"), scale=TINY)
        assert row["pairs"] > 0
        assert row["pbsm_small"]["pairs"] == row["pairs"]
        assert row["shj"]["pairs"] == row["pairs"]
        assert row["pbsm_small"]["normalized"] > 0

    def test_tr_self_join_shape(self):
        """TR at tiny scale keeps its Table 3 coverage (13.96), which
        makes entities enormous — running the PBSM configurations is a
        benchmark-scale job, so the unit test checks the S3J/SHJ leg.
        """
        workload = workload_by_name("TR")
        a, b = workload.datasets(scale=TINY)
        s3j = run_algorithm(a, b, "s3j", scale=TINY)
        shj = run_algorithm(a, b, "shj", scale=TINY)
        assert shj.result.pairs == s3j.result.pairs
        assert len(s3j.result.pairs) > 0
        # S3J never replicates; SHJ does on TR.
        assert s3j.result.metrics.replication_a == 1.0
        assert shj.result.metrics.replication_b > 1.0

    def test_only_filter(self):
        rows = table4_rows(scale=TINY, only=("UN1-UN2",))
        assert len(rows) == 1

    def test_format_table4(self):
        rows = table4_rows(scale=TINY, only=("UN1-UN2",))
        text = format_table4(rows)
        assert "UN1-UN2" in text
        assert "Workload" in text
