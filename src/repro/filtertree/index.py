"""The Filter Tree access method (Sevcik & Koudas, VLDB 1996).

S3J "derives its properties from the Filter Tree join algorithm" and
"constructs a Filter Tree partition of the space on the fly without
building complete Filter Tree indices" (section 3).  This module builds
the *complete* index the paper alludes to: a persistent hierarchy of
Hilbert-sorted level files over the storage manager, supporting

- window (range) queries, and
- the Filter-Tree spatial join of two indexed data sets [SK96] —
  which is exactly S3J's synchronized scan, minus the partition and
  sort phases S3J performs on the fly.

This gives the library the indexed counterpart of S3J: build once, join
many times.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.sync_scan import synchronized_scan
from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.grid import cells_overlapping
from repro.filtertree.levels import LevelAssigner
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.sorting.external_sort import ExternalSorter
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import HKEY, XHI, XLO, YHI, YLO


class FilterTreeIndex:
    """A Filter Tree over one spatial data set.

    Entities live in the level file of their Filter-Tree level, sorted
    by the Hilbert value of their MBR center; per level, a sparse
    page-boundary directory supports key-range seeks.
    """

    def __init__(
        self,
        storage: StorageManager,
        name: str,
        curve: SpaceFillingCurve | None = None,
        max_level: int = 16,
    ) -> None:
        self.storage = storage
        self.name = name
        self.curve = curve or HilbertCurve()
        self.assigner = LevelAssigner(
            order=self.curve.order, max_level=min(max_level, self.curve.order)
        )
        self.level_files: dict[int, PagedFile] = {}
        # level -> first Hilbert key of each page (the page directory).
        self._directories: dict[int, list[int]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- construction ------------------------------------------------------

    def build(self, dataset: SpatialDataset) -> FilterTreeIndex:
        """Bulk-load the index: partition into level files, sort each by
        Hilbert value, and record the page directories."""
        if self.level_files:
            raise RuntimeError(f"index {self.name!r} is already built")
        staging: dict[int, PagedFile] = {}
        for entity in dataset:
            mbr = entity.mbr
            level = self.assigner.level(mbr)
            self.storage.stats.charge_cpu("level")
            key = self.curve.key_of_normalized(*mbr.center)
            self.storage.stats.charge_cpu("hilbert")
            handle = staging.get(level)
            if handle is None:
                handle = self.storage.create_file(f"{self.name}-L{level}-staging")
                staging[level] = handle
            handle.append((entity.eid, mbr.xlo, mbr.ylo, mbr.xhi, mbr.yhi, key))
        sorter = ExternalSorter(self.storage)
        for level, handle in sorted(staging.items()):
            outcome = sorter.sort(
                handle, f"{self.name}-L{level}", key=lambda record: record[HKEY]
            )
            self.storage.drop_file(handle.name)
            self.level_files[level] = outcome.output
            self._directories[level] = self._page_directory(outcome.output)
            self._size += outcome.output.num_records
        return self

    def _page_directory(self, handle: PagedFile) -> list[int]:
        """First Hilbert key of every page (read once at build time)."""
        return [
            page[0][HKEY] if page else 0 for page in handle.scan_pages()
        ]

    # -- window queries ------------------------------------------------------

    def window_query(self, window: Rect) -> list[int]:
        """Entity ids whose MBRs intersect the query window.

        Per level, only the pages whose Hilbert range can contain
        entities of cells overlapping the window are read — large
        entities are caught at the few high levels, small ones inside
        the window's own key ranges.
        """
        results = []
        for level, handle in self.level_files.items():
            ranges = self._window_key_ranges(window, level)
            for page_no in self._pages_for_ranges(level, handle, ranges):
                for record in handle.read_page(page_no):
                    self.storage.stats.charge_cpu("mbr_test")
                    if (
                        record[XLO] <= window.xhi
                        and window.xlo <= record[XHI]
                        and record[YLO] <= window.yhi
                        and window.ylo <= record[YHI]
                    ):
                        results.append(record[0])
        return results

    def _window_key_ranges(
        self, window: Rect, level: int
    ) -> list[tuple[int, int]]:
        """Merged, sorted Hilbert key ranges of the level-``level``
        cells the window overlaps."""
        shift = 2 * (self.curve.order - level)
        side_shift = self.curve.order - level
        raw = []
        for cx, cy in cells_overlapping(window, level):
            prefix = self.curve.key(cx << side_shift, cy << side_shift) >> shift
            raw.append((prefix << shift, (prefix + 1) << shift))
        raw.sort()
        merged: list[tuple[int, int]] = []
        for lo, hi in raw:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def _pages_for_ranges(
        self, level: int, handle: PagedFile, ranges: list[tuple[int, int]]
    ) -> list[int]:
        """Page numbers whose key span intersects any query range."""
        directory = self._directories[level]
        pages: set[int] = set()
        for lo, hi in ranges:
            # Pages are sorted by first key; a page may also *start*
            # before lo but spill into the range, so step one page back.
            first = max(0, bisect_right(directory, lo) - 1)
            last = bisect_left(directory, hi, lo=first)
            pages.update(range(first, min(last + 1, handle.num_pages)))
        return sorted(pages)

    # -- joins ----------------------------------------------------------------

    def join(self, other: FilterTreeIndex, stats_phase: str = "join") -> set[tuple[int, int]]:
        """The Filter Tree join [SK96]: a synchronized scan over the two
        indexes' level files — S3J's join phase with both partition and
        sort phases already amortized into the indexes."""
        if self.curve.order != other.curve.order:
            raise ValueError("indexes must share a curve order to be joined")
        pairs: set[tuple[int, int]] = set()
        with self.storage.stats.phase(stats_phase):
            synchronized_scan(
                self.level_files,
                other.level_files,
                self.curve.order,
                lambda a, b: pairs.add((a[0], b[0])),
                stats=self.storage.stats,
            )
        return pairs

    # -- maintenance -----------------------------------------------------------

    def drop(self) -> None:
        """Delete the index's files."""
        for handle in self.level_files.values():
            self.storage.drop_file(handle.name)
        self.level_files.clear()
        self._directories.clear()
        self._size = 0
