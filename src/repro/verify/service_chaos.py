"""Chaos scenarios for the long-lived join service.

The batch-side chaos harness (:mod:`repro.verify.chaos`) asserts that
one-shot joins under sampled fault plans end **correct**, **loud**, or
**declared-partial** — never silently wrong.  This module applies the
same discipline to the service: each :class:`ServiceChaosScenario` is a
deterministically sampled fault plan (a scheduled mid-stream burst, a
seeded transient/permanent drizzle, or a quiet control) replayed as an
interleaved stream of queries and mutations against one resident
:class:`~repro.service.index.PersistentIndex`.

Every query outcome is classified under the service trichotomy:

- ``"ok"`` results must equal a brute-force oracle over the live set
  (the answer, not just the status, is checked);
- ``"failed"`` results must carry a typed error string;
- ``"partial"`` results must declare the open circuit breaker (a
  ``CircuitOpen`` :class:`~repro.faults.errors.ShardFailure`) and may
  only appear while the breaker is not closed.

A compaction that dies mid-fold must die loudly (a typed
:class:`~repro.faults.errors.FaultError`) and must leave the index
answering exactly — the write-new + atomic-rename discipline means a
failed fold never corrupts the base files.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.errors import FaultError
from repro.faults.plan import FaultPlan, ScheduledFault
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.service.api import BreakerState, JoinService, ServiceConfig
from repro.service.index import PersistentIndex
from repro.storage.manager import StorageConfig

Progress = Callable[[str], None]

GOOD_PROFILES = ("scheduled-burst", "seeded-transient", "permanent-burst", "quiet")


@dataclass(frozen=True)
class ServiceChaosScenario:
    """One sampled service fault scenario, a pure function of (seed, index)."""

    index: int
    seed: int
    profile: str
    plan: FaultPlan | None
    ops: int
    entities: int

    def describe(self) -> str:
        plan = self.plan.describe() if self.plan is not None else "no faults"
        return (
            f"#{self.index} service {self.profile} "
            f"({self.ops} ops over {self.entities} entities) {plan}"
        )


@dataclass(frozen=True)
class ServiceChaosOutcome:
    """How one scenario's replay ended."""

    scenario: str
    ok_queries: int
    failed_queries: int
    partial_queries: int
    violations: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok_queries": self.ok_queries,
            "failed_queries": self.failed_queries,
            "partial_queries": self.partial_queries,
            "violations": list(self.violations),
        }


@dataclass
class ServiceChaosReport:
    """The sweep's verdict."""

    outcomes: list[ServiceChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def summary(self) -> str:
        bad = [outcome for outcome in self.outcomes if not outcome.ok]
        lines = [
            "service chaos sweep: " + ("PASS" if self.ok else "FAIL"),
            f"  scenarios : {len(self.outcomes)} ({len(bad)} violated)",
        ]
        for outcome in bad:
            lines.append(f"  VIOLATION {outcome.scenario}")
            lines += [f"    {violation}" for violation in outcome.violations]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "scenarios": len(self.outcomes),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def sample_service_scenario(
    index: int, seed: int, ops: int = 30, entities: int = 80
) -> ServiceChaosScenario:
    """Deterministically sample service chaos case number ``index``."""
    rng = random.Random((seed << 20) ^ index)
    profile = GOOD_PROFILES[index % len(GOOD_PROFILES)]
    plan: FaultPlan | None
    if profile == "scheduled-burst":
        first = rng.randrange(10, 40)
        plan = FaultPlan(
            schedule=(
                ScheduledFault(
                    op="read",
                    kind="transient",
                    first=first,
                    last=first + rng.randrange(10, 30),
                ),
            )
        )
    elif profile == "seeded-transient":
        plan = FaultPlan(
            seed=rng.randrange(2**31),
            transient_read_rate=rng.uniform(0.02, 0.15),
        )
    elif profile == "permanent-burst":
        # Permanent read faults in a bounded window.  Scheduled on reads
        # only: the bulk load is write-only, so the index always comes
        # up — the burst lands on queries and compaction folds.
        first = rng.randrange(5, 30)
        plan = FaultPlan(
            schedule=(
                ScheduledFault(
                    op="read",
                    kind="permanent",
                    first=first,
                    last=first + rng.randrange(3, 12),
                ),
            )
        )
    else:  # quiet control: the trichotomy must collapse to all-ok
        plan = None
    return ServiceChaosScenario(
        index=index,
        seed=seed,
        profile=profile,
        plan=plan,
        ops=ops,
        entities=entities,
    )


def run_service_chaos(
    cases: int = 8,
    seed: int = 0,
    ops: int = 30,
    entities: int = 80,
    progress: Progress | None = None,
) -> ServiceChaosReport:
    """Replay ``cases`` sampled scenarios; any violation fails the sweep."""
    note = progress or (lambda message: None)
    report = ServiceChaosReport()
    for index in range(cases):
        scenario = sample_service_scenario(index, seed, ops, entities)
        outcome = asyncio.run(_run_scenario(scenario))
        verdict = "ok" if outcome.ok else "VIOLATED"
        note(f"{scenario.describe()} -> {verdict}")
        report.outcomes.append(outcome)
    return report


def _brute_pairs(live: list[Entity]) -> frozenset[tuple[int, int]]:
    pairs = set()
    for position, a in enumerate(live):
        for b in live[position + 1 :]:
            if a.mbr.intersects(b.mbr):
                pairs.add((min(a.eid, b.eid), max(a.eid, b.eid)))
    return frozenset(pairs)


async def _run_scenario(scenario: ServiceChaosScenario) -> ServiceChaosOutcome:
    rng = random.Random(scenario.seed * 7919 + scenario.index)
    violations: list[str] = []
    counts = {"ok": 0, "failed": 0, "partial": 0}

    def entity(eid: int) -> Entity:
        side = rng.uniform(0.01, 0.08)
        x = rng.uniform(0.0, 1.0 - side)
        y = rng.uniform(0.0, 1.0 - side)
        return Entity.from_geometry(eid, Rect(x, y, x + side, y + side))

    bootstrap = [entity(eid) for eid in range(scenario.entities)]
    index = PersistentIndex(
        bootstrap,
        storage=StorageConfig(fault_plan=scenario.plan),
        compaction_threshold=10**9,  # compaction is an explicit replay op
    )
    config = ServiceConfig(
        breaker_threshold=2, breaker_reset_s=0.01, compaction_interval_s=60.0
    )
    service = JoinService(index, config)
    next_eid = scenario.entities

    def classify(step: int, op: str, outcome: Any) -> None:
        state = service.breaker.state
        if outcome.status == "ok":
            counts["ok"] += 1
        elif outcome.status == "failed":
            counts["failed"] += 1
            if not outcome.error:
                violations.append(
                    f"step {step} [{op}]: failed without a typed error"
                )
            if scenario.plan is None:
                violations.append(
                    f"step {step} [{op}]: loud failure with no fault plan"
                )
        elif outcome.status == "partial":
            counts["partial"] += 1
            if not any(
                failure.error_type == "CircuitOpen"
                for failure in outcome.failures
            ):
                violations.append(
                    f"step {step} [{op}]: partial without CircuitOpen failure"
                )
            if state is BreakerState.CLOSED:
                violations.append(
                    f"step {step} [{op}]: partial with the breaker closed"
                )
        else:
            violations.append(
                f"step {step} [{op}]: unexpected status {outcome.status!r}"
            )

    try:
        for step in range(scenario.ops):
            choice = rng.random()
            if choice < 0.30:
                await service.insert(entity(next_eid))
                next_eid += 1
            elif choice < 0.45 and len(index) > scenario.entities // 2:
                live = index.live_entities()
                await service.delete(rng.choice(live).eid)
            elif choice < 0.55 and index.delta_records:
                answers_before = _brute_pairs(index.live_entities())
                try:
                    await service.compact()
                except FaultError:
                    # Loud is fine; the fold must not have corrupted the
                    # base — the next exact join proves it below.
                    counts["failed"] += 1
                except Exception as error:  # noqa: BLE001 - silent class
                    violations.append(
                        f"step {step} [compact]: untyped failure "
                        f"{type(error).__name__}: {error}"
                    )
                if _brute_pairs(index.live_entities()) != answers_before:
                    violations.append(
                        f"step {step} [compact]: live set changed across "
                        f"compaction"
                    )
            elif choice < 0.80:
                outcome = await service.join()
                classify(step, "join", outcome)
                if outcome.status == "ok":
                    expected = _brute_pairs(index.live_entities())
                    if outcome.pairs != expected:
                        violations.append(
                            f"step {step} [join]: silent wrong answer "
                            f"({len(outcome.pairs)} pairs, expected "
                            f"{len(expected)})"
                        )
            else:
                x, y = rng.uniform(0, 1), rng.uniform(0, 1)
                outcome = await service.point(x, y)
                classify(step, "point", outcome)
                if outcome.status == "ok":
                    expected = tuple(
                        sorted(
                            e.eid
                            for e in index.live_entities()
                            if e.mbr.contains_point(x, y)
                        )
                    )
                    if outcome.eids != expected:
                        violations.append(
                            f"step {step} [point]: silent wrong answer"
                        )
            if step % 8 == 7:
                await asyncio.sleep(config.breaker_reset_s)
        if scenario.plan is None and (counts["failed"] or counts["partial"]):
            violations.append(
                "quiet control produced non-ok outcomes: "
                f"{counts['failed']} failed, {counts['partial']} partial"
            )
    finally:
        index.close()
    return ServiceChaosOutcome(
        scenario=scenario.describe(),
        ok_queries=counts["ok"],
        failed_queries=counts["failed"],
        partial_queries=counts["partial"],
        violations=tuple(violations),
    )
