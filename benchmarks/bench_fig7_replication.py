"""E-F7 — figure 7: fraction of replicated objects as a function of
``d * 2^j`` (object side times tiles per dimension).

The analytic curve is ``2x - x^2`` (equation 11); the measured series
partitions real uniform-square data sets with PBSM over an increasingly
fine tile grid and counts entities recorded in more than one tile.
"""

import pytest

from repro.costmodel.replication import replicated_fraction
from repro.datagen.uniform import uniform_squares
from repro.filtertree.grid import cells_overlapping

SIDE = 0.01
COUNT = 5_000
TILE_COUNTS = (8, 16, 32, 64)  # d * 2^j = 0.08 .. 0.64


def measure_replicated_fraction(tiles_per_dim: int) -> float:
    dataset = uniform_squares(COUNT, SIDE, seed=7)
    replicated = 0
    for entity in dataset:
        level = tiles_per_dim.bit_length() - 1
        tiles = list(cells_overlapping(entity.mbr, level))
        if len(tiles) > 1:
            replicated += 1
    return replicated / COUNT


def test_fig7_replication_curve(benchmark):
    def sweep():
        return [
            (tiles, measure_replicated_fraction(tiles)) for tiles in TILE_COUNTS
        ]

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n--- Figure 7: fraction of replicated objects vs d*2^j ---")
    print(f"{'d*2^j':>8}{'measured':>10}{'analytic':>10}")
    for tiles, measured in series:
        x = SIDE * tiles
        predicted = replicated_fraction(x)
        print(f"{x:>8.2f}{measured:>10.3f}{predicted:>10.3f}")
        assert measured == pytest.approx(predicted, abs=0.03)

    # Monotone increase toward 1, as in the figure.
    fractions = [measured for _, measured in series]
    assert fractions == sorted(fractions)
    benchmark.extra_info["series"] = series
