"""Plane sweep.

"All three algorithms use the same module for plane sweep"
(section 5).  :func:`~repro.sweep.plane_sweep.sweep_intersections` is
that module: it reports every pair of MBR-intersecting descriptors
between two in-memory descriptor lists.
"""

from repro.sweep.plane_sweep import sweep_intersections, sweep_self_intersections

__all__ = ["sweep_intersections", "sweep_self_intersections"]
