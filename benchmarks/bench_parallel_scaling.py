"""E-PAR — wall-clock scaling of the Hilbert-sharded parallel join.

Runs every algorithm on one uniform workload serially and sharded with
1, 2, and 4 workers, verifying the executor's contract while timing:

- the sharded pair set equals the serial pair set for every worker
  count;
- the merged :class:`~repro.join.metrics.JoinMetrics` are byte-
  identical across worker counts (the worker count may change
  wall-clock only);
- the merged ledger equals the sum of the per-shard ledgers.

Emits ``BENCH_parallel_scaling.json`` with the wall-clock per
(algorithm, worker count) so CI uploads the scaling numbers::

    python -m benchmarks.bench_parallel_scaling [--entities 20000]

Note the *simulated* response time does not change with workers — the
cost model describes the paper's single-disk 1997 testbed.  What
parallelism buys here is real Python wall-clock on the host.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.join.api import spatial_join
from repro.obs.report import TABLE2_PHASES
from repro.parallel import parallel_spatial_join

from benchmarks.artifacts import write_bench_artifact
from tests.conftest import make_squares

WORKER_COUNTS = (1, 2, 4)
NUM_ENTITIES = int(os.environ.get("REPRO_PARALLEL_N", "20000"))


def bench_algorithm(algorithm: str, entities: int) -> tuple[dict, list[str]]:
    """Time one algorithm serial + sharded; return (row, failures)."""
    dataset_a = make_squares(entities, 0.002, seed=20260806, name="par-A")
    dataset_b = make_squares(entities, 0.003, seed=20260807, name="par-B")

    start = time.perf_counter()
    serial = spatial_join(dataset_a, dataset_b, algorithm=algorithm)
    serial_s = time.perf_counter() - start

    failures: list[str] = []
    row: dict = {
        "algorithm": algorithm,
        "entities": 2 * entities,
        "serial_wall_s": serial_s,
        "serial_pairs_per_s": len(serial.pairs) / serial_s,
        "pairs": len(serial.pairs),
        "workers": {},
    }
    reference_metrics: dict | None = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        sharded = parallel_spatial_join(
            dataset_a, dataset_b, algorithm=algorithm, workers=workers
        )
        elapsed = time.perf_counter() - start
        if sharded.pairs != serial.pairs:
            failures.append(
                f"{algorithm} workers={workers}: {len(sharded.pairs)} pairs "
                f"!= serial {len(serial.pairs)}"
            )
        metrics = sharded.metrics.to_dict()
        if reference_metrics is None:
            reference_metrics = metrics
        elif metrics != reference_metrics:
            failures.append(
                f"{algorithm} workers={workers}: merged metrics differ from "
                f"workers={WORKER_COUNTS[0]}"
            )
        shard_ios = sum(
            shard["total_ios"] for shard in sharded.metrics.details["shards"]
        )
        if sharded.metrics.total_ios != shard_ios:
            failures.append(
                f"{algorithm} workers={workers}: merged ledger "
                f"{sharded.metrics.total_ios} != shard sum {shard_ios}"
            )
        row["workers"][str(workers)] = {
            "wall_s": elapsed,
            "pairs_per_s": len(sharded.pairs) / elapsed,
            "speedup_vs_1worker": None,  # filled below
            "total_ios": sharded.metrics.total_ios,
            "sub_joins": sharded.metrics.details["plan"]["tasks"],
        }
    base = row["workers"][str(WORKER_COUNTS[0])]["wall_s"]
    for entry in row["workers"].values():
        entry["speedup_vs_1worker"] = base / entry["wall_s"]
    return row, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=NUM_ENTITIES)
    args = parser.parse_args(argv)

    rows = []
    failures: list[str] = []
    for algorithm in sorted(TABLE2_PHASES):
        row, algo_failures = bench_algorithm(algorithm, args.entities)
        rows.append(row)
        failures.extend(algo_failures)
        timings = "  ".join(
            f"{workers}w={entry['wall_s']:.2f}s"
            f"({entry['pairs_per_s']:,.0f}p/s)"
            for workers, entry in row["workers"].items()
        )
        print(
            f"{algorithm:<5} pairs={row['pairs']:<8} "
            f"serial={row['serial_wall_s']:.2f}s"
            f"({row['serial_pairs_per_s']:,.0f}p/s)  {timings}"
        )

    path = write_bench_artifact(
        "parallel_scaling",
        {"entities_per_side": args.entities, "worker_counts": list(WORKER_COUNTS), "rows": rows},
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"parallel scaling OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
