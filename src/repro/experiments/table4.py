"""Regenerate Table 4: response times normalized to S3J, plus observed
replication factors, for every evaluation workload."""

from __future__ import annotations

from typing import Any

from repro.datagen.paper import default_scale
from repro.experiments.runner import run_algorithm
from repro.experiments.workloads import WORKLOADS, Workload


def run_workload(
    workload: Workload, scale: float | None = None
) -> dict[str, Any]:
    """Run all four algorithm configurations of one Table 4 row."""
    if scale is None:
        scale = default_scale()
    dataset_a, dataset_b = workload.datasets(scale)
    predicate = workload.predicate()

    s3j = run_algorithm(
        dataset_a, dataset_b, "s3j", predicate=predicate, scale=scale
    )
    pbsm_small = run_algorithm(
        dataset_a,
        dataset_b,
        "pbsm",
        label=f"pbsm {workload.tiles_small}x{workload.tiles_small}",
        predicate=predicate,
        scale=scale,
        tiles_per_dim=workload.tiles_small,
    )
    pbsm_large = run_algorithm(
        dataset_a,
        dataset_b,
        "pbsm",
        label=f"pbsm {workload.tiles_large}x{workload.tiles_large}",
        predicate=predicate,
        scale=scale,
        tiles_per_dim=workload.tiles_large,
    )
    shj = run_algorithm(
        dataset_a, dataset_b, "shj", predicate=predicate, scale=scale
    )

    for run in (pbsm_small, pbsm_large, shj):
        if run.result.pairs != s3j.result.pairs:
            raise AssertionError(
                f"{run.label} disagrees with s3j on workload {workload.name}"
            )

    base = s3j.response_time
    rows = {
        "workload": workload.name,
        "figure": workload.figure,
        "pairs": len(s3j.result.pairs),
        "s3j": s3j.row(),
        "pbsm_small": pbsm_small.row(base),
        "pbsm_large": pbsm_large.row(base),
        "shj": shj.row(base),
        "paper_normalized": workload.paper_normalized,
        "paper_replication": workload.paper_replication,
    }
    return rows


def table4_rows(
    scale: float | None = None, only: tuple[str, ...] | None = None
) -> list[dict[str, Any]]:
    """All Table 4 rows (optionally a subset of workload names)."""
    rows = []
    for workload in WORKLOADS:
        if only is not None and workload.name not in only:
            continue
        rows.append(run_workload(workload, scale))
    return rows


def format_table4(rows: list[dict[str, Any]]) -> str:
    """Render rows the way the paper prints Table 4."""
    lines = [
        f"{'Workload':<10} {'PBSM sm':>8} {'rA+rB':>6} {'PBSM lg':>8}"
        f" {'rA+rB':>6} {'SHJ':>8} {'rB':>6}   (paper: sm/lg/shj)"
    ]
    for row in rows:
        paper = row["paper_normalized"]
        lines.append(
            f"{row['workload']:<10}"
            f" {row['pbsm_small']['normalized']:>8.2f}"
            f" {row['pbsm_small']['r_A'] + row['pbsm_small']['r_B']:>6.2f}"
            f" {row['pbsm_large']['normalized']:>8.2f}"
            f" {row['pbsm_large']['r_A'] + row['pbsm_large']['r_B']:>6.2f}"
            f" {row['shj']['normalized']:>8.2f}"
            f" {row['shj']['r_B']:>6.2f}"
            f"   ({paper['pbsm_small']}/{paper['pbsm_large']}/{paper['shj']})"
        )
    return "\n".join(lines)
