"""The differential correctness harness.

One :func:`run_verify` call sweeps the cross product of

    workloads x metamorphic variants x executors

and checks, for every run: the pair set against the brute-force oracle
(with metamorphic expectation mapping), the pluggable ledger
invariants, and — once per workload — partition-semantics conformance
(``Level()``/``cell_of`` closed-interval behavior over the workload's
own boxes) and obs-on/obs-off ledger parity.  Any pair-set divergence
is shrunk to a minimized counterexample before it is reported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.filtertree.levels import LevelAssigner
from repro.verify.cases import VerifyCase
from repro.verify.differential import (
    Divergence,
    diff_pairs,
    minimize_counterexample,
)
from repro.verify.executors import (
    ExecutorSpec,
    default_executors,
    run_executor,
)
from repro.verify.invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    InvariantViolation,
    check_obs_parity,
)
from repro.verify.metamorphic import (
    FULL_TRANSFORMS,
    QUICK_TRANSFORMS,
    Transform,
    transforms_by_name,
)
from repro.verify.oracle import descriptor_boxes, oracle_for_case
from repro.verify.workloads import default_cases

Progress = Callable[[str], None]

CONFORMANCE_ORDER = 16
CONFORMANCE_DEPTH = 6
"""How many levels past an MBR's own level the cell_of conformance
check probes."""


@dataclass
class VerifyReport:
    """Outcome of one harness sweep."""

    quick: bool
    cases: list[str] = field(default_factory=list)
    transforms: list[str] = field(default_factory=list)
    executors: list[str] = field(default_factory=list)
    runs: int = 0
    pairs_checked: int = 0
    conformance_boxes: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    violations: list[InvariantViolation] = field(default_factory=list)
    oracle_failures: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not (self.divergences or self.violations or self.oracle_failures)

    def summary(self) -> str:
        mode = "quick" if self.quick else "full"
        lines = [
            f"verify ({mode}): {len(self.cases)} workloads x "
            f"{len(self.transforms)} variants x {len(self.executors)} "
            f"executors = {self.runs} runs in {self.elapsed_s:.1f}s",
            f"  workloads : {', '.join(self.cases)}",
            f"  executors : {', '.join(self.executors)}",
            f"  variants  : {', '.join(self.transforms)}",
            f"  pair sets : {self.pairs_checked} compared against the oracle",
            f"  conformance: {self.conformance_boxes} boxes level-checked",
        ]
        if self.ok:
            lines.append("  PASS: zero pair-set diffs, zero invariant violations")
            return "\n".join(lines)
        lines.append(
            f"  FAIL: {len(self.divergences)} pair-set divergence(s), "
            f"{len(self.violations)} invariant violation(s), "
            f"{len(self.oracle_failures)} metamorphic oracle failure(s)"
        )
        for divergence in self.divergences:
            lines.append("  - " + divergence.describe().replace("\n", "\n    "))
        for violation in self.violations:
            lines.append("  - " + violation.describe())
        for failure in self.oracle_failures:
            lines.append("  - [metamorphic-oracle] " + failure)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "quick": self.quick,
            "ok": self.ok,
            "cases": self.cases,
            "transforms": self.transforms,
            "executors": self.executors,
            "runs": self.runs,
            "pairs_checked": self.pairs_checked,
            "conformance_boxes": self.conformance_boxes,
            "divergences": [d.describe() for d in self.divergences],
            "violations": [v.describe() for v in self.violations],
            "oracle_failures": list(self.oracle_failures),
            "elapsed_s": round(self.elapsed_s, 3),
        }


def check_partition_conformance(
    case: VerifyCase,
    order: int = CONFORMANCE_ORDER,
    depth: int = CONFORMANCE_DEPTH,
) -> tuple[int, list[InvariantViolation]]:
    """Closed-interval conformance of ``Level()`` and ``cell_of``.

    For every filter-step box of the workload: the vectorized level
    computation must match the scalar one, the box must fit the cell
    ``cell_of`` returns at its own level, and for each deeper level at
    which the box *geometrically* fits inside one closed grid cell,
    ``cell_of`` must locate that cell instead of raising — the paper's
    cells are closed intervals, so a high corner exactly on a grid line
    stays inside the cell below it.
    """
    import numpy as np

    assigner = LevelAssigner(order=order, max_level=order)
    problems: list[str] = []
    checked = 0
    datasets = {
        id(case.dataset_a): case.dataset_a,
        id(case.dataset_b): case.dataset_b,
    }
    for dataset in datasets.values():
        _, boxes = descriptor_boxes(dataset, case.margin)
        if not len(boxes):
            continue
        scalar_levels = []
        for xlo, ylo, xhi, yhi in boxes.tolist():
            from repro.geometry.rect import Rect

            box = Rect(xlo, ylo, xhi, yhi)
            level = assigner.level(box)
            scalar_levels.append(level)
            checked += 1
            # Its own level: never raises, returns the lo-corner cell.
            cx, cy = assigner.cell_of(box, level)
            side = assigner.cell_side(level)
            if not (cx * side <= xlo and cy * side <= ylo):
                problems.append(
                    f"cell_of{box.as_tuple()} at own level {level} returned "
                    f"({cx}, {cy}), which excludes the low corner"
                )
            # Deeper levels: cell_of must succeed exactly when the box
            # geometrically fits one closed cell.
            for deeper in range(level + 1, min(level + depth, order) + 1):
                cells = 1 << deeper
                cell_w = 1.0 / cells
                fx = min(int(xlo * cells), cells - 1)
                fy = min(int(ylo * cells), cells - 1)
                fits = xhi <= (fx + 1) * cell_w and yhi <= (fy + 1) * cell_w
                try:
                    got = assigner.cell_of(box, deeper)
                except ValueError:
                    got = None
                if fits and got is None:
                    problems.append(
                        f"cell_of{box.as_tuple()} raised at level {deeper} "
                        f"although the box fits closed cell ({fx}, {fy})"
                    )
                elif not fits and got is not None:
                    gx, gy = got
                    if not (
                        gx * cell_w <= xlo
                        and xhi <= (gx + 1) * cell_w
                        and gy * cell_w <= ylo
                        and yhi <= (gy + 1) * cell_w
                    ):
                        problems.append(
                            f"cell_of{box.as_tuple()} returned non-containing "
                            f"cell ({gx}, {gy}) at level {deeper}"
                        )
        vector_levels = assigner.levels(
            boxes[:, 0], boxes[:, 1], boxes[:, 2], boxes[:, 3]
        )
        if not np.array_equal(vector_levels, np.asarray(scalar_levels)):
            mismatches = int(
                (vector_levels != np.asarray(scalar_levels)).sum()
            )
            problems.append(
                f"vectorized levels() disagrees with scalar level() on "
                f"{mismatches} of {len(boxes)} boxes in {dataset.name}"
            )
    violations = [
        InvariantViolation(
            invariant="partition-conformance",
            executor="LevelAssigner",
            case=case.name,
            message=message,
        )
        for message in problems[:10]
    ]
    return checked, violations


def run_verify(
    quick: bool = True,
    cases: list[VerifyCase] | None = None,
    transforms: list[Transform] | None = None,
    executors: list[ExecutorSpec] | None = None,
    invariants: tuple[Invariant, ...] = DEFAULT_INVARIANTS,
    minimize: bool = True,
    minimize_budget: int = 80,
    obs_parity: bool = True,
    seed: int = 0,
    progress: Progress | None = None,
) -> VerifyReport:
    """Run the differential correctness harness.

    Quick mode (the CI smoke configuration) covers three generated
    workloads, four metamorphic variants plus identity, every
    registered algorithm, and a 2-worker sharded S3J; full mode adds
    the degenerate and paper workloads, the reflection transform, and
    obs-parity checks for every serial executor.
    """
    say = progress or (lambda message: None)
    started = time.monotonic()

    if cases is None:
        cases = default_cases(quick=quick, seed=seed)
    if transforms is None:
        transforms = transforms_by_name(
            QUICK_TRANSFORMS if quick else FULL_TRANSFORMS
        )
    if executors is None:
        executors = default_executors()

    report = VerifyReport(
        quick=quick,
        cases=[case.name for case in cases],
        transforms=[transform.name for transform in transforms],
        executors=[spec.name for spec in executors],
    )

    for case in cases:
        say(f"case {case.describe()}")
        checked, conformance = check_partition_conformance(case)
        report.conformance_boxes += checked
        report.violations.extend(conformance)

        base_oracle = oracle_for_case(case)
        for transform in transforms:
            variant = transform.apply(case)
            expected = oracle_for_case(variant)
            if transform.preserves_pairs and transform.name != "identity":
                mapped = transform.map_pairs(base_oracle, case.self_join)
                if mapped != expected:
                    report.oracle_failures.append(
                        f"{transform.name} on {case.name}: transform claims "
                        f"{len(mapped)} pairs, oracle finds {len(expected)}"
                    )

            for spec in executors:
                overrides = transform.param_overrides(spec.algorithm)
                record = run_executor(variant, spec, overrides=overrides)
                record.transform_name = transform.name
                report.runs += 1
                report.pairs_checked += len(expected)

                if record.pairs != expected:
                    diff = diff_pairs(expected, record.pairs)
                    say(
                        f"  DIVERGE {spec.name} x {transform.name}: "
                        + diff.describe()
                    )
                    counterexample = None
                    if minimize:
                        counterexample = minimize_counterexample(
                            variant,
                            lambda sub: run_executor(
                                sub, spec, overrides=overrides, instrument=False
                            ).pairs,
                            max_runs=minimize_budget,
                        )
                    report.divergences.append(
                        Divergence(
                            case=case.name,
                            transform=transform.name,
                            executor=spec.name,
                            expected=len(expected),
                            got=len(record.pairs),
                            diff=diff,
                            counterexample=counterexample,
                        )
                    )
                for invariant in invariants:
                    report.violations.extend(invariant.violations(record))

        if obs_parity:
            parity_specs = [
                spec
                for spec in executors
                if not spec.sharded and (not quick or spec.algorithm == "s3j")
            ]
            for spec in parity_specs:
                report.violations.extend(check_obs_parity(case, spec))
                report.runs += 2

    report.elapsed_s = time.monotonic() - started
    return report
