"""The spatial entity model shared by every algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.rect import Rect
from repro.geometry.shapes import Point, Polygon, Segment

Geometry = Point | Segment | Polygon | Rect


@dataclass(frozen=True, slots=True)
class Entity:
    """A spatial entity: a stable id, its MBR, and optionally the exact
    geometry the MBR approximates.

    The join algorithms' *filter step* touches only ``eid`` and ``mbr``
    (this mirrors the paper's "entity descriptor": MBR corner points,
    Hilbert value, and a pointer to the data).  The *refinement step*
    dereferences ``geometry`` when present; entities without a geometry
    payload are treated as rectangles equal to their MBR.
    """

    eid: int
    mbr: Rect
    geometry: Geometry | None = field(default=None, compare=False)

    @classmethod
    def from_geometry(cls, eid: int, geometry: Geometry) -> Entity:
        """Build an entity whose MBR is derived from its geometry."""
        mbr = geometry if isinstance(geometry, Rect) else geometry.mbr()
        return cls(eid, mbr, geometry)

    def exact_geometry(self) -> Geometry:
        """The geometry the refinement step should test (MBR fallback)."""
        return self.geometry if self.geometry is not None else self.mbr
