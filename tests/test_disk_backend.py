"""End-to-end runs over the real-file backend.

The memory backend counts I/O without performing it; these tests push
the full stack — descriptor serialization, page blocks, buffer pool
write-back, external sort, all three joins — through genuine files on
disk and verify identical results.
"""

import pytest

from repro.baselines.pbsm import PartitionBasedSpatialMergeJoin
from repro.baselines.shj import SpatialHashJoin
from repro.core.s3j import SizeSeparationSpatialJoin
from repro.sorting.external_sort import ExternalSorter
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.records import HKEY

from tests.conftest import brute_force_pairs, make_squares


@pytest.fixture
def disk_storage(tmp_path):
    config = StorageConfig(buffer_pages=16, backend="disk", directory=str(tmp_path))
    with StorageManager(config) as manager:
        yield manager


ALGORITHMS = [
    SizeSeparationSpatialJoin,
    PartitionBasedSpatialMergeJoin,
    SpatialHashJoin,
]


@pytest.mark.parametrize("algorithm_cls", ALGORITHMS, ids=lambda c: c.name)
def test_join_on_real_files(disk_storage, algorithm_cls):
    a = make_squares(250, 0.04, seed=1, name="A")
    b = make_squares(250, 0.04, seed=2, name="B")
    file_a = a.write_descriptors(disk_storage, "in-a")
    file_b = b.write_descriptors(disk_storage, "in-b")
    disk_storage.phase_boundary()
    disk_storage.stats.reset()
    algo = algorithm_cls(disk_storage)
    result = algo.join(file_a, file_b)
    assert result.pairs == brute_force_pairs(a, b)


def test_disk_and_memory_backends_agree(tmp_path):
    a = make_squares(300, 0.03, seed=3, name="A")
    b = make_squares(300, 0.03, seed=4, name="B")
    results = {}
    for backend in ("memory", "disk"):
        config = StorageConfig(
            buffer_pages=16,
            backend=backend,
            directory=str(tmp_path / backend) if backend == "disk" else None,
        )
        with StorageManager(config) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            result = SizeSeparationSpatialJoin(storage).join(file_a, file_b)
            results[backend] = (result.pairs, result.metrics.total_ios)
    assert results["memory"][0] == results["disk"][0]
    # The I/O ledger is backend-independent: same logical behavior,
    # same counted physical transfers.
    assert results["memory"][1] == results["disk"][1]


def test_external_sort_on_real_files(disk_storage):
    handle = disk_storage.create_file("data")
    keys = [((i * 2654435761) % 4096) for i in range(2000)]
    for i, key in enumerate(keys):
        handle.append((i, 0.0, 0.0, 0.0, 0.0, key))
    sorter = ExternalSorter(disk_storage, memory_pages=2)
    result = sorter.sort(handle, "sorted", key=lambda r: r[HKEY])
    assert [r[HKEY] for r in result.output.scan()] == sorted(keys)


def test_data_survives_pool_invalidation(disk_storage):
    handle = disk_storage.create_file("persist")
    records = [(i, i / 100, 0.0, i / 100, 0.0, i * 3) for i in range(500)]
    handle.append_many(records)
    disk_storage.pool.invalidate()
    assert list(handle.scan()) == records
