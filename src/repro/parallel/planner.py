"""The shard planner: route entities to Hilbert-range shards.

Shard level ``k`` partitions the data space into the ``4^k`` cells of
the level-``k`` Filter-Tree grid.  Each cell is one contiguous Hilbert
key range (the curve's prefix property), so a shard is identified by
the top ``2k`` bits of any interior point's key.

Routing applies the same containment rule S3J's synchronized scan
relies on:

- an entity whose (margin-expanded) MBR has Filter-Tree level
  ``l >= k`` fits wholly inside one level-``k`` cell — it is routed to
  exactly that cell's shard (its level-``k`` ancestor), identified by
  the top ``2k`` bits of its center's Hilbert key;
- an entity with ``l < k`` is cut by a level-``k`` grid line — it goes
  to the *residual* shard of large entities.

No entity is ever replicated.  Entities routed to *different* cell
shards can never form a result pair: their quantized MBRs lie in
disjoint closed cells of the ``2^k`` grid (level quantization is
exactly the one :class:`~repro.filtertree.levels.LevelAssigner` uses,
so even boundary-touching MBRs quantize apart).  The full join is
therefore the disjoint union

    sum over cells c:  A_c  join  B_c
    +  residual(A)     join  B            (all of B)
    +  (A - residual)  join  residual(B)

where the third term excludes ``residual(A)`` so residual-residual
pairs are found exactly once.  For a self join the plan collapses to
the per-cell self joins plus ``residual(A) join A``; the executor
canonicalizes the mirrored pairs the residual cross join reintroduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.geometry.entity import Entity
from repro.join.dataset import SpatialDataset

RESIDUAL_A = "residual-A"
RESIDUAL_B = "residual-B"


def default_shard_level(workers: int) -> int:
    """The smallest level whose ``4^k`` cells cover ``workers`` shards
    (at least 1, so sharding is exercised even with one worker)."""
    if workers < 1:
        raise ValueError("workers must be positive")
    return max(1, math.ceil(math.log(workers, 4)))


@dataclass(frozen=True)
class ShardTask:
    """One independent sub-join of the sharded plan.

    ``self_join`` marks cell shards of a self join, where both sides
    are the *same* dataset object and the sub-join must canonicalize
    its pairs; the residual cross join of a self join is not marked
    (its sides differ) and the executor canonicalizes at merge time.
    """

    shard_id: str
    kind: str  # "cell" | "residual-A" | "residual-B"
    dataset_a: SpatialDataset
    dataset_b: SpatialDataset
    self_join: bool = False

    @property
    def input_records(self) -> int:
        return len(self.dataset_a) + len(self.dataset_b)


@dataclass
class ShardPlan:
    """The deterministic decomposition of one join into sub-joins."""

    shard_level: int
    tasks: list[ShardTask]
    routed_a: int = 0  # entities of A routed to cell shards
    routed_b: int = 0
    residual_a: int = 0  # entities of A in the residual shard
    residual_b: int = 0

    @property
    def num_cells(self) -> int:
        return sum(1 for task in self.tasks if task.kind == "cell")

    def describe(self) -> dict[str, int]:
        return {
            "shard_level": self.shard_level,
            "tasks": len(self.tasks),
            "cells": self.num_cells,
            "routed_a": self.routed_a,
            "routed_b": self.routed_b,
            "residual_a": self.residual_a,
            "residual_b": self.residual_b,
        }


def _route(
    dataset: SpatialDataset,
    shard_level: int,
    assigner: LevelAssigner,
    curve: SpaceFillingCurve,
    margin: float,
) -> tuple[dict[int, list[Entity]], list[Entity]]:
    """Split one dataset into cell buckets (keyed by the top ``2k``
    Hilbert key bits) and the residual list of large entities.

    Routing looks at the *margin-expanded* MBR — the same box the join
    algorithms partition on — so a distance predicate's expansion can
    never push an entity across a shard boundary unseen.
    """
    shift = 2 * (curve.order - shard_level)
    cells: dict[int, list[Entity]] = {}
    residual: list[Entity] = []
    for entity in dataset:
        box = entity.mbr if margin == 0.0 else entity.mbr.expanded(margin).clamped()
        if assigner.level(box) >= shard_level:
            prefix = curve.key_of_normalized(*box.center) >> shift
            cells.setdefault(prefix, []).append(entity)
        else:
            residual.append(entity)
    return cells, residual


def plan_shards(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    shard_level: int,
    curve: SpaceFillingCurve | None = None,
    margin: float = 0.0,
) -> ShardPlan:
    """Plan the sharded execution of ``dataset_a`` join ``dataset_b``.

    The plan is a pure function of the inputs and ``shard_level`` —
    independent of how many workers later execute it — so results are
    reproducible across worker counts.  Passing the same object for
    both datasets plans a self join.
    """
    curve = curve or HilbertCurve()
    if not 1 <= shard_level <= curve.order:
        raise ValueError(
            f"shard_level {shard_level} outside [1, {curve.order}]"
        )
    assigner = LevelAssigner(order=curve.order, max_level=curve.order)
    self_join = dataset_a is dataset_b

    cells_a, residual_a = _route(dataset_a, shard_level, assigner, curve, margin)
    if self_join:
        cells_b, residual_b = cells_a, residual_a
    else:
        cells_b, residual_b = _route(dataset_b, shard_level, assigner, curve, margin)

    width = -(-shard_level // 2)  # hex digits covering 2k bits
    tasks: list[ShardTask] = []
    for prefix in sorted(set(cells_a) & set(cells_b)):
        sub_a = SpatialDataset(f"{dataset_a.name}/cell-{prefix:0{width}x}", cells_a[prefix])
        if self_join:
            sub_b = sub_a
        else:
            sub_b = SpatialDataset(
                f"{dataset_b.name}/cell-{prefix:0{width}x}", cells_b[prefix]
            )
        tasks.append(
            ShardTask(
                shard_id=f"cell-{prefix:0{width}x}",
                kind="cell",
                dataset_a=sub_a,
                dataset_b=sub_b,
                self_join=self_join,
            )
        )

    # Residual(A) joins *all* of B (a large A entity may meet any B
    # entity); for a self join this is also where residual-residual
    # and residual-small pairs are found, mirrored pairs included.
    if residual_a and len(dataset_b):
        tasks.append(
            ShardTask(
                shard_id=RESIDUAL_A,
                kind=RESIDUAL_A,
                dataset_a=SpatialDataset(f"{dataset_a.name}/residual", residual_a),
                dataset_b=dataset_b,
            )
        )
    # Small(A) joins residual(B): excluding residual(A) on the left
    # keeps residual-residual pairs from being counted twice.  A self
    # join skips this task — residual(A) join A already covered it.
    if not self_join and residual_b:
        small_a = [
            entity for bucket in (cells_a[p] for p in sorted(cells_a)) for entity in bucket
        ]
        if small_a:
            tasks.append(
                ShardTask(
                    shard_id=RESIDUAL_B,
                    kind=RESIDUAL_B,
                    dataset_a=SpatialDataset(f"{dataset_a.name}/small", small_a),
                    dataset_b=SpatialDataset(f"{dataset_b.name}/residual", residual_b),
                )
            )

    return ShardPlan(
        shard_level=shard_level,
        tasks=tasks,
        routed_a=sum(len(bucket) for bucket in cells_a.values()),
        routed_b=sum(len(bucket) for bucket in cells_b.values()),
        residual_a=len(residual_a),
        residual_b=len(residual_b),
    )
