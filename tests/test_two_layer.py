"""Tests for the two-layer class-based shard planner (ISSUE 8).

Covers the class algebra (every intersecting pair found in exactly one
mini-join), the routed/scheduled/replicated plan accounting, the
largest-first dispatch order with plan-order merge determinism, and
full-run pair-set parity against both the brute-force oracle and the
legacy residual planner across worker counts and execution modes.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.join.dataset import SpatialDataset
from repro.join.predicates import WithinDistance
from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.straggler import analyze_events
from repro.parallel import (
    default_shard_level,
    parallel_spatial_join,
    plan_join,
    plan_shards,
    plan_two_layer,
)

from tests.conftest import brute_force_pairs, brute_force_self_pairs, make_squares

GRID = 16

entity_boxes = st.tuples(
    st.integers(0, GRID - 1), st.integers(0, GRID - 1),
    st.integers(0, GRID), st.integers(0, GRID),
).map(
    lambda t: Rect(
        t[0] / GRID,
        t[1] / GRID,
        (t[0] + min(t[2], GRID - t[0])) / GRID,
        (t[1] + min(t[3], GRID - t[1])) / GRID,
    )
)
box_lists = st.lists(entity_boxes, min_size=1, max_size=25)
# Grid-aligned margins so expanded edges land exactly on tile lines.
margins = st.sampled_from((0.0, 1 / (2 * GRID), 1 / GRID))


def to_dataset(name, boxes, start_eid=0):
    return SpatialDataset(
        name,
        [Entity.from_geometry(start_eid + i, box) for i, box in enumerate(boxes)],
    )


def expanded_mbr(entity, margin):
    return entity.mbr if margin == 0.0 else entity.mbr.expanded(margin).clamped()


def skewed_dataset(name, seed, count=160, large_every=7):
    """~15% large rectangles (which cross level-1 tile lines) among
    small squares — the workload where the legacy residual shard
    becomes the straggler."""
    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        side = (
            rng.uniform(0.3, 0.6)
            if eid % large_every == 0
            else rng.uniform(0.005, 0.02)
        )
        x = rng.uniform(0.0, 1.0 - side)
        y = rng.uniform(0.0, 1.0 - side)
        entities.append(Entity.from_geometry(eid, Rect(x, y, x + side, y + side)))
    return SpatialDataset(name, entities)


def tricky_boxes():
    """Duplicate Hilbert keys, zero-area points on grid lines, and
    boundary-touching boxes — the cases where the presence rule (plain
    ``quantize`` on both corners) earns its keep."""
    return [
        Rect(0.25, 0.25, 0.5, 0.5),        # high edge on the level-1 line
        Rect(0.25, 0.25, 0.5, 0.5),        # duplicate key, duplicate box
        Rect(0.25, 0.25, 0.5, 0.5),
        Rect(0.5, 0.5, 0.5, 0.5),          # zero-area point on a tile corner
        Rect(0.5, 0.25, 0.5, 0.75),        # zero-width segment on the line
        Rect(0.0, 0.5, 1.0, 0.5625),       # wide strip crossing every column
        Rect(0.5, 0.5, 0.75, 0.75),        # starts exactly on the corner
        Rect(0.4375, 0.4375, 0.5, 0.5),    # touches the corner from below
        Rect(0.0, 0.0, 0.0625, 0.0625),
        Rect(0.9375, 0.9375, 1.0, 1.0),
    ]


class TestDefaultShardLevel:
    def test_powers_of_four_are_exact(self):
        # The old float-log implementation put 64 workers at level 4
        # (log(64, 4) -> 2.9999...); the integer version cannot drift.
        for level in range(1, 9):
            workers = 4 ** level
            assert default_shard_level(workers) == level
            assert default_shard_level(workers + 1) == level + 1
        assert default_shard_level(64) == 3
        assert default_shard_level(65) == 4


class TestClassAlgebra:
    @pytest.mark.parametrize("shard_level", (1, 2))
    @given(boxes_a=box_lists, boxes_b=box_lists, margin=margins)
    @settings(max_examples=20, deadline=None)
    def test_every_pair_in_exactly_one_mini_join(
        self, shard_level, boxes_a, boxes_b, margin
    ):
        dataset_a = to_dataset("A", boxes_a)
        dataset_b = to_dataset("B", boxes_b, start_eid=1000)
        plan = plan_two_layer(dataset_a, dataset_b, shard_level, margin=margin)
        assert all(task.kind == "tile" for task in plan.tasks)
        assert plan.residual_a == plan.residual_b == 0
        counts: dict[tuple[int, int], int] = {}
        for task in plan.tasks:
            for mini in task.sub_joins():
                for ea in mini.dataset_a:
                    box_a = expanded_mbr(ea, margin)
                    for eb in mini.dataset_b:
                        if box_a.intersects(expanded_mbr(eb, margin)):
                            key = (ea.eid, eb.eid)
                            counts[key] = counts.get(key, 0) + 1
        oracle = brute_force_pairs(dataset_a, dataset_b, margin=margin)
        assert set(counts) == set(oracle)
        assert all(count == 1 for count in counts.values())

    @given(boxes=box_lists, margin=margins)
    @settings(max_examples=20, deadline=None)
    def test_self_join_collapse_covers_unordered_pairs_once(self, boxes, margin):
        dataset = to_dataset("S", boxes)
        plan = plan_two_layer(dataset, dataset, shard_level=2, margin=margin)
        counts: dict[tuple[int, int], int] = {}
        for task in plan.tasks:
            for mini in task.sub_joins():
                if mini.self_join:
                    entities = list(mini.dataset_a)
                    candidates = [
                        (ea, eb)
                        for i, ea in enumerate(entities)
                        for eb in entities[i + 1 :]
                    ]
                else:
                    candidates = [
                        (ea, eb)
                        for ea in mini.dataset_a
                        for eb in mini.dataset_b
                    ]
                for ea, eb in candidates:
                    if expanded_mbr(ea, margin).intersects(
                        expanded_mbr(eb, margin)
                    ):
                        key = (min(ea.eid, eb.eid), max(ea.eid, eb.eid))
                        counts[key] = counts.get(key, 0) + 1
        oracle = brute_force_self_pairs(dataset, margin=margin)
        assert set(counts) == set(oracle)
        assert all(count == 1 for count in counts.values())

    def test_unknown_planner_rejected(self):
        dataset = make_squares(10, side=0.01, seed=1)
        with pytest.raises(ValueError, match="unknown planner"):
            plan_join(dataset, dataset, 1, planner="grid")

    def test_planner_flag_requires_sharded_run(self):
        dataset = make_squares(10, side=0.01, seed=1)
        with pytest.raises(ValueError, match="sharded"):
            spatial_join(dataset, dataset, planner="two-layer")


class TestPlanAccounting:
    def test_disjoint_prefix_workload_routes_but_schedules_nothing(self):
        # A lives in the lower-left level-1 tile, B in the upper-right:
        # every entity routes to a cell, but no tile hosts both sides,
        # so nothing is scheduled.  The old accounting conflated these.
        boxes_a = [
            Rect(x / GRID, y / GRID, (x + 1) / GRID, (y + 1) / GRID)
            for x in range(0, 7)
            for y in range(0, 7, 2)
        ]
        boxes_b = [
            Rect(x / GRID, y / GRID, (x + 1) / GRID, (y + 1) / GRID)
            for x in range(9, 16)
            for y in range(9, 16, 2)
        ]
        dataset_a = to_dataset("A", boxes_a)
        dataset_b = to_dataset("B", boxes_b, start_eid=1000)
        for plan in (
            plan_shards(dataset_a, dataset_b, 1),
            plan_two_layer(dataset_a, dataset_b, 1),
        ):
            assert not plan.tasks
            assert plan.routed_a == len(dataset_a)
            assert plan.routed_b == len(dataset_b)
            assert plan.scheduled_a == plan.scheduled_b == 0
            assert plan.replicated_a == plan.replicated_b == 0

    @given(boxes_a=box_lists, boxes_b=box_lists)
    @settings(max_examples=15, deadline=None)
    def test_accounting_invariants_hold_for_both_planners(
        self, boxes_a, boxes_b
    ):
        dataset_a = to_dataset("A", boxes_a)
        dataset_b = to_dataset("B", boxes_b, start_eid=1000)
        for planner in ("residual", "two-layer"):
            plan = plan_join(dataset_a, dataset_b, 2, planner=planner)
            scheduled = set()
            references = 0
            for task in plan.tasks:
                eids = {entity.eid for entity in task.dataset_a}
                scheduled |= eids
                references += sum(1 for _ in task.dataset_a)
            assert plan.scheduled_a == len(scheduled)
            assert plan.replicated_a == references - len(scheduled)
            assert plan.scheduled_a <= len(dataset_a)
            described = plan.describe()
            for key in ("routed_a", "scheduled_a", "replicated_a", "residual_a"):
                assert key in described
            assert described["planner"] == planner


class TestDispatchDeterminism:
    def test_dispatch_is_largest_first(self):
        dataset_a = skewed_dataset("A", seed=21)
        dataset_b = skewed_dataset("B", seed=22)
        obs = Observability(events=EventLog())
        parallel_spatial_join(
            dataset_a, dataset_b, workers=2, shard_level=2, obs=obs
        )
        records = [
            event["records"]
            for event in obs.events.to_dicts()
            if event["type"] == "shard_dispatched" and event.get("attempt") == 1
        ]
        assert len(records) > 2
        # Each dispatch takes the largest remaining task, so the
        # first-attempt record sequence is non-increasing.
        assert records == sorted(records, reverse=True)

    @pytest.mark.parametrize("planner", ("residual", "two-layer"))
    def test_merged_metrics_byte_identical_across_worker_counts(self, planner):
        dataset_a = skewed_dataset("A", seed=21, count=90)
        dataset_b = skewed_dataset("B", seed=22, count=90)
        oracle = brute_force_pairs(dataset_a, dataset_b)
        dumps = set()
        for workers in (1, 2, 4):
            result = parallel_spatial_join(
                dataset_a,
                dataset_b,
                workers=workers,
                shard_level=2,
                planner=planner,
            )
            assert result.pairs == oracle
            dumps.add(json.dumps(result.metrics.to_dict(), sort_keys=True))
        assert len(dumps) == 1


class TestTwoLayerOracle:
    @given(boxes_a=box_lists, boxes_b=box_lists, margin=margins)
    @settings(max_examples=10, deadline=None)
    def test_both_planners_match_oracle_in_both_modes(
        self, boxes_a, boxes_b, margin
    ):
        dataset_a = to_dataset("A", boxes_a)
        dataset_b = to_dataset("B", boxes_b, start_eid=1000)
        predicate = WithinDistance(2 * margin) if margin else None
        oracle = brute_force_pairs(dataset_a, dataset_b, margin=margin)
        for planner in ("two-layer", "residual"):
            for mode in ("ledger", "memory"):
                result = parallel_spatial_join(
                    dataset_a,
                    dataset_b,
                    predicate=predicate,
                    workers=1,
                    shard_level=2,
                    planner=planner,
                    mode=mode,
                )
                assert result.pairs == oracle, (planner, mode, margin)

    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("mode", ("ledger", "memory"))
    def test_tricky_workload_multiprocess(self, workers, mode):
        boxes_a = tricky_boxes() + [e.mbr for e in make_squares(40, 0.03, seed=5)]
        boxes_b = tricky_boxes() + [e.mbr for e in make_squares(40, 0.05, seed=6)]
        dataset_a = to_dataset("A", boxes_a)
        dataset_b = to_dataset("B", boxes_b, start_eid=1000)
        oracle = brute_force_pairs(dataset_a, dataset_b)
        for planner in ("two-layer", "residual"):
            result = parallel_spatial_join(
                dataset_a,
                dataset_b,
                workers=workers,
                shard_level=2,
                planner=planner,
                mode=mode,
            )
            assert result.pairs == oracle, planner

    @pytest.mark.parametrize("workers", (1, 2))
    def test_self_join_matches_oracle(self, workers):
        dataset = to_dataset(
            "S", tricky_boxes() + [e.mbr for e in make_squares(50, 0.04, seed=7)]
        )
        oracle = brute_force_self_pairs(dataset)
        for planner in ("two-layer", "residual"):
            result = parallel_spatial_join(
                dataset, dataset, workers=workers, shard_level=2, planner=planner
            )
            assert result.self_join
            assert result.pairs == oracle, planner

    def test_within_distance_multiprocess(self):
        dataset_a = make_squares(80, side=0.01, seed=8, name="A")
        dataset_b = make_squares(80, side=0.01, seed=9, name="B")
        eps = 0.04
        oracle = brute_force_pairs(dataset_a, dataset_b, margin=eps / 2)
        for mode in ("ledger", "memory"):
            result = parallel_spatial_join(
                dataset_a,
                dataset_b,
                predicate=WithinDistance(eps),
                workers=2,
                shard_level=2,
                planner="two-layer",
                mode=mode,
            )
            assert result.pairs == oracle, mode


class TestSkewBalance:
    def test_two_layer_kills_the_residual_straggler(self):
        dataset_a = skewed_dataset("A", seed=31)
        dataset_b = skewed_dataset("B", seed=32)

        def record_imbalance(plan):
            counts = [task.input_records for task in plan.tasks]
            return max(counts) / (sum(counts) / len(counts))

        legacy = plan_shards(dataset_a, dataset_b, 2)
        two_layer = plan_two_layer(dataset_a, dataset_b, 2)
        assert any("residual" in task.kind for task in legacy.tasks)
        assert not any("residual" in task.kind for task in two_layer.tasks)
        assert record_imbalance(two_layer) < record_imbalance(legacy)

    def test_live_run_analytics_at_four_workers(self):
        dataset_a = skewed_dataset("A", seed=31)
        dataset_b = skewed_dataset("B", seed=32)
        oracle = brute_force_pairs(dataset_a, dataset_b)
        analytics = {}
        for planner in ("residual", "two-layer"):
            obs = Observability(events=EventLog())
            result = parallel_spatial_join(
                dataset_a,
                dataset_b,
                workers=4,
                shard_level=2,
                planner=planner,
                obs=obs,
            )
            assert result.pairs == oracle
            analytics[planner] = analyze_events(obs.events.to_dicts())
        assert analytics["residual"].residual_share > 0.0
        assert analytics["two-layer"].residual_share == 0.0
        assert (
            analytics["two-layer"].record_imbalance_factor
            < analytics["residual"].record_imbalance_factor
        )
