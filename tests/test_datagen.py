"""Tests for the workload generators (Table 3)."""

import numpy as np
import pytest

from repro.datagen.cfd import cfd_points
from repro.datagen.paper import (
    PAPER_COVERAGE,
    PAPER_SIZES,
    paper_datasets,
    scaled_count,
    table3_rows,
)
from repro.datagen.shift import shifted_copy
from repro.datagen.tiger import road_segments
from repro.datagen.triangular import triangular_squares
from repro.datagen.uniform import uniform_squares, uniform_squares_by_coverage
from repro.geometry.rect import UNIT_SQUARE
from repro.geometry.shapes import Point, Segment


def inside_unit_square(dataset):
    return all(UNIT_SQUARE.contains(e.mbr) for e in dataset)


class TestUniform:
    def test_count_and_bounds(self):
        ds = uniform_squares(500, 0.05, seed=1)
        assert len(ds) == 500
        assert inside_unit_square(ds)

    def test_all_same_side(self):
        ds = uniform_squares(100, 0.03, seed=2)
        assert all(e.mbr.width == pytest.approx(0.03) for e in ds)

    def test_coverage_targeting(self):
        ds = uniform_squares_by_coverage(2000, 0.9, seed=3)
        assert ds.coverage() == pytest.approx(0.9, rel=0.05)

    def test_deterministic(self):
        a = uniform_squares(50, 0.05, seed=7)
        b = uniform_squares(50, 0.05, seed=7)
        assert [e.mbr for e in a] == [e.mbr for e in b]

    def test_different_seeds_differ(self):
        a = uniform_squares(50, 0.05, seed=7)
        b = uniform_squares(50, 0.05, seed=8)
        assert [e.mbr for e in a] != [e.mbr for e in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_squares(10, 0.0)
        with pytest.raises(ValueError):
            uniform_squares(-1, 0.1)
        with pytest.raises(ValueError):
            uniform_squares_by_coverage(10, 20.0)  # side would exceed 1

    def test_eids_sequential(self):
        ds = uniform_squares(20, 0.1, seed=9)
        assert [e.eid for e in ds] == list(range(20))


class TestTriangular:
    def test_count_and_bounds(self):
        ds = triangular_squares(400, seed=1)
        assert len(ds) == 400
        assert inside_unit_square(ds)

    def test_size_range(self):
        ds = triangular_squares(500, 4.0, 18.0, 19.0, seed=2)
        sides = [e.mbr.width for e in ds]
        assert max(sides) <= 2.0 ** -4.0 + 1e-12
        assert min(sides) >= 2.0 ** -19.0 - 1e-12

    def test_high_size_variability(self):
        ds = triangular_squares(2000, seed=3)
        sides = np.array([e.mbr.width for e in ds])
        assert sides.max() / sides.min() > 1000

    def test_target_coverage(self):
        ds = triangular_squares(2000, seed=4, target_coverage=13.96)
        assert ds.coverage() == pytest.approx(13.96, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            triangular_squares(10, 5.0, 4.0, 6.0)  # mode below min
        with pytest.raises(ValueError):
            triangular_squares(10, target_coverage=-1.0)


class TestTiger:
    def test_count_and_geometry(self):
        ds = road_segments(800, seed=1)
        assert len(ds) == 800
        assert all(isinstance(e.geometry, Segment) for e in ds)
        assert inside_unit_square(ds)

    def test_segments_are_short(self):
        ds = road_segments(500, segment_length=0.004, seed=2)
        assert all(e.geometry.length <= 0.004 + 1e-9 for e in ds)

    def test_clustering(self):
        """Road data is clustered: the busiest decile of a 10x10 grid
        holds far more than 10% of the segments."""
        ds = road_segments(2000, towns=5, seed=3)
        counts = np.zeros((10, 10))
        for e in ds:
            cx, cy = e.mbr.center
            counts[min(int(cx * 10), 9), min(int(cy * 10), 9)] += 1
        top_decile = np.sort(counts.ravel())[-10:].sum()
        assert top_decile / len(ds) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            road_segments(10, towns=0)
        with pytest.raises(ValueError):
            road_segments(10, segment_length=0.6)


class TestCFD:
    def test_count_and_geometry(self):
        ds = cfd_points(3000, seed=1)
        assert len(ds) == 3000
        assert all(isinstance(e.geometry, Point) for e in ds)
        assert inside_unit_square(ds)

    def test_extreme_skew(self):
        """Most points concentrate near the airfoil at mid-space."""
        ds = cfd_points(5000, seed=2)
        near = sum(
            1
            for e in ds
            if 0.35 < e.mbr.center[0] < 0.65 and 0.4 < e.mbr.center[1] < 0.6
        )
        assert near / len(ds) > 0.8

    def test_far_field_exists(self):
        ds = cfd_points(5000, far_fraction=0.1, seed=3)
        far = sum(1 for e in ds if e.mbr.center[0] < 0.2 or e.mbr.center[0] > 0.8)
        assert far > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            cfd_points(10, wall_offset=0.5, far_field=0.4)
        with pytest.raises(ValueError):
            cfd_points(10, far_fraction=1.5)


class TestShiftedCopy:
    def test_center_becomes_lower_left(self):
        """Section 5.2.1's definition of the primed data sets."""
        ds = uniform_squares(100, 0.04, seed=1)
        shifted = shifted_copy(ds)
        for original, moved in zip(ds, shifted):
            has_room = (
                original.mbr.xhi + original.mbr.width / 2 <= 1.0
                and original.mbr.yhi + original.mbr.height / 2 <= 1.0
            )
            if has_room:
                cx, cy = original.mbr.center
                assert moved.mbr.xlo == pytest.approx(cx)
                assert moved.mbr.ylo == pytest.approx(cy)
            assert moved.mbr.width == pytest.approx(original.mbr.width)

    def test_stays_in_unit_square(self):
        ds = uniform_squares(200, 0.1, seed=2)
        assert inside_unit_square(shifted_copy(ds))

    def test_geometry_shifted_too(self):
        ds = road_segments(50, seed=3)
        shifted = shifted_copy(ds)
        for original, moved in zip(ds, shifted):
            assert isinstance(moved.geometry, Segment)
            assert moved.geometry.length == pytest.approx(
                original.geometry.length, abs=1e-9
            )

    def test_name(self):
        ds = uniform_squares(10, 0.1, seed=4, name="LB")
        assert shifted_copy(ds).name == "LB'"


class TestPaperCatalog:
    def test_all_seven_datasets(self):
        datasets = paper_datasets(scale=0.02)
        assert set(datasets) == set(PAPER_SIZES)

    def test_scaled_counts(self):
        assert scaled_count("UN1", 0.1) == 10_000
        assert scaled_count("LB", 1.0) == 53_145
        assert scaled_count("UN1", 0.00001) == 100  # floor

    def test_coverage_matches_table3(self):
        """Coverage is scale-invariant and matches Table 3."""
        datasets = paper_datasets(scale=0.05)
        for name in ("UN1", "UN2", "UN3", "TR"):
            assert datasets[name].coverage() == pytest.approx(
                PAPER_COVERAGE[name], rel=0.1
            ), name
        for name in ("LB", "MG"):
            assert datasets[name].coverage() == pytest.approx(
                PAPER_COVERAGE[name], rel=0.25
            ), name

    def test_subset_generation(self):
        datasets = paper_datasets(scale=0.02, only=("TR",))
        assert set(datasets) == {"TR"}

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_datasets(scale=0.0)

    def test_table3_rows_structure(self):
        rows = table3_rows(scale=0.02)
        assert len(rows) == 7
        assert all({"name", "size", "coverage"} <= set(r) for r in rows)
