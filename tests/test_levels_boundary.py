"""Boundary semantics of ``Level()``/``cell_of`` and the vectorized
bit-length kernel.

The adversarial inputs here are grid-aligned, boundary-touching, and
degenerate (zero-area) MBRs — exactly where closed-interval semantics
(`cells are closed; boundary contact counts`) diverge from the naive
exclusive quantization.  Every property is cross-checked against a
brute-force restatement of the paper's definitions that shares no
arithmetic with the implementation under test.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.filtertree.levels import LevelAssigner, _bit_lengths
from repro.geometry.rect import Rect

ORDER = 10
assigner = LevelAssigner(order=ORDER, max_level=ORDER)

# Dyadic grid coordinates k / 2^g with g <= ORDER: exactly representable
# as binary floats, and every value lies on a filter line of some level.
grid_coords = st.integers(1, ORDER).flatmap(
    lambda g: st.integers(0, 1 << g).map(lambda k: k / (1 << g))
)
any_coords = st.one_of(
    grid_coords, st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
)


def rects(coords):
    return st.tuples(coords, coords, coords, coords).map(
        lambda c: Rect(
            min(c[0], c[2]), min(c[1], c[3]), max(c[0], c[2]), max(c[1], c[3])
        )
    )


def brute_level(rect: Rect) -> int:
    """The paper's ``Level()`` restated as a search: the largest level
    whose (exclusively quantized) grid leaves both corners of each
    dimension in the same cell."""
    qx_lo, qx_hi = assigner.quantize(rect.xlo), assigner.quantize(rect.xhi)
    qy_lo, qy_hi = assigner.quantize(rect.ylo), assigner.quantize(rect.yhi)
    for level in range(assigner.max_level, -1, -1):
        shift = ORDER - level
        if qx_lo >> shift == qx_hi >> shift and qy_lo >> shift == qy_hi >> shift:
            return level
    return 0


def closed_cell_fit(rect: Rect, level: int) -> tuple[int, int] | None:
    """The level-``level`` closed grid cell geometrically containing the
    rect, or None if no single cell does."""
    cells = 1 << level
    width = 1.0 / cells
    cx = min(int(rect.xlo * cells), cells - 1)
    cy = min(int(rect.ylo * cells), cells - 1)
    if rect.xhi <= (cx + 1) * width and rect.yhi <= (cy + 1) * width:
        return (cx, cy)
    return None


class TestLevelBoundarySemantics:
    @given(rects(any_coords))
    def test_level_matches_brute_force(self, rect):
        assert assigner.level(rect) == brute_level(rect)

    @given(rects(grid_coords))
    def test_level_matches_brute_force_on_grid(self, rect):
        assert assigner.level(rect) == brute_level(rect)

    @given(grid_coords, grid_coords)
    def test_degenerate_point_hits_max_level(self, x, y):
        assert assigner.level(Rect.point(x, y)) == assigner.max_level

    def test_boundary_touching_hi_corner_stays_coarse(self):
        """``level()`` keeps *exclusive* hi-corner quantization: an MBR
        whose high edge lies exactly on a filter line is assigned the
        coarser level.  The parallel planner's shard-disjointness proof
        relies on this, so it must not inherit cell_of's closed-cell
        semantics."""
        assert assigner.level(Rect(0.25, 0.0, 0.5, 0.25)) == 0
        assert assigner.level(Rect(0.0, 0.25, 0.25, 0.5)) == 0

    @given(rects(grid_coords))
    def test_vectorized_levels_match_scalar(self, rect):
        batch = assigner.levels(
            np.array([rect.xlo]),
            np.array([rect.ylo]),
            np.array([rect.xhi]),
            np.array([rect.yhi]),
        )
        assert int(batch[0]) == assigner.level(rect)


class TestCellOfClosedSemantics:
    @given(rects(any_coords))
    def test_own_level_never_raises(self, rect):
        level = assigner.level(rect)
        cx, cy = assigner.cell_of(rect, level)
        side = assigner.cell_side(level)
        assert cx * side <= rect.xlo and cy * side <= rect.ylo

    @given(rects(grid_coords), st.integers(0, ORDER))
    def test_matches_geometric_closed_fit(self, rect, level):
        """``cell_of`` succeeds exactly when the rect fits one *closed*
        cell, and returns that cell."""
        fit = closed_cell_fit(rect, level)
        if fit is None:
            with pytest.raises(ValueError):
                assigner.cell_of(rect, level)
        else:
            assert assigner.cell_of(rect, level) == fit

    def test_hi_corner_on_grid_line_fits_cell_below(self):
        """The bug this PR fixes: xhi exactly on a grid line used to
        quantize into the next cell, making cell_of reject an MBR that
        fits its closed cell."""
        rect = Rect(0.25, 0.25, 0.5, 0.5)  # hi corner on the 2^1 line
        assert assigner.cell_of(rect, 1) == (0, 0)
        assert assigner.cell_of(rect, 2) == (1, 1)

    @given(grid_coords, grid_coords, st.integers(0, ORDER))
    def test_point_on_grid_lines_never_raises(self, x, y, level):
        """A degenerate point always fits one closed cell at every
        level, even when it sits on a grid corner shared by four."""
        point = Rect.point(x, y)
        cx, cy = assigner.cell_of(point, level)
        side = assigner.cell_side(level)
        assert cx * side <= x <= (cx + 1) * side
        assert cy * side <= y <= (cy + 1) * side

    @given(grid_coords, grid_coords, grid_coords, st.integers(0, ORDER))
    def test_degenerate_segment_on_grid_line(self, x, y1, y2, level):
        """Zero-width vertical segments lying on a grid line fit the
        closed cell left of the line whenever their extent allows."""
        ylo, yhi = min(y1, y2), max(y1, y2)
        rect = Rect(x, ylo, x, yhi)
        fit = closed_cell_fit(rect, level)
        if fit is not None:
            assert assigner.cell_of(rect, level) == fit

    def test_straddling_rect_still_raises(self):
        with pytest.raises(ValueError, match="spans multiple"):
            assigner.cell_of(Rect(0.24, 0.0, 0.26, 0.1), 2)


class TestQuantizeHi:
    def test_endpoints(self):
        assert assigner.quantize_hi(0.0) == 0
        assert assigner.quantize_hi(1.0) == assigner.side - 1

    @given(st.integers(1, (1 << ORDER)))
    def test_grid_line_belongs_to_cell_below(self, k):
        assert assigner.quantize_hi(k / assigner.side) == k - 1

    @given(st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False))
    def test_off_grid_matches_quantize(self, coord):
        scaled = coord * assigner.side
        if scaled != int(scaled):
            assert assigner.quantize_hi(coord) == assigner.quantize(coord)

    @given(st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False))
    def test_at_most_one_below_quantize(self, coord):
        low, high = assigner.quantize_hi(coord), assigner.quantize(coord)
        assert low in (high, high - 1) or high == assigner.side - 1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            assigner.quantize_hi(-0.01)
        with pytest.raises(ValueError):
            assigner.quantize_hi(1.01)


class TestBitLengths:
    @given(st.lists(st.integers(0, 2**63 - 1), max_size=50))
    def test_matches_int_bit_length(self, values):
        result = _bit_lengths(np.array(values, dtype=np.int64))
        assert result.dtype == np.int64
        assert result.tolist() == [value.bit_length() for value in values]

    def test_powers_of_two_boundaries(self):
        values = [0, 1]
        for exp in range(1, 63):
            values.extend([(1 << exp) - 1, 1 << exp, (1 << exp) + 1])
        result = _bit_lengths(np.array(values, dtype=np.int64))
        assert result.tolist() == [value.bit_length() for value in values]

    def test_int64_max(self):
        assert _bit_lengths(np.array([2**63 - 1])).tolist() == [63]

    def test_empty_array(self):
        assert _bit_lengths(np.array([], dtype=np.int64)).shape == (0,)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            _bit_lengths(np.array([3, -1]))

    def test_preserves_input(self):
        values = np.array([5, 1024, 0], dtype=np.int64)
        _bit_lengths(values)
        assert values.tolist() == [5, 1024, 0]

    def test_2d_shape(self):
        grid = np.array([[0, 1], [255, 256]], dtype=np.int64)
        assert _bit_lengths(grid).tolist() == [[0, 1], [8, 9]]
