"""Tests for Size Separation Spatial Join."""

import pytest

from repro.core.s3j import SizeSeparationSpatialJoin
from repro.curves import GrayCurve, HilbertCurve, ZOrderCurve
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import brute_force_pairs, brute_force_self_pairs, make_squares


def run_s3j(dataset_a, dataset_b, buffer_pages=32, **params):
    with StorageManager(StorageConfig(buffer_pages=buffer_pages)) as storage:
        file_a = dataset_a.write_descriptors(storage, "in-a")
        file_b = dataset_b.write_descriptors(storage, "in-b")
        storage.phase_boundary()
        storage.stats.reset()
        algo = SizeSeparationSpatialJoin(storage, **params)
        return algo.join(file_a, file_b, self_join=dataset_a is dataset_b)


class TestCorrectness:
    def test_matches_brute_force(self):
        a = make_squares(300, 0.03, seed=1, name="A")
        b = make_squares(300, 0.05, seed=2, name="B")
        result = run_s3j(a, b)
        assert result.pairs == brute_force_pairs(a, b)

    def test_self_join_canonical(self):
        a = make_squares(250, 0.04, seed=3)
        result = run_s3j(a, a)
        assert result.pairs == brute_force_self_pairs(a)

    def test_empty_inputs(self):
        a = make_squares(0, 0.1, seed=4, name="A")
        b = make_squares(50, 0.1, seed=5, name="B")
        assert run_s3j(a, b).pairs == frozenset()

    def test_mixed_sizes(self):
        """Entities spanning many levels (the algorithm's core case)."""
        big = make_squares(30, 0.4, seed=6, name="big")
        small = make_squares(300, 0.01, seed=7, name="small")
        result = run_s3j(big, small)
        assert result.pairs == brute_force_pairs(big, small)

    @pytest.mark.parametrize("curve_cls", [HilbertCurve, ZOrderCurve, GrayCurve])
    def test_any_recursive_curve_works(self, curve_cls):
        """Section 3.1: 'any curve that recursively subdivides the
        space will work'."""
        a = make_squares(200, 0.03, seed=8, name="A")
        b = make_squares(200, 0.05, seed=9, name="B")
        result = run_s3j(a, b, curve=curve_cls())
        assert result.pairs == brute_force_pairs(a, b)

    def test_precomputed_hilbert_same_result(self):
        a = make_squares(150, 0.04, seed=10, name="A")
        b = make_squares(150, 0.04, seed=11, name="B")
        with StorageManager(StorageConfig(buffer_pages=32)) as storage:
            curve = HilbertCurve()
            file_a = a.write_descriptors(storage, "in-a", curve=curve)
            file_b = b.write_descriptors(storage, "in-b", curve=curve)
            storage.phase_boundary()
            storage.stats.reset()
            algo = SizeSeparationSpatialJoin(storage, hilbert_precomputed=True)
            result = algo.join(file_a, file_b)
            assert result.pairs == brute_force_pairs(a, b)
            # No hilbert CPU charged when values are precomputed.
            assert "hilbert" not in storage.stats.total.cpu_ops


class TestNoReplication:
    def test_level_files_hold_each_entity_once(self):
        a = make_squares(400, 0.05, seed=12, name="A")
        b = make_squares(400, 0.05, seed=13, name="B")
        result = run_s3j(a, b)
        assert sum(result.metrics.details["levels_a"].values()) == 400
        assert sum(result.metrics.details["levels_b"].values()) == 400
        assert result.metrics.replication_a == 1.0
        assert result.metrics.replication_b == 1.0

    def test_phase_names(self):
        a = make_squares(100, 0.05, seed=14)
        result = run_s3j(a, a)
        assert result.metrics.phase_names == ("partition", "sort", "join")
        assert set(result.metrics.phases) == {"partition", "sort", "join"}


class TestIOBehavior:
    def test_partition_io_matches_equation1(self):
        """Partition phase: 2 S_A + 2 S_B page transfers (equation 1)."""
        a = make_squares(850, 0.02, seed=15, name="A")   # 10 pages
        b = make_squares(1700, 0.02, seed=16, name="B")  # 20 pages
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            algo = SizeSeparationSpatialJoin(storage)
            algo.join(file_a, file_b)
            partition = storage.stats.phases["partition"]
            expected = 2 * (file_a.num_pages + file_b.num_pages)
            # Page-boundary rounding of level files adds a little slack.
            assert partition.total_ios == pytest.approx(expected, rel=0.25)

    def test_join_reads_each_sorted_page_once(self):
        a = make_squares(850, 0.02, seed=17, name="A")
        b = make_squares(850, 0.02, seed=18, name="B")
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            algo = SizeSeparationSpatialJoin(storage)
            result = algo.join(file_a, file_b)
            levels_a = result.metrics.details["levels_a"]
            levels_b = result.metrics.details["levels_b"]
            per_page = storage.descriptors_per_page()
            sorted_pages = sum(
                -(-count // per_page)
                for count in list(levels_a.values()) + list(levels_b.values())
            )
            join = storage.stats.phases["join"]
            # Result-file appends hit the buffered tail page; the only
            # physical reads are the sorted level files, once each.
            assert join.page_reads == sorted_pages

    def test_total_io_within_best_and_worst_case(self):
        """Equations 5 and 6 bound the total page I/O."""
        from repro.costmodel.s3j import s3j_best_case_io, s3j_worst_case_io

        a = make_squares(1700, 0.03, seed=19, name="A")
        b = make_squares(1700, 0.03, seed=20, name="B")
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            algo = SizeSeparationSpatialJoin(storage)
            result = algo.join(file_a, file_b)
            result_pages = result.metrics.details["result_pages"]
            total = result.metrics.total_ios
            best = s3j_best_case_io(file_a.num_pages, file_b.num_pages, result_pages)
            worst = s3j_worst_case_io(
                file_a.num_pages, file_b.num_pages, 64, result_pages
            )
            # Rounding of level files to page boundaries adds slack on
            # top of the analytic best case.
            assert best * 0.9 <= total <= worst * 1.3


class TestDSBIntegration:
    def test_dsb_does_not_change_result(self):
        a = make_squares(300, 0.03, seed=21, name="A")
        b = make_squares(300, 0.03, seed=22, name="B")
        plain = run_s3j(a, b)
        filtered = run_s3j(a, b, dsb_level=6)
        assert plain.pairs == filtered.pairs

    @pytest.mark.parametrize("mode", ["precise", "fast"])
    def test_dsb_filters_selective_join(self, mode):
        """Disjoint data spaces: DSB should filter most of B out."""
        left = make_squares(300, 0.02, seed=23, name="left")
        # Shift into the left half only.
        for entity in left.entities:
            pass  # entities already uniform; build a disjoint B instead
        right_entities = make_squares(300, 0.02, seed=24, name="right")
        result = run_s3j(left, right_entities, dsb_level=6, dsb_mode=mode)
        assert result.pairs == brute_force_pairs(left, right_entities)

    def test_dsb_reduces_level_file_sizes(self):
        """With disjoint inputs, nearly all of B is filtered before the
        sort phase (r_B < 1 — the paper's filtering capability)."""
        import random

        from repro.geometry.entity import Entity
        from repro.geometry.rect import Rect
        from repro.join.dataset import SpatialDataset

        rng = random.Random(25)
        left = SpatialDataset(
            "left",
            [
                Entity.from_geometry(
                    i, Rect(x := rng.uniform(0, 0.38), y := rng.uniform(0, 0.95), x + 0.02, y + 0.02)
                )
                for i in range(300)
            ],
        )
        right = SpatialDataset(
            "right",
            [
                Entity.from_geometry(
                    i, Rect(x := rng.uniform(0.6, 0.93), y := rng.uniform(0, 0.95), x + 0.02, y + 0.02)
                )
                for i in range(300)
            ],
        )
        result = run_s3j(left, right, dsb_level=6)
        assert result.pairs == frozenset()
        assert result.metrics.details["dsb_filtered"] > 250
        assert result.metrics.replication_b < 0.2
