"""The shifted-copy transform producing LB' and MG'.

Section 5.2.1: "the center of each spatial entity in the original data
set is taken as the position of the lower left corner of an entity of
the same size in the new data set" — i.e. every entity is translated
by half its MBR extent in +x and +y.
"""

from __future__ import annotations

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.geometry.shapes import Point, Polygon, Segment
from repro.join.dataset import SpatialDataset


def shifted_copy(dataset: SpatialDataset, name: str | None = None) -> SpatialDataset:
    """The paper's primed data sets (LB -> LB', MG -> MG')."""
    entities = [_shift_entity(entity) for entity in dataset.entities]
    return SpatialDataset(
        name or f"{dataset.name}'",
        entities,
        description=f"shifted copy of {dataset.name}",
    )


def _shift_entity(entity: Entity) -> Entity:
    mbr = entity.mbr
    dx = mbr.width / 2
    dy = mbr.height / 2
    # Keep the shifted entity inside the unit square.
    dx = min(dx, 1.0 - mbr.xhi)
    dy = min(dy, 1.0 - mbr.yhi)
    new_mbr = Rect(mbr.xlo + dx, mbr.ylo + dy, mbr.xhi + dx, mbr.yhi + dy)
    geometry = _shift_geometry(entity.geometry, dx, dy)
    return Entity(entity.eid, new_mbr, geometry)


def _shift_geometry(geometry, dx: float, dy: float):
    if geometry is None:
        return None
    if isinstance(geometry, Point):
        return Point(geometry.x + dx, geometry.y + dy)
    if isinstance(geometry, Segment):
        return Segment(
            geometry.x1 + dx, geometry.y1 + dy, geometry.x2 + dx, geometry.y2 + dy
        )
    if isinstance(geometry, Polygon):
        return Polygon(tuple((x + dx, y + dy) for x, y in geometry.vertices))
    if isinstance(geometry, Rect):
        return Rect(
            geometry.xlo + dx, geometry.ylo + dy, geometry.xhi + dx, geometry.yhi + dy
        )
    raise TypeError(f"unsupported geometry type: {type(geometry).__name__}")
