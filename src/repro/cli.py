"""Command-line interface.

Six subcommands::

    python -m repro.cli join --algorithm s3j --workload UN1-UN2
    python -m repro.cli report run.json [--html out.html]
    python -m repro.cli table3 [--scale 0.2]
    python -m repro.cli table4 [--scale 0.2] [--only TR,CFD] [--json]
    python -m repro.cli verify [--quick] [--json]
    python -m repro.cli serve [--entities 500] [--port 7077]

`join` runs one algorithm on one of the paper's evaluation workloads
and prints the phase breakdown; `--report PATH` additionally writes a
machine-readable :class:`~repro.obs.report.RunReport` (``-`` prints the
JSON to stdout instead of the human-readable summary),
`--trace PATH` writes a Chrome ``chrome://tracing`` trace-event file,
and `--events PATH` streams the structured execution event log to a
JSONL file live (``tail -f`` it while the run is in flight).  All
artifact paths are validated up front — a bad combination (``--trace
-``, a missing parent directory, two flags writing the same file)
exits 2 with a clear message *before* the join runs.

`report` renders a saved RunReport: the terminal view (phase table,
shard Gantt lanes, straggler analytics) and, with ``--html``, a
self-contained HTML report.  `table3` and `table4` regenerate the
paper's tables; ``table4 --json`` emits the rows as JSON.  `verify`
runs the differential correctness harness (:mod:`repro.verify`) —
every registered algorithm plus a sharded run, cross-checked against
the brute-force oracle under metamorphic transforms and ledger
invariants — and exits non-zero on any divergence.

Fault tolerance (DESIGN.md section 11): ``join --retry-attempts`` /
``--retry-backoff`` install the retrying storage layer,
``join --inject-crash cell-0 --workers 2`` kills a shard's first worker
attempt to exercise recovery, and ``verify --chaos --cases N`` reruns
the harness under N sampled fault plans asserting the
correct/typed-failure/partial trichotomy.

The long-lived service (DESIGN.md section 15): `serve` starts the
JSON-lines TCP front-end over a resident :class:`PersistentIndex`
(incremental inserts/deletes, background compaction, admission control,
circuit breaker), and ``verify --service`` replays interleaved
queries/mutations against the cold-batch oracle at every index epoch.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.curves.base import DEFAULT_ORDER
from repro.datagen.paper import default_scale, table3_rows
from repro.experiments.runner import run_algorithm
from repro.experiments.table4 import format_table4, table4_rows
from repro.experiments.workloads import WORKLOADS, workload_by_name
from repro.join.api import available_algorithms
from repro.obs import Observability
from repro.parallel.planner import PLANNERS


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (worker counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1 (got {value})"
        )
    return value


def _shard_level(text: str) -> int:
    """argparse type: a Filter-Tree shard level within the curve order."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if not 1 <= value <= DEFAULT_ORDER:
        raise argparse.ArgumentTypeError(
            f"shard level must be between 1 and {DEFAULT_ORDER} "
            f"(the curve order), got {value}"
        )
    return value


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="entity-count scale factor (default: REPRO_SCALE env or 0.2)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the three subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Size Separation Spatial Join (SIGMOD 1997) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    join = commands.add_parser("join", help="run one join experiment")
    join.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="s3j",
    )
    join.add_argument(
        "--workload",
        choices=[w.name for w in WORKLOADS],
        default="UN1-UN2",
    )
    join.add_argument(
        "--tiles", type=int, default=None, help="PBSM tiles per dimension"
    )
    join.add_argument(
        "--mode",
        choices=("ledger", "memory"),
        default="ledger",
        help="execution engine: the simulated-I/O ledger model (default) "
        "or the vectorized in-memory fast path (s3j only)",
    )
    join.add_argument(
        "--backend",
        choices=("memory", "disk", "durable"),
        default="memory",
        help="physical page store of ledger mode: in-process (default), "
        "plain files, or the WAL-backed crash-consistent store; the "
        "simulated ledger is byte-identical across all three",
    )
    join.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="directory for the disk/durable backend's files "
        "(default: a temporary directory)",
    )
    join.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="run the join sharded by Hilbert range on N worker processes",
    )
    join.add_argument(
        "--shard-level",
        type=_shard_level,
        default=None,
        help="Filter-Tree level k of the 4^k shard grid (default: from --workers)",
    )
    join.add_argument(
        "--planner",
        choices=PLANNERS,
        default=None,
        help="shard planner of a sharded run: two-layer class-based "
        "mini-joins (default) or the legacy cells + residual decomposition",
    )
    join.add_argument(
        "--retry-attempts",
        type=_positive_int,
        default=None,
        metavar="N",
        help="install a retrying storage layer with N attempts per I/O",
    )
    join.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base backoff of the retry layer (simulated; default 0.005)",
    )
    join.add_argument(
        "--inject-crash",
        default=None,
        metavar="SHARDS",
        help="comma-separated shard ids whose first worker attempt dies "
        "(e.g. cell-0); needs --workers > 1 or --shard-level",
    )
    join.add_argument(
        "--crash-attempts",
        type=_positive_int,
        default=1,
        metavar="N",
        help="with --inject-crash: kill the first N attempts of each "
        "listed shard (N > retry budget leaves the shard dead)",
    )
    join.add_argument(
        "--partial-results",
        action="store_true",
        help="on a sharded run, return the completed shards' pairs when "
        "some shards stay dead (declared partial; exits non-zero)",
    )
    join.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a machine-readable RunReport JSON ('-' for stdout)",
    )
    join.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event file (open in chrome://tracing)",
    )
    join.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="stream the structured event log to a JSONL file live "
        "(tail -f it to watch shard lifecycle while the run is in flight)",
    )
    _add_scale(join)

    report = commands.add_parser(
        "report", help="render a saved RunReport (terminal and/or HTML)"
    )
    report.add_argument("path", help="RunReport JSON written by join --report")
    report.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="additionally write a self-contained HTML report",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit a compact machine-readable summary instead of the "
        "terminal view",
    )

    table3 = commands.add_parser("table3", help="regenerate Table 3")
    _add_scale(table3)

    verify = commands.add_parser(
        "verify", help="run the differential correctness harness"
    )
    verify.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration: 3 workloads, 4 transforms",
    )
    verify.add_argument(
        "--chaos",
        action="store_true",
        help="chaos mode: rerun the harness under sampled fault plans "
        "and assert the correct/typed-failure/partial trichotomy",
    )
    verify.add_argument(
        "--cross-mode",
        action="store_true",
        help="cross-mode parity: run every workload through ledger mode "
        "and memory mode (serial and sharded) and require identical "
        "pair sets, all equal to the brute-force oracle",
    )
    verify.add_argument(
        "--service",
        action="store_true",
        help="service mode: replay interleaved queries/inserts/deletes "
        "through the long-lived join service and require oracle-equal "
        "answers at every index epoch (with injected read faults)",
    )
    verify.add_argument(
        "--crash",
        action="store_true",
        help="crash mode: SIGKILL a real child process at sampled WAL "
        "offsets, reopen the durable store, and require oracle-exact "
        "recovered answers (--cases sampled kill points)",
    )
    verify.add_argument(
        "--cases",
        type=_positive_int,
        default=25,
        metavar="N",
        help="number of sampled fault scenarios in chaos mode (default 25)",
    )
    verify.add_argument(
        "--ops",
        type=_positive_int,
        default=60,
        metavar="N",
        help="number of replayed operations in service mode (default 60)",
    )
    verify.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: the mode's roster)",
    )
    verify.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names (default: all registered)",
    )
    verify.add_argument(
        "--transforms",
        default=None,
        help="comma-separated metamorphic transform names",
    )
    verify.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="worker count of the sharded executor runs (default: 2)",
    )
    verify.add_argument(
        "--seed", type=int, default=0, help="workload generation seed"
    )
    verify.add_argument(
        "--no-minimize",
        action="store_true",
        help="report raw divergences without shrinking counterexamples",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the summary",
    )

    serve = commands.add_parser(
        "serve", help="run the long-lived join service (JSON-lines TCP)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0: pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--entities",
        type=_positive_int,
        default=500,
        help="size of the uniform bootstrap dataset (default 500)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="bootstrap dataset seed"
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="QPS",
        help="token-bucket admission rate in queries/second "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=8,
        metavar="N",
        help="concurrent query admission limit (default 8)",
    )
    serve.add_argument(
        "--compaction-threshold",
        type=_positive_int,
        default=None,
        metavar="N",
        help="delta records that trigger background compaction "
        "(default 256)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable index directory: created and bootstrapped on "
        "first use, reopened (bootstrap dataset ignored) when it "
        "already holds an index — the service survives restarts",
    )

    table4 = commands.add_parser("table4", help="regenerate Table 4")
    table4.add_argument(
        "--only",
        default=None,
        help="comma-separated workload names (default: all six)",
    )
    table4.add_argument(
        "--json",
        action="store_true",
        help="emit the rows as JSON instead of the formatted table",
    )
    _add_scale(table4)

    return parser


def _validate_output_paths(args: argparse.Namespace) -> str | None:
    """Check join's artifact flags before running anything.

    ``--report -`` means "JSON to stdout", but a trace or event stream
    has nowhere sensible to go on stdout next to it; and a typo'd
    directory should fail *before* minutes of join work, not after.
    Returns an error message, or None when the combination is valid.
    """
    seen: dict[str, str] = {}
    for flag, path in (
        ("--report", args.report),
        ("--trace", args.trace),
        ("--events", args.events),
    ):
        if path is None:
            continue
        if path == "-":
            if flag != "--report":
                return (
                    f"{flag} cannot write to stdout ('-'); give it a file path"
                )
            continue
        parent = os.path.dirname(path) or "."
        if not os.path.isdir(parent):
            return (
                f"{flag}: parent directory {parent!r} does not exist "
                f"(create it first)"
            )
        if os.path.isdir(path):
            return f"{flag}: {path!r} is a directory"
        resolved = os.path.abspath(path)
        if resolved in seen:
            return (
                f"{seen[resolved]} and {flag} both write to {path!r}; "
                f"give them distinct paths"
            )
        seen[resolved] = flag
    return None


def cmd_join(args: argparse.Namespace) -> int:
    """Run one algorithm on one evaluation workload."""
    error = _validate_output_paths(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scale = args.scale if args.scale is not None else default_scale()
    workload = workload_by_name(args.workload)
    dataset_a, dataset_b = workload.datasets(scale)
    params = {}
    if args.tiles is not None:
        if args.algorithm != "pbsm":
            print("--tiles only applies to pbsm", file=sys.stderr)
            return 2
        params["tiles_per_dim"] = args.tiles
    if args.mode == "memory":
        if args.algorithm != "s3j":
            print("--mode memory implements s3j only", file=sys.stderr)
            return 2
        if (
            args.retry_attempts is not None
            or args.retry_backoff is not None
            or args.inject_crash
        ):
            print(
                "--retry-*/--inject-crash are storage-layer knobs; "
                "--mode memory has no storage to wrap",
                file=sys.stderr,
            )
            return 2
        if args.backend != "memory" or args.data_dir is not None:
            print(
                "--backend/--data-dir are storage-layer knobs; "
                "--mode memory has no storage to configure",
                file=sys.stderr,
            )
            return 2
    if args.data_dir is not None and args.backend == "memory":
        print("--data-dir needs --backend disk or durable", file=sys.stderr)
        return 2
    if args.data_dir is not None and (
        args.workers > 1 or args.shard_level is not None
    ):
        print(
            "--data-dir names one store; sharded workers each need their "
            "own (omit it to give every worker a temporary directory)",
            file=sys.stderr,
        )
        return 2
    if args.partial_results:
        if args.workers == 1 and args.shard_level is None:
            print(
                "--partial-results needs a sharded run "
                "(--workers > 1 or --shard-level)",
                file=sys.stderr,
            )
            return 2
        params["partial_results"] = True
    if args.planner is not None:
        if args.workers == 1 and args.shard_level is None:
            print(
                "--planner selects the shard decomposition; it needs a "
                "sharded run (--workers > 1 or --shard-level)",
                file=sys.stderr,
            )
            return 2
        params["planner"] = args.planner
    retry = None
    if args.retry_attempts is not None or args.retry_backoff is not None:
        from repro.faults import RetryPolicy

        retry = RetryPolicy(
            max_attempts=args.retry_attempts or 3,
            base_backoff_s=(
                args.retry_backoff if args.retry_backoff is not None else 0.005
            ),
        )
    fault_plan = None
    if args.inject_crash:
        if args.workers == 1 and args.shard_level is None:
            print(
                "--inject-crash needs a sharded run "
                "(--workers > 1 or --shard-level)",
                file=sys.stderr,
            )
            return 2
        from repro.faults import FaultPlan

        fault_plan = FaultPlan(
            crash_shards=tuple(args.inject_crash.split(",")),
            crash_attempts=args.crash_attempts,
        )
    obs = None
    event_log = None
    if args.report or args.trace or args.events:
        from repro.obs.events import EventLog

        event_log = EventLog(stream_path=args.events)
        obs = Observability(events=event_log)
    from repro.faults.errors import ShardExecutionError

    try:
        run = run_algorithm(
            dataset_a,
            dataset_b,
            args.algorithm,
            predicate=workload.predicate(),
            scale=scale,
            obs=obs,
            workers=args.workers,
            shard_level=args.shard_level,
            mode=args.mode,
            backend=args.backend,
            data_dir=args.data_dir,
            retry=retry,
            fault_plan=fault_plan,
            **params,
        )
    except ShardExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "hint: --partial-results returns the completed shards' pairs "
            "as a declared-partial result",
            file=sys.stderr,
        )
        return 1
    finally:
        if event_log is not None:
            event_log.close()
            if args.events:
                print(f"events    : {args.events}", file=sys.stderr)
    metrics = run.result.metrics
    if args.report == "-":
        # Pure JSON on stdout: no human-readable summary mixed in.
        print(run.report.to_json())
    else:
        print(f"workload  : {workload.name} (figure {workload.figure}, scale {scale})")
        print(f"algorithm : {args.algorithm}")
        if args.mode != "ledger":
            print(f"mode      : {args.mode}")
        if args.backend != "memory":
            print(f"backend   : {args.backend}")
        if metrics.details.get("parallel"):
            plan = metrics.details["plan"]
            if plan.get("planner") == "two-layer":
                decomposition = (
                    f"{plan['cells']} tiles, {plan['mini_joins']} mini-joins"
                )
            else:
                decomposition = (
                    f"{plan['cells']} cells + residual, "
                    f"{plan['tasks']} sub-joins"
                )
            print(
                f"sharding  : {args.workers} workers, level "
                f"{plan['shard_level']} [{plan.get('planner', 'residual')}] "
                f"({decomposition})"
            )
        print(f"pairs     : {len(run.result.pairs):,}")
        print(f"page I/Os : {metrics.total_ios:,}")
        print(f"r_A / r_B : {metrics.replication_a:.2f} / {metrics.replication_b:.2f}")
        print("phases    :")
        for phase, seconds in metrics.breakdown().items():
            print(f"  {phase:<10} {seconds:8.2f} s")
        print(f"total     : {metrics.response_time:8.2f} s (simulated)")
        if not run.result.complete:
            # A declared-partial result is loud in the human output too,
            # not only in the report JSON.
            failures = run.result.failures
            print(f"FAILURES  : {len(failures)} shard(s) incomplete — "
                  "pairs above cover completed shards only")
            for failure in failures:
                print(
                    f"  {failure.shard_id:<12} {failure.error_type} "
                    f"after {failure.attempts} attempt(s): {failure.message}"
                )
        if args.report:
            run.report.save(args.report)
            print(f"report    : {args.report}", file=sys.stderr)
    if args.trace:
        from repro.obs.fileio import atomic_write_json

        atomic_write_json(args.trace, obs.tracer.to_chrome_trace(), indent=None)
        print(f"trace     : {args.trace}", file=sys.stderr)
    if not run.result.complete:
        print(
            f"error: {len(run.result.failures)} shard(s) failed; "
            "result is partial",
            file=sys.stderr,
        )
        return 3
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a saved RunReport as terminal timeline and/or HTML."""
    from repro.obs.render import render_report, summary_dict
    from repro.obs.report import RunReport

    try:
        report = RunReport.load(args.path)
    except FileNotFoundError:
        print(f"error: no such report: {args.path}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        print(
            f"error: {args.path} is not a RunReport JSON: {error}",
            file=sys.stderr,
        )
        return 2
    if args.html is not None:
        parent = os.path.dirname(args.html) or "."
        if not os.path.isdir(parent):
            print(
                f"error: --html: parent directory {parent!r} does not exist",
                file=sys.stderr,
            )
            return 2
    if args.json:
        print(json.dumps(summary_dict(report), indent=2, sort_keys=True))
    else:
        print(render_report(report), end="")
    if args.html is not None:
        from repro.obs.html import write_html_report

        write_html_report(report, args.html)
        print(f"html      : {args.html}", file=sys.stderr)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the differential correctness harness; non-zero on failure."""
    from repro.verify import (
        cases_by_name,
        default_executors,
        run_chaos,
        run_cross_mode,
        run_service_verify,
        run_verify,
        transforms_by_name,
    )

    if args.cross_mode:
        try:
            cases = (
                cases_by_name(tuple(args.workloads.split(",")), seed=args.seed)
                if args.workloads
                else None
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        report = run_cross_mode(
            cases=cases,
            worker_counts=tuple(dict.fromkeys((1, args.workers))),
            seed=args.seed,
            progress=lambda message: print(message, file=sys.stderr),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 0 if report.ok else 1

    if args.crash:
        from repro.verify.crash import run_crash_verify

        report = run_crash_verify(
            cases=args.cases,
            seed=args.seed,
            progress=lambda message: print(message, file=sys.stderr),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 0 if report.ok else 1

    if args.service:
        report = run_service_verify(
            seed=args.seed,
            ops=args.ops,
            progress=lambda message: print(message, file=sys.stderr),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 0 if report.ok else 1

    if args.chaos:
        report = run_chaos(
            cases=args.cases,
            seed=args.seed,
            progress=lambda message: print(message, file=sys.stderr),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 0 if report.ok else 1

    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else None
    try:
        cases = (
            cases_by_name(tuple(args.workloads.split(",")), seed=args.seed)
            if args.workloads
            else None
        )
        transforms = (
            transforms_by_name(tuple(args.transforms.split(",")))
            if args.transforms
            else None
        )
        executors = default_executors(
            algorithms=algorithms, worker_counts=(args.workers,)
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = run_verify(
        quick=args.quick,
        cases=cases,
        transforms=transforms,
        executors=executors,
        minimize=not args.no_minimize,
        seed=args.seed,
        progress=lambda message: print(message, file=sys.stderr),
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived join service until interrupted."""
    import asyncio

    from repro.datagen.uniform import uniform_squares
    from repro.service import (
        JoinService,
        PersistentIndex,
        ServiceConfig,
        ServiceServer,
    )

    try:
        config = ServiceConfig(
            max_inflight=args.max_inflight, rate=args.rate
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    dataset = uniform_squares(
        args.entities, 0.04, seed=args.seed, name="SERVE"
    )
    index_params = {}
    if args.compaction_threshold is not None:
        index_params["compaction_threshold"] = args.compaction_threshold
    entities = dataset.entities
    if args.data_dir is not None:
        from repro.service.index import SNAPSHOT_FILE

        index_params["data_dir"] = args.data_dir
        if os.path.exists(os.path.join(args.data_dir, SNAPSHOT_FILE)):
            # Reopening an existing durable index: the bootstrap
            # dataset is for first boot only.
            entities = []

    async def run() -> None:
        with PersistentIndex(entities, **index_params) as index:
            server = ServiceServer(JoinService(index, config), args.host, args.port)
            host, port = await server.start()
            print(
                f"serving {len(index)} entities on {host}:{port} "
                f"(JSON-lines; ops: point window join insert delete stats)",
                file=sys.stderr,
            )
            try:
                await server.serve_forever()
            finally:
                await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; service stopped", file=sys.stderr)
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    """Print the regenerated Table 3."""
    rows = table3_rows(args.scale)
    print(f"{'Name':<6}{'Size':>9}{'Coverage':>10}{'Paper':>8}  Type")
    for row in rows:
        print(
            f"{row['name']:<6}{row['size']:>9,}{row['coverage']:>10.3f}"
            f"{row['paper_coverage']:>8}  {row['type']}"
        )
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    """Print the regenerated Table 4."""
    only = tuple(args.only.split(",")) if args.only else None
    rows = table4_rows(args.scale, only=only)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_table4(rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "join": cmd_join,
        "report": cmd_report,
        "table3": cmd_table3,
        "table4": cmd_table4,
        "verify": cmd_verify,
        "serve": cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
