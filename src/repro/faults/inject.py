"""The fault-injecting storage backend.

:class:`FaultInjectingBackend` wraps any
:class:`~repro.storage.backend.StorageBackend` and consults a
:class:`~repro.faults.plan.FaultPlan` on every read, write, and rename:

- **transient** — raise :class:`TransientIOError` *before* touching the
  inner backend (nothing is persisted; a retry can succeed);
- **permanent** — raise :class:`PermanentIOError`, likewise before any
  side effect;
- **torn** (writes only) — persist only a *prefix* of the page's
  records to the inner backend and return as if the write succeeded,
  exactly like a power cut mid-write.  The wrapper remembers what the
  page *should* contain; the next physical read of that page detects
  the mismatch and raises :class:`TornWriteError`.  A later full
  rewrite of the page heals it.

Torn-write detection is what keeps the chaos trichotomy honest: a
partially persisted page can never silently flow into a wrong answer —
it either stays cached (the in-memory copy is correct), gets
overwritten, or fails loudly on read.

Each injected fault charges ``plan.latency_ops`` counted
``fault_latency`` CPU operations to the ledger (when one is attached),
so injected latency is priced into simulated response time, and bumps
the ``faults.injected`` observability counter.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.errors import (
    PermanentIOError,
    TornWriteError,
    TransientIOError,
)
from repro.faults.plan import FaultPlan, InjectionLog
from repro.storage.backend import Record, StorageBackend
from repro.storage.records import RecordCodec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.iostats import IOStats

_Fingerprint = tuple[tuple, ...]


def _fingerprint(records: list[Record]) -> _Fingerprint:
    return tuple(tuple(record) for record in records)


class FaultInjectingBackend(StorageBackend):
    """Wrap a backend, injecting the faults a :class:`FaultPlan` chose."""

    def __init__(
        self,
        inner: StorageBackend,
        plan: FaultPlan,
        stats: IOStats | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.stats = stats
        self.metrics = metrics
        self.log = InjectionLog()
        self._rng = random.Random(plan.seed) if plan.seed is not None else None
        # Torn pages only, keyed by (file, page): what the caller asked
        # to persist when the torn write fired.  An entry means the
        # on-medium page is known-partial; a later full write heals it.
        self._shadow: dict[tuple[str, int], _Fingerprint] = {}

    # -- the injection decision -----------------------------------------

    def _decide(self, op: str, file_name: str) -> str | None:
        """The fault kind to inject on this call, or None."""
        index = self.log.calls[op] = self.log.calls[op] + 1
        for rule in self.plan.schedule:
            if rule.fires(op, index, file_name):
                return rule.kind
        if self._rng is None:
            return None
        draw = self._rng.random()  # one draw per call: stream is stable
        plan = self.plan
        if (
            plan.max_faults is not None
            and self.log.total_injected >= plan.max_faults
        ):
            return None
        if op == "read":
            if draw < plan.transient_read_rate:
                return "transient"
            if draw < plan.transient_read_rate + plan.permanent_rate:
                return "permanent"
        elif op == "write":
            threshold = plan.transient_write_rate
            if draw < threshold:
                return "transient"
            threshold += plan.torn_write_rate
            if draw < threshold:
                return "torn"
            if draw < threshold + plan.permanent_rate:
                return "permanent"
        else:  # rename
            if draw < plan.transient_write_rate:
                return "transient"
            if draw < plan.transient_write_rate + plan.permanent_rate:
                return "permanent"
        return None

    def _inject(self, op: str, file_name: str, detail: str) -> str | None:
        kind = self._decide(op, file_name)
        if kind is None:
            return None
        self.log.injected[kind] += 1
        if self.stats is not None and self.plan.latency_ops:
            self.stats.charge_cpu("fault_latency", self.plan.latency_ops)
        if self.metrics is not None:
            self.metrics.count("faults.injected", op=op, kind=kind)
        index = self.log.calls[op]
        if kind == "transient":
            raise TransientIOError(
                f"injected transient {op} failure at {op} #{index} ({detail})"
            )
        if kind == "permanent":
            raise PermanentIOError(
                f"injected permanent {op} failure at {op} #{index} ({detail})"
            )
        return kind  # "torn": the caller simulates the partial persist

    # -- StorageBackend -------------------------------------------------

    def create_file(self, name: str, codec: RecordCodec, page_size: int) -> None:
        self.inner.create_file(name, codec, page_size)

    def delete_file(self, name: str) -> None:
        self.inner.delete_file(name)
        for key in [k for k in self._shadow if k[0] == name]:
            del self._shadow[key]

    def rename_file(self, old: str, new: str) -> None:
        self._inject("rename", old, f"{old!r} -> {new!r}")
        self.inner.rename_file(old, new)
        for key in [k for k in self._shadow if k[0] == old]:
            self._shadow[(new, key[1])] = self._shadow.pop(key)

    def read_page(self, name: str, page_no: int) -> list[Record]:
        self._inject("read", name, f"{name!r} page {page_no}")
        records = self.inner.read_page(name, page_no)
        expected = self._shadow.get((name, page_no))
        if expected is not None and _fingerprint(records) != expected:
            if self.metrics is not None:
                self.metrics.count("faults.torn_detected")
            raise TornWriteError(
                f"torn write detected: {name!r} page {page_no} holds "
                f"{len(records)} record(s), the last write intended "
                f"{len(expected)}"
            )
        return records

    def write_page(self, name: str, page_no: int, records: list[Record]) -> None:
        kind = self._inject("write", name, f"{name!r} page {page_no}")
        if kind == "torn":
            # A power-cut write: a prefix reaches the medium, but the
            # caller is told nothing went wrong.  Remember the intended
            # contents so the next physical read fails loudly.
            self.inner.write_page(name, page_no, records[: len(records) // 2])
            self._shadow[(name, page_no)] = _fingerprint(records)
            return
        self.inner.write_page(name, page_no, records)
        self._shadow.pop((name, page_no), None)  # a full write heals the page

    def sync(self) -> None:
        self.inner.sync()

    def close(self) -> None:
        self.inner.close()
