"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.algorithm == "s3j"
        assert args.workload == "UN1-UN2"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--algorithm", "nested"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--workload", "XYZ"])


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "UN1" in out and "CFD" in out

    def test_join_runs(self, capsys):
        assert main(
            ["join", "--workload", "UN1-UN2", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "pairs" in out and "partition" in out

    def test_join_pbsm_with_tiles(self, capsys):
        assert main(
            [
                "join",
                "--workload",
                "UN1-UN2",
                "--algorithm",
                "pbsm",
                "--tiles",
                "8",
                "--scale",
                "0.02",
            ]
        ) == 0
        assert "r_A / r_B" in capsys.readouterr().out

    def test_tiles_rejected_for_s3j(self, capsys):
        assert main(["join", "--tiles", "8", "--scale", "0.02"]) == 2

    def test_table4_single_workload(self, capsys):
        assert main(["table4", "--only", "UN1-UN2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "UN1-UN2" in out
