"""The in-memory S3J: size separation over columnar arrays.

Same structure as the ledger-mode algorithm (partition by Filter-Tree
level, order by Hilbert key, join nested cells) but executed as NumPy
array passes with no storage simulation:

- **partition** — vectorized level classification and Hilbert-cell
  assignment (the PR 1 batched kernels via
  :class:`~repro.fastpath.columnar.ColumnarDataset`);
- **sort** — one ``np.lexsort`` per input grouping entities by
  ``(effective level, cell prefix)`` and ordering each group by ``xlo``;
- **join** — a forward-sweep kernel (:mod:`repro.fastpath.sweep`) per
  pair of *nested* cells.

Cell nesting replaces the synchronized scan: levels are capped at a
*cell level* ``K`` (so the grid stays coarse enough for groups to have
work in them), and two entities can only intersect when one's
``(level, prefix)`` cell is an ancestor of — or equal to — the other's.
That holds because ``level()`` places every box strictly inside a
half-open grid cell (PR 4's closed-interval semantics: boxes touching a
grid line get a coarser level), and half-open cells of any two levels
are either nested or disjoint.  Group pairs are therefore enumerated by
*ancestor lookups only* — at most ``K+1`` dictionary probes per group,
never a descendant enumeration.

The returned :class:`~repro.join.result.JoinResult` carries Table-2
compatible metrics: the same three phases as ledger S3J with honest CPU
operation counts (level/hilbert/compare/mbr_test) priced by the default
cost model, zero simulated I/O, and ``details["mode"] == "memory"``.
"""

from __future__ import annotations

import math

from repro.curves.base import SpaceFillingCurve
from repro.fastpath.columnar import ColumnarDataset
from repro.fastpath.sweep import forward_sweep_pairs
from repro.join.dataset import SpatialDataset
from repro.join.metrics import JoinMetrics
from repro.join.predicates import Intersects, JoinPredicate
from repro.join.result import JoinResult, canonical_pairs
from repro.obs import NULL_OBS, Observability
from repro.obs.events import progress_emitter
from repro.storage.costs import CostModel, sort_comparison_count
from repro.storage.iostats import PhaseStats

import numpy as np

DEFAULT_CELL_OCCUPANCY = 128
"""Target entities per occupied cell when auto-picking the cell level."""

PHASE_NAMES = ("partition", "sort", "join")
"""Memory mode reports the same Table 2 phases as ledger-mode S3J."""


def default_cell_level(
    count: int, max_level: int, occupancy: int = DEFAULT_CELL_OCCUPANCY
) -> int:
    """Cell level ``K`` targeting ``occupancy`` entities per cell: a
    ``2^K`` grid has ``4^K`` cells, so ``K = floor(log4(n/occupancy))``,
    clamped to ``[0, max_level]``."""
    if count <= occupancy:
        return 0
    return max(0, min(max_level, int(math.log(count / occupancy, 4))))


class _Groups:
    """One input's entities bucketed by ``(effective level, cell prefix)``.

    ``order`` sorts the input by ``(eff, prefix, xlo)``; groups are the
    contiguous runs of equal ``(eff, prefix)``, so each group's slice is
    already in ``xlo`` order — exactly what the sweep kernel needs.
    """

    def __init__(self, col: ColumnarDataset, cell_level: int) -> None:
        eff = np.minimum(col.level, cell_level)
        prefix = col.key >> (2 * (col.order - eff))
        order = np.lexsort((col.xlo, prefix, eff))
        self.eid = col.eid[order]
        self.xlo = col.xlo[order]
        self.ylo = col.ylo[order]
        self.xhi = col.xhi[order]
        self.yhi = col.yhi[order]
        eff_s = eff[order]
        pre_s = prefix[order]
        if len(eff_s):
            change = np.flatnonzero(
                (eff_s[1:] != eff_s[:-1]) | (pre_s[1:] != pre_s[:-1])
            )
            self.starts = np.concatenate(([0], change + 1))
            self.stops = np.concatenate((self.starts[1:], [len(eff_s)]))
        else:
            self.starts = np.empty(0, dtype=np.int64)
            self.stops = np.empty(0, dtype=np.int64)
        self.eff = eff_s[self.starts]
        self.prefix = pre_s[self.starts]
        self.lookup = {
            (int(level), int(pre)): idx
            for idx, (level, pre) in enumerate(zip(self.eff, self.prefix))
        }
        self.levels = sorted({int(level) for level in self.eff})

    def __len__(self) -> int:
        return len(self.starts)

    def slice(self, idx: int) -> tuple[np.ndarray, ...]:
        lo, hi = int(self.starts[idx]), int(self.stops[idx])
        return (
            self.eid[lo:hi],
            self.xlo[lo:hi],
            self.ylo[lo:hi],
            self.xhi[lo:hi],
            self.yhi[lo:hi],
        )


def _nested_group_pairs(
    groups_a: _Groups, groups_b: _Groups, self_join: bool
) -> list[tuple[int, int]]:
    """All ``(a_group, b_group)`` index pairs whose cells nest.

    Loop 1 finds, for each A group, every B group at an equal-or-
    coarser level whose cell contains it; loop 2 finds, for each B
    group, every *strictly* coarser A group — together covering each
    nested pair exactly once.  A self join keeps loop 1 only (the pair
    set is symmetric and canonicalization folds the mirror images).
    """
    pairs: list[tuple[int, int]] = []
    for ga in range(len(groups_a)):
        la, pa = int(groups_a.eff[ga]), int(groups_a.prefix[ga])
        for lb in groups_b.levels:
            if lb > la:
                break
            gb = groups_b.lookup.get((lb, pa >> (2 * (la - lb))))
            if gb is not None:
                pairs.append((ga, gb))
    if self_join:
        return pairs
    for gb in range(len(groups_b)):
        lb, pb = int(groups_b.eff[gb]), int(groups_b.prefix[gb])
        for la in groups_a.levels:
            if la >= lb:
                break
            ga = groups_a.lookup.get((la, pb >> (2 * (lb - la))))
            if ga is not None:
                pairs.append((ga, gb))
    return pairs


def memory_spatial_join(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    predicate: JoinPredicate | None = None,
    refine: bool = False,
    obs: Observability | None = None,
    curve: SpaceFillingCurve | None = None,
    max_level: int = 16,
    cell_level: int | None = None,
) -> JoinResult:
    """Run S3J entirely in memory and return a standard ``JoinResult``.

    Produces the exact candidate pair set of the ledger mode (the
    cross-mode parity gate in :mod:`repro.verify.crossmode` holds this
    to the oracle suite): both modes expand MBRs by the predicate's
    margin with the same expressions before filtering.

    ``cell_level`` caps how deep cells go (default: auto from input
    size); ``curve``/``max_level`` mirror the ledger algorithm's
    parameters so metamorphic transforms apply to both modes.
    """
    from repro.curves.hilbert import HilbertCurve
    from repro.filtertree.levels import LevelAssigner

    predicate = predicate or Intersects()
    obs = obs or NULL_OBS
    tracer = obs.tracer
    self_join = dataset_a is dataset_b
    curve = curve or HilbertCurve()
    assigner = LevelAssigner(
        order=curve.order, max_level=min(max_level, curve.order)
    )
    margin = predicate.mbr_margin

    phases = {name: PhaseStats() for name in PHASE_NAMES}
    with tracer.span(
        "memory_join", algorithm="s3j", mode="memory", self_join=self_join
    ) as root:
        with tracer.span("partition", kind="phase"):
            col_a = ColumnarDataset.from_dataset(
                dataset_a, margin=margin, curve=curve, assigner=assigner
            )
            col_b = (
                col_a
                if self_join
                else ColumnarDataset.from_dataset(
                    dataset_b, margin=margin, curve=curve, assigner=assigner
                )
            )
            classified = len(col_a) + (0 if self_join else len(col_b))
            phases["partition"].charge_cpu("level", classified)
            phases["partition"].charge_cpu("hilbert", classified)

        if cell_level is None:
            cell_level = default_cell_level(
                max(len(col_a), len(col_b)), assigner.max_level
            )
        elif not 0 <= cell_level <= assigner.max_level:
            raise ValueError(
                f"cell_level {cell_level} outside [0, {assigner.max_level}]"
            )

        with tracer.span("sort", kind="phase"):
            groups_a = _Groups(col_a, cell_level)
            groups_b = groups_a if self_join else _Groups(col_b, cell_level)
            comparisons = sort_comparison_count(len(col_a))
            if not self_join:
                comparisons += sort_comparison_count(len(col_b))
            phases["sort"].charge_cpu("compare", comparisons)

        with tracer.span("join", kind="phase") as span:
            eids_a: list[np.ndarray] = []
            eids_b: list[np.ndarray] = []
            candidates = 0
            group_pairs = _nested_group_pairs(groups_a, groups_b, self_join)
            on_progress = progress_emitter(
                obs.events, "join", len(group_pairs),
                every=max(1, len(group_pairs) // 8),
            )
            for done, (ga, gb) in enumerate(group_pairs, start=1):
                aeid, axlo, aylo, axhi, ayhi = groups_a.slice(ga)
                beid, bxlo, bylo, bxhi, byhi = groups_b.slice(gb)
                ia, ib = forward_sweep_pairs(axlo, axhi, bxlo, bxhi)
                candidates += len(ia)
                keep = (aylo[ia] <= byhi[ib]) & (bylo[ib] <= ayhi[ia])
                eids_a.append(aeid[ia[keep]])
                eids_b.append(beid[ib[keep]])
                if on_progress is not None:
                    on_progress(done, f"cells:{ga}x{gb}")
            phases["join"].charge_cpu("mbr_test", candidates)
            if eids_a:
                raw = list(
                    zip(
                        np.concatenate(eids_a).tolist(),
                        np.concatenate(eids_b).tolist(),
                    )
                )
            else:
                raw = []
            pairs = canonical_pairs(raw, self_join)
            span.set(candidates=candidates, pairs=len(pairs))

        metrics = JoinMetrics(
            algorithm="s3j",
            phase_names=PHASE_NAMES,
            phases=phases,
            cost_model=CostModel(),
            details={
                "mode": "memory",
                "cell_level": cell_level,
                "candidates": candidates,
                "groups_a": len(groups_a),
                "groups_b": len(groups_b),
                "levels_a": _level_histogram(col_a),
                "levels_b": _level_histogram(col_b),
            },
        )
        result = JoinResult(pairs=pairs, metrics=metrics, self_join=self_join)
        if refine:
            with tracer.span("refine", kind="refine"):
                entities_a = dataset_a.entity_by_id()
                entities_b = (
                    entities_a if self_join else dataset_b.entity_by_id()
                )
                result.refine(predicate, entities_a, entities_b)
        root.set(candidate_pairs=len(result.pairs))
    return result


def _level_histogram(col: ColumnarDataset) -> dict[int, int]:
    """Entity count per Filter-Tree level (ledger ``levels_*`` detail)."""
    levels, counts = np.unique(col.level, return_counts=True)
    return {int(level): int(count) for level, count in zip(levels, counts)}
