"""Space-filling curves.

S3J sorts level files by the Hilbert value of each entity's MBR center
(section 3.1).  The paper notes that "any curve that recursively
subdivides the space will work (e.g., z-order, gray code curve, etc)";
all three are provided behind one interface so the choice can be
ablated.

Every curve here has the *prefix property* the synchronized scan
depends on: the top ``2*l`` bits of a point's key identify the level-``l``
grid cell containing it, and each level-``l`` cell is one contiguous key
range.
"""

from repro.curves.base import SpaceFillingCurve, curve_by_name
from repro.curves.gray import GrayCurve
from repro.curves.hilbert import HilbertCurve
from repro.curves.zorder import ZOrderCurve

__all__ = [
    "GrayCurve",
    "HilbertCurve",
    "SpaceFillingCurve",
    "ZOrderCurve",
    "curve_by_name",
]
