"""Spatial Hash Join (Lo & Ravishankar, SIGMOD 1996).

The algorithm of the paper's figure 3:

1. Compute the number of partitions (the authors' slot count — larger
   than PBSM's, section 4.1.3).
2. Sample data set A; the sampled objects' centers seed the partitions.
3. Scan A, assigning each entity to the partition with the nearest
   center (the nearest-center heuristic of [LR95]); the partition's MBR
   expands to contain the entity, moving its center.  **No replication
   in A.**
4. Scan B, recording each entity in every partition whose (final) MBR
   it overlaps — replication happens here; entities overlapping no
   partition are filtered out.
5. Join each partition pair by building an in-memory R-tree on the A
   partition and probing it with the B partition's entities; partitions
   too big for memory fall back to blockwise processing.

No duplicate elimination is needed (a given A entity lives in exactly
one partition, so a pair can only be found once) — Table 2's "Sort:
none" row.
"""

from __future__ import annotations

import math
import random

from repro.core.partition import (
    DEFAULT_BATCH_SIZE,
    partition_nearest_center,
    partition_overlaps,
)
from repro.geometry.rect import Rect
from repro.join.base import SpatialJoinAlgorithm
from repro.join.metrics import JoinMetrics
from repro.rtree.rtree import RTree
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, XHI, XLO, YHI, YLO, CandidatePairCodec


def suggested_partitions(
    pages_a: int, memory_pages: int, multiplier: float = 10.0
) -> int:
    """The slot-count heuristic standing in for the [LR95] formula.

    Lo & Ravishankar size slots so each partition pair fits comfortably
    in memory; the paper notes their count is "much larger than the
    number used for PBSM" (section 4.1.3).  We model it as
    ``multiplier * S_A / M``, with a multiplier of 10 by default (see
    DESIGN.md substitutions), capped at ``M - 4`` because a one-pass
    partitioning step needs an input buffer (plus slack) besides one
    output buffer per partition, or the buffer pool thrashes.
    """
    target = math.ceil(multiplier * pages_a / memory_pages)
    return max(2, min(target, memory_pages - 4))


class _Partition:
    """One SHJ partition: its seed-derived center and its growing MBR."""

    __slots__ = ("mbr", "count")

    def __init__(self, cx: float, cy: float) -> None:
        self.mbr = Rect(cx, cy, cx, cy)
        self.count = 0

    @property
    def center(self) -> tuple[float, float]:
        return self.mbr.center

    def absorb(self, mbr: Rect) -> None:
        self.mbr = self.mbr.union(mbr)
        self.count += 1


class SpatialHashJoin(SpatialJoinAlgorithm):
    """SHJ.

    Parameters
    ----------
    storage:
        The storage manager to run against.
    num_partitions:
        Override for the slot count (heuristic formula by default).
    partition_multiplier:
        Multiplier of the slot-count heuristic.
    seed:
        RNG seed for the sampling step (deterministic experiments).
    rtree_fanout:
        Node capacity of the per-partition R-trees.
    batch_size:
        Records per block of the batched partition passes
        (:mod:`repro.core.partition`); ``None`` selects the scalar
        reference paths.  Both produce bit-identical partition files
        and ledger counts.
    """

    name = "shj"
    phase_names = ("partition", "join")

    def __init__(
        self,
        storage: StorageManager,
        num_partitions: int | None = None,
        partition_multiplier: float = 10.0,
        seed: int = 0,
        rtree_fanout: int = 32,
        sample_factor: int = 3,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(storage)
        if sample_factor < 1:
            raise ValueError("sample_factor must be at least 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive (or None for scalar)")
        self.num_partitions = num_partitions
        self.partition_multiplier = partition_multiplier
        self.seed = seed
        self.rtree_fanout = rtree_fanout
        self.sample_factor = sample_factor
        self.batch_size = batch_size

    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        target = self.num_partitions or suggested_partitions(
            input_a.num_pages, self.storage.memory_pages, self.partition_multiplier
        )

        with self._phase("partition"):
            partitions = self._sample_seeds(input_a, target)
            files_a = self._partition_a(input_a, partitions)
            # The A tails are complete: push them out now (one
            # sequential write each — they'd be written at the phase
            # boundary anyway) instead of leaving dirty pages whose
            # eviction during the B scan would depend on LRU recency
            # order (see repro.core.partition's parity invariant).
            for handle in files_a.values():
                handle.flush()
            files_b, written_b, filtered_b = self._partition_b(input_b, partitions)
            self.storage.phase_boundary()

        pairs: set[tuple[int, int]] = set()
        result = self.storage.create_file(
            self._file_name("result"), CandidatePairCodec()
        )
        overflowed = 0
        events = self.obs.events
        with self._phase("join"):
            for index in range(len(partitions)):
                overflowed += self._join_pair(
                    files_a.get(index), files_b.get(index), result, pairs
                )
                if events.enabled:
                    events.emit(
                        "shard_progress", phase="join", done=index + 1,
                        total=len(partitions), detail=f"P{index}",
                        pairs=len(pairs),
                    )
            self.storage.phase_boundary()

        metrics = self._build_metrics(
            num_partitions=len(partitions),
            filtered_b=filtered_b,
            overflowed_pairs=overflowed,
            result_pages=result.num_pages,
        )
        metrics.replication_a = 1.0  # SHJ never replicates the first input
        if input_b.num_records:
            metrics.replication_b = written_b / input_b.num_records
        return pairs, metrics

    # -- sampling -------------------------------------------------------------

    def _sample_seeds(self, source: PagedFile, target: int) -> list[_Partition]:
        """Random page reads of A; sampled objects' centers seed the
        partitions (the ``cD`` random I/O term of equation 16).

        Following [LR95], several candidate objects are sampled per
        slot (``sample_factor``, the equation's integer ``c``); the
        seeds are then drawn from the candidate pool, which spreads
        them better than one draw per slot.
        """
        if source.num_pages == 0:
            return []
        rng = random.Random(self.seed)
        count = min(self.sample_factor * target, source.num_pages)
        page_numbers = rng.sample(range(source.num_pages), count)
        candidates = []
        for page_no in page_numbers:
            records = source.read_page(page_no)  # a random, counted read
            # Drop the frame: whether a sampled page happens to survive
            # in the pool until the sequential scan reaches it depends
            # on eviction churn, and the ledger must not (see
            # repro.core.partition's parity invariant).
            source.pool.release(source.name, page_no)
            record = records[rng.randrange(len(records))]
            cx = (record[XLO] + record[XHI]) / 2
            cy = (record[YLO] + record[YHI]) / 2
            candidates.append((cx, cy))
        chosen = rng.sample(candidates, min(target, len(candidates)))
        return [_Partition(cx, cy) for cx, cy in chosen]

    # -- partitioning -----------------------------------------------------------

    def _partition_a(
        self, source: PagedFile, partitions: list[_Partition]
    ) -> dict[int, PagedFile]:
        """Assign every A entity to the partition with the nearest
        center, expanding that partition's MBR (no replication).
        Dispatches to the batched pass unless ``batch_size`` is None;
        the scalar loop below is the parity reference."""
        if self.batch_size is not None and source.num_pages > 0:
            return partition_nearest_center(
                source,
                storage=self.storage,
                partitions=partitions,
                namer=lambda index: self._file_name(f"A-P{index}"),
                batch_size=self.batch_size,
            )
        stats = self.storage.stats
        files: dict[int, PagedFile] = {}
        for record in source.scan():
            stats.charge_cpu("partition", max(1, len(partitions)))
            mbr = Rect(record[XLO], record[YLO], record[XHI], record[YHI])
            cx, cy = mbr.center
            index = min(
                range(len(partitions)),
                key=lambda i: _sqdist(partitions[i].center, cx, cy),
            )
            partitions[index].absorb(mbr)
            handle = files.get(index)
            if handle is None:
                handle = self.storage.create_file(self._file_name(f"A-P{index}"))
                files[index] = handle
            handle.append(record)
        return files

    def _partition_b(
        self, source: PagedFile, partitions: list[_Partition]
    ) -> tuple[dict[int, PagedFile], int, int]:
        """Record every B entity in each partition whose MBR it
        overlaps (replication); filter entities overlapping none.
        Dispatches to the batched pass unless ``batch_size`` is None;
        the scalar loop below is the parity reference."""
        if self.batch_size is not None:
            return partition_overlaps(
                source,
                storage=self.storage,
                partitions=partitions,
                namer=lambda index: self._file_name(f"B-P{index}"),
                batch_size=self.batch_size,
            )
        stats = self.storage.stats
        files: dict[int, PagedFile] = {}
        written = 0
        filtered = 0
        for record in source.scan():
            stats.charge_cpu("partition", max(1, len(partitions)))
            mbr = Rect(record[XLO], record[YLO], record[XHI], record[YHI])
            matched = False
            for index, partition in enumerate(partitions):
                if partition.count and partition.mbr.intersects(mbr):
                    matched = True
                    handle = files.get(index)
                    if handle is None:
                        handle = self.storage.create_file(
                            self._file_name(f"B-P{index}")
                        )
                        files[index] = handle
                    handle.append(record)
                    written += 1
            if not matched:
                filtered += 1
        return files, written, filtered

    # -- joining -------------------------------------------------------------------

    def _join_pair(
        self,
        file_a: PagedFile | None,
        file_b: PagedFile | None,
        result: PagedFile,
        pairs: set[tuple[int, int]],
    ) -> int:
        """Join one partition pair: R-tree on A's side, probe with B's.

        When the A partition exceeds memory, it is processed in memory-
        sized blocks, rescanning B for each block (the analysis's
        nested-loops fallback, equation 19).  Returns 1 when the pair
        overflowed memory.
        """
        if file_a is None or file_b is None:
            return 0
        if file_a.num_records == 0 or file_b.num_records == 0:
            return 0
        stats = self.storage.stats
        memory = self.storage.memory_pages
        block_pages = max(1, memory - 1)
        overflowed = int(file_a.num_pages > block_pages)

        for block_start in range(0, file_a.num_pages, block_pages):
            tree = RTree(max_entries=self.rtree_fanout, stats=stats)
            block_end = min(block_start + block_pages, file_a.num_pages)
            for page_no in range(block_start, block_end):
                for record in file_a.read_page(page_no):
                    tree.insert(
                        Rect(record[XLO], record[YLO], record[XHI], record[YHI]),
                        record,
                    )
            for record_b in file_b.scan():
                window = Rect(
                    record_b[XLO], record_b[YLO], record_b[XHI], record_b[YHI]
                )
                for record_a in tree.search(window):
                    stats.charge_cpu("mbr_test")
                    pair = (record_a[EID], record_b[EID])
                    pairs.add(pair)
                    result.append(pair)
        self.storage.drop_file(file_a.name)
        self.storage.drop_file(file_b.name)
        return overflowed


def _sqdist(center: tuple[float, float], x: float, y: float) -> float:
    dx = center[0] - x
    dy = center[1] - y
    return dx * dx + dy * dy
