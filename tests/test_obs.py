"""Tests for the observability subsystem (repro.obs).

The hard invariant is at the bottom: tracing and metrics are pure
observation — running a join with observability enabled must leave the
simulated ledger bit-identical to running it disabled.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import run_algorithm
from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    series_key,
)
from repro.obs.report import (
    TABLE2_PHASES,
    RunReport,
    build_run_report,
    phase_wall_times,
)
from repro.obs.tracer import NULL_TRACER, Span, Tracer

from tests.conftest import make_squares
from tests.test_partition_parity import ALGORITHMS, WORKLOADS, execute


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", kind="phase"):
            with tracer.span("inner") as inner:
                inner.set(pages=3)
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.children[0].attrs["pages"] == 3
        assert outer.wall_s >= outer.children[0].wall_s >= 0.0

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_span_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", kind="phase"):
            with tracer.span("b", side="A"):
                pass
        data = tracer.to_dicts()
        restored = Span.from_dict(data[0])
        assert restored.name == "a"
        assert restored.children[0].attrs == {"side": "A"}
        assert restored.to_dict() == data[0]

    def test_jsonl_links_parents(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        rows = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
        by_name = {row["name"]: row for row in rows}
        assert by_name["a"]["parent"] is None
        assert by_name["b"]["parent"] == by_name["a"]["id"]
        assert by_name["c"]["parent"] is None

    def test_chrome_trace_format(self):
        tracer = Tracer()
        with tracer.span("partition", kind="phase"):
            with tracer.span("partition:A", side="A"):
                pass
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [event["name"] for event in events] == ["partition", "partition:A"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
        assert events[0]["cat"] == "phase"
        # The whole document must be JSON-serializable as-is.
        json.dumps(trace)

    def test_null_tracer_allocates_nothing(self):
        with NULL_TRACER.span("anything", kind="phase") as span:
            span.set(ignored=True)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.to_dicts() == []
        assert not NULL_TRACER.enabled
        assert span.attrs == {}


class TestMetricsRegistry:
    def test_series_key_sorts_labels(self):
        assert series_key("x", {}) == "x"
        assert series_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"

    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.count("io.reads", 2, file="f", kind="seq")
        registry.count("io.reads", 3, file="f", kind="seq")
        registry.gauge("dsb.level", 7)
        assert registry.counter_value("io.reads", file="f", kind="seq") == 5
        assert registry.counter_total("io.reads") == 5
        assert registry.as_dict()["gauges"]["dsb.level"] == 7

    def test_histogram_buckets(self):
        histogram = Histogram()
        for value in (0, 1, 2, 3, 100):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.min == 0 and histogram.max == 100
        assert histogram.mean == pytest.approx(106 / 5)
        restored = Histogram.from_dict(histogram.as_dict())
        assert restored.as_dict() == histogram.as_dict()

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.count("a.b", 4, side="A")
        registry.gauge("g", 1.5)
        registry.observe("h", 9)
        restored = MetricsRegistry.from_dict(registry.as_dict())
        assert restored.as_dict() == registry.as_dict()

    def test_null_registry_is_inert(self):
        NULL_METRICS.count("x")
        NULL_METRICS.gauge("y", 1)
        NULL_METRICS.observe("z", 2)
        assert NULL_METRICS.as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert not NULL_METRICS.enabled


class TestObservability:
    def test_default_is_enabled(self):
        obs = Observability()
        assert obs.enabled
        assert obs.active_metrics is obs.metrics

    def test_null_obs_is_disabled(self):
        assert not NULL_OBS.enabled
        assert NULL_OBS.active_metrics is None

    def test_disabled_constructor(self):
        obs = Observability.disabled()
        assert not obs.enabled
        assert obs.active_metrics is None


class TestPhaseWallTimes:
    def _span(self, name, wall, kind=None, children=()):
        span = Span(name, 0.0, {} if kind is None else {"kind": kind})
        span.wall_s = wall
        span.children = list(children)
        return span

    def test_nested_phase_attributes_to_innermost(self):
        # PBSM shape: a repartition "partition" phase inside "join".
        inner = self._span("partition", 2.0, kind="phase")
        join = self._span("join", 10.0, kind="phase", children=[inner])
        root = self._span("spatial_join", 11.0, children=[join])
        wall = phase_wall_times([root])
        assert wall["partition"] == pytest.approx(2.0)
        assert wall["join"] == pytest.approx(8.0)

    def test_non_phase_children_do_not_subtract(self):
        sub = self._span("sync-scan", 4.0)
        join = self._span("join", 5.0, kind="phase", children=[sub])
        assert phase_wall_times([join])["join"] == pytest.approx(5.0)


class TestRunReport:
    def _run(self, **kwargs):
        dataset_a = make_squares(150, 0.03, seed=11, name="A")
        dataset_b = make_squares(150, 0.04, seed=12, name="B")
        obs = Observability()
        run = run_algorithm(dataset_a, dataset_b, "s3j", obs=obs, **kwargs)
        return run, obs

    def test_report_built_when_obs_enabled(self):
        run, obs = self._run()
        report = run.report
        assert report is not None
        assert report.algorithm == "s3j"
        assert report.workload == "A-B"
        assert report.pairs == len(run.result.pairs)
        for phase in TABLE2_PHASES["s3j"]:
            assert report.phase_wall.get(phase, 0.0) > 0.0
            assert report.phase_table()[phase]["simulated_s"] > 0.0
        assert report.wall_seconds > 0.0
        assert report.simulated_seconds == pytest.approx(
            run.result.metrics.response_time
        )

    def test_no_report_without_obs(self):
        dataset = make_squares(60, 0.05, seed=13, name="A")
        run = run_algorithm(dataset, dataset, "s3j")
        assert run.report is None

    def test_json_round_trip(self, tmp_path):
        run, _obs = self._run()
        path = tmp_path / "report.json"
        run.report.save(str(path))
        restored = RunReport.load(str(path))
        assert restored.algorithm == run.report.algorithm
        assert restored.pairs == run.report.pairs
        # Compare through JSON: serialization stringifies the int dict
        # keys inside details (e.g. levels_a), deliberately.
        assert json.loads(restored.to_json()) == json.loads(run.report.to_json())
        # The restored metrics re-price phases with the restored model.
        assert restored.simulated_seconds == pytest.approx(
            run.report.simulated_seconds
        )

    def test_from_json_rejects_unknown_schema(self):
        run, _obs = self._run()
        data = run.report.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            RunReport.from_dict(data)

    def test_build_run_report_registry_series(self):
        run, obs = self._run()
        counters = run.report.registry["counters"]
        assert run.report.registry is not None
        assert counters.get("buffer.hits", 0) > 0
        assert counters.get("buffer.misses", 0) > 0
        assert counters.get("scan.pairs_emitted", 0) > 0
        assert any(key.startswith("io.reads{") for key in counters)
        histograms = run.report.registry["histograms"]
        assert "sort.initial_runs" in histograms
        report = build_run_report(run.result, obs, wall_seconds=1.25)
        assert report.wall_seconds == 1.25


class TestLedgerParity:
    """Acceptance: observability must never perturb the simulation."""

    @pytest.mark.parametrize("algorithm", ["s3j", "s3j-dsb-precise", "pbsm", "shj"])
    def test_ledger_identical_with_and_without_obs(self, algorithm):
        dataset_a, dataset_b = WORKLOADS["clustered"]()
        factory = ALGORITHMS[algorithm]
        plain = execute(factory, dataset_a, dataset_b, batch_size=64)
        traced = execute(
            factory, dataset_a, dataset_b, batch_size=64, obs=Observability()
        )
        assert traced["pairs"] == plain["pairs"]
        assert traced["phases"] == plain["phases"]
        assert traced["total"] == plain["total"]
        assert traced["details"] == plain["details"]
        assert traced["replication"] == plain["replication"]

    def test_spans_report_ledger_simulated_seconds(self):
        """The simulated_s attached to a phase span equals the ledger's
        own pricing of that phase."""
        dataset_a, dataset_b = WORKLOADS["uniform"]()
        obs = Observability()
        outcome = execute(
            ALGORITHMS["s3j"], dataset_a, dataset_b, batch_size=64, obs=obs
        )
        spans = {span.name: span for span in _iter_spans(obs.tracer.roots)}
        from repro.storage.costs import CostModel

        cost = CostModel()
        for phase in ("partition", "sort", "join"):
            assert spans[phase].attrs["simulated_s"] == pytest.approx(
                cost.response_time(outcome["phases"][phase])
            )


def _iter_spans(spans):
    for span in spans:
        yield span
        yield from _iter_spans(span.children)


class TestHistogramQuantiles:
    def test_exact_quantiles_small_sample(self):
        h = Histogram()
        for value in range(1, 101):  # 1..100
            h.observe(float(value))
        assert h.exact_quantiles
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.95) == pytest.approx(95.05)
        assert h.quantile(0.99) == pytest.approx(99.01)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_as_dict_carries_percentiles(self):
        h = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        d = h.as_dict()
        assert d["p50"] == pytest.approx(2.5)
        assert d["p95"] == pytest.approx(3.85)
        assert d["p99"] == pytest.approx(3.97)

    def test_quantile_bounds_checked(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_empty_histogram_has_no_quantiles(self):
        assert Histogram().quantile(0.5) is None

    def test_cap_overflow_degrades_to_bucket_interpolation(self):
        from repro.obs.metrics import QUANTILE_SAMPLE_CAP

        h = Histogram()
        for index in range(QUANTILE_SAMPLE_CAP + 1):
            h.observe(float(index % 100) + 1.0)
        assert not h.exact_quantiles
        assert h.samples is None
        # Bucket interpolation still lands inside the observed range.
        p50 = h.quantile(0.5)
        assert h.min <= p50 <= h.max

    def test_merge_stays_exact_under_cap(self):
        a, b = Histogram(), Histogram()
        for value in (1.0, 2.0):
            a.observe(value)
        for value in (3.0, 4.0):
            b.observe(value)
        a.merge(b)
        assert a.exact_quantiles
        assert a.quantile(0.5) == pytest.approx(2.5)

    def test_merge_past_cap_drops_samples(self):
        from repro.obs.metrics import QUANTILE_SAMPLE_CAP

        a, b = Histogram(), Histogram()
        for _ in range(QUANTILE_SAMPLE_CAP // 2 + 1):
            a.observe(1.0)
            b.observe(3.0)
        a.merge(b)
        assert not a.exact_quantiles
        assert a.count == 2 * (QUANTILE_SAMPLE_CAP // 2 + 1)


class TestAtomicWrites:
    def test_write_and_content(self, tmp_path):
        from repro.obs.fileio import atomic_write_json

        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        data = json.loads(path.read_text())
        assert data == {"a": 1, "b": 2}
        # No temp-file litter left beside the artifact.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_unserializable_payload_leaves_original_intact(self, tmp_path):
        from repro.obs.fileio import atomic_write_json

        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_crash_mid_write_leaves_original_intact(self, tmp_path, monkeypatch):
        import os as os_mod

        from repro.obs import fileio
        from repro.obs.fileio import atomic_write_text

        path = tmp_path / "artifact.json"
        atomic_write_text(path, "original\n")

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(fileio.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_text(path, "half-written garbage")
        monkeypatch.undo()
        assert path.read_text() == "original\n"
        # The failed attempt's temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]
        assert os_mod.path.exists(path)

    def test_report_save_is_atomic(self, tmp_path, monkeypatch):
        """RunReport.save must go through the atomic writer."""
        dataset_a = make_squares(30, side=0.05, seed=5, name="A")
        dataset_b = make_squares(30, side=0.05, seed=6, name="B")
        obs = Observability()
        outcome = run_algorithm(dataset_a, dataset_b, "s3j", obs=obs)
        report = build_run_report(outcome.result, obs, workload="test")
        path = tmp_path / "run.report.json"
        report.save(str(path))
        original = path.read_text()

        from repro.obs import fileio

        monkeypatch.setattr(
            fileio.os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            report.save(str(path))
        monkeypatch.undo()
        assert path.read_text() == original
