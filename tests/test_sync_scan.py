"""Tests for the synchronized scan (S3J's join phase)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sync_scan import synchronized_scan
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.geometry.rect import Rect
from repro.storage.manager import StorageConfig, StorageManager

ORDER = 10
CURVE = HilbertCurve(order=ORDER)
ASSIGNER = LevelAssigner(order=ORDER, max_level=ORDER)


def build_level_files(storage, tag, rects, start_eid=0):
    """Partition + sort rects into Hilbert-ordered level files."""
    by_level = {}
    for i, rect in enumerate(rects):
        level = ASSIGNER.level(rect)
        key = CURVE.key_of_normalized(*rect.center)
        by_level.setdefault(level, []).append(
            (start_eid + i, rect.xlo, rect.ylo, rect.xhi, rect.yhi, key)
        )
    files = {}
    for level, records in by_level.items():
        records.sort(key=lambda r: r[5])
        handle = storage.create_file(f"{tag}-L{level}")
        handle.append_many(records)
        files[level] = handle
    storage.phase_boundary()
    return files


def random_rects(rng, count, max_side=0.25):
    rects = []
    for _ in range(count):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1)
        side = rng.uniform(0, max_side)
        rects.append(Rect(x, y, min(1, x + side), min(1, y + side)))
    return rects


def brute(rects_a, rects_b):
    return {
        (i, 1000 + j)
        for i, a in enumerate(rects_a)
        for j, b in enumerate(rects_b)
        if a.intersects(b)
    }


def run_scan(storage, files_a, files_b):
    pairs = set()
    synchronized_scan(
        files_a, files_b, ORDER, lambda a, b: pairs.add((a[0], b[0])),
        stats=storage.stats,
    )
    return pairs


class TestCorrectness:
    def test_empty_inputs(self, storage):
        assert run_scan(storage, {}, {}) == set()

    def test_one_sided_input(self, storage):
        files_a = build_level_files(storage, "A", [Rect(0.1, 0.1, 0.2, 0.2)])
        assert run_scan(storage, files_a, {}) == set()

    def test_same_cell_pair_found(self, storage):
        rect = Rect(0.1, 0.1, 0.12, 0.12)
        files_a = build_level_files(storage, "A", [rect])
        files_b = build_level_files(storage, "B", [rect], start_eid=1000)
        assert run_scan(storage, files_a, files_b) == {(0, 1000)}

    def test_cross_level_pair_found(self, storage):
        big = Rect(0.05, 0.05, 0.6, 0.6)     # level 0 (crosses center)
        small = Rect(0.3, 0.3, 0.31, 0.31)   # deep level, nested inside
        files_a = build_level_files(storage, "A", [big])
        files_b = build_level_files(storage, "B", [small], start_eid=1000)
        assert run_scan(storage, files_a, files_b) == {(0, 1000)}

    def test_disjoint_cells_no_pair(self, storage):
        a = Rect(0.1, 0.1, 0.12, 0.12)
        b = Rect(0.9, 0.9, 0.92, 0.92)
        files_a = build_level_files(storage, "A", [a])
        files_b = build_level_files(storage, "B", [b], start_eid=1000)
        assert run_scan(storage, files_a, files_b) == set()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_brute_force(self, seed):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(seed)
            rects_a = random_rects(rng, 250)
            rects_b = random_rects(rng, 250)
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            assert run_scan(storage, files_a, files_b) == brute(rects_a, rects_b)

    def test_no_duplicate_pairs(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(5)
            rects_a = random_rects(rng, 200)
            rects_b = random_rects(rng, 200)
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            seen = []
            synchronized_scan(
                files_a, files_b, ORDER, lambda a, b: seen.append((a[0], b[0]))
            )
            assert len(seen) == len(set(seen))

    def test_orientation(self):
        """on_pair always receives the A record first."""
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(6)
            rects_a = random_rects(rng, 80)
            rects_b = random_rects(rng, 80)
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            pairs = run_scan(storage, files_a, files_b)
            assert all(a < 1000 <= b for a, b in pairs)


class TestReadOnceInvariant:
    def test_each_page_read_exactly_once(self):
        """The property the algorithm is designed around (section 3.1):
        the join phase reads every level-file page exactly once."""
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(7)
            files_a = build_level_files(storage, "A", random_rects(rng, 800))
            files_b = build_level_files(
                storage, "B", random_rects(rng, 800), start_eid=5000
            )
            total_pages = sum(
                f.num_pages for f in list(files_a.values()) + list(files_b.values())
            )
            storage.stats.reset()
            with storage.stats.phase("join"):
                synchronized_scan(files_a, files_b, ORDER, lambda a, b: None)
            phase = storage.stats.phases["join"]
            assert phase.page_reads == total_pages
            assert phase.buffer_hits == 0


# -- property-based oracle ----------------------------------------------
#
# Rect coordinates are multiples of 1/16, so MBR edges land *exactly* on
# Filter-Tree grid lines at levels <= 4 — the boundary-touch cases where
# quantization decides which cell (and which level) an entity gets.
# Degenerate (zero-width) rects and heavy duplication are both allowed:
# duplicated rects share a center, hence a Hilbert key, producing level
# files with whole pages of equal keys.

GRID = 16

rect_on_grid = st.tuples(
    st.integers(0, GRID - 1), st.integers(0, GRID - 1),
    st.integers(0, GRID), st.integers(0, GRID),
).map(
    lambda t: Rect(
        t[0] / GRID,
        t[1] / GRID,
        (t[0] + min(t[2], GRID - t[0])) / GRID,
        (t[1] + min(t[3], GRID - t[1])) / GRID,
    )
)

# (rect, copies): copies > 1 stacks identical Hilbert keys.
rect_lists = st.lists(
    st.tuples(rect_on_grid, st.integers(1, 12)), max_size=15
).map(lambda items: [rect for rect, copies in items for _ in range(copies)])


class TestOracle:
    @given(rects_a=rect_lists, rects_b=rect_lists)
    @settings(max_examples=60, deadline=None)
    def test_scan_matches_brute_force(self, rects_a, rects_b):
        """Oracle: the scan equals the nested-loop join on mixed-level
        data with boundary-touching MBRs and duplicated Hilbert keys."""
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            assert run_scan(storage, files_a, files_b) == brute(rects_a, rects_b)

    @given(
        rects_a=rect_lists,
        rects_b=rect_lists,
        pivot=st.sampled_from([0.25, 0.5]),
    )
    @settings(max_examples=25, deadline=None)
    def test_scan_matches_brute_force_around_pivot(self, rects_a, rects_b, pivot):
        """Same oracle with every rect snapped to touch one grid line
        (maximal boundary-touch density around the level-1/2 pivots)."""
        def snap(rects):
            return [
                Rect(min(r.xlo, pivot), r.ylo, max(r.xhi, pivot), r.yhi)
                for r in rects
            ]

        rects_a, rects_b = snap(rects_a), snap(rects_b)
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            assert run_scan(storage, files_a, files_b) == brute(rects_a, rects_b)
