"""Chaos verification: the differential harness under injected faults.

Every chaos case runs one join algorithm over one verification workload
with a *sampled* :class:`~repro.faults.plan.FaultPlan` (and usually a
:class:`~repro.faults.retry.RetryPolicy`) installed, then asserts the
**trichotomy** (DESIGN.md section 11): the run must end in exactly one
of

- **correct** — the pair set equals the brute-force oracle's (the
  faults were absorbed by retries, healed writes, or cache hits);
- **typed failure** — a :class:`~repro.faults.errors.FaultError`
  subclass propagated (permanent fault, exhausted retries, torn-write
  detection, dead shard without partial-results mode);
- **declared partial** — a sharded run in partial-results mode returned
  completed shards plus :class:`ShardFailure` reports; the returned
  pairs must be a subset of the oracle and every missing pair must
  belong to a declared-failed shard (computed by re-running the
  deterministic shard planner).

Anything else — a wrong pair set, a missing pair nobody declared, an
untyped exception — is a silent-wrong-answer bug and fails the report.

On top of the trichotomy each case checks post-recovery bookkeeping:
``faults.retries_attempted >= faults.retries_succeeded``, no give-ups
on a fully correct run, and per-phase ledger buckets still summing to
the totals after recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults import FaultError, FaultPlan, RetryPolicy
from repro.join.api import spatial_join
from repro.join.result import Pair, canonical_pairs
from repro.obs import Observability
from repro.parallel.planner import DEFAULT_PLANNER, PLANNERS, plan_join
from repro.storage.iostats import PhaseStats
from repro.storage.manager import StorageConfig
from repro.verify.cases import VerifyCase
from repro.verify.oracle import oracle_for_case, oracle_pairs
from repro.verify.workloads import generated_cases

CHAOS_ALGORITHMS = ("s3j", "pbsm", "shj")
"""Algorithms the chaos sweep cycles through: the three external-memory
joins whose storage traffic actually exercises the fault surface."""

CHAOS_ENTITY_LIMIT = 70
"""Workloads are shrunk to this many entities per side so a sweep of
hundreds of fault scenarios stays fast."""

GOOD_OUTCOMES = ("correct", "typed-failure", "partial")


@dataclass(frozen=True)
class ChaosScenario:
    """One sampled fault scenario: workload x algorithm x fault plan."""

    index: int
    case: VerifyCase
    algorithm: str
    plan: FaultPlan
    retry: RetryPolicy | None
    sharded: bool
    partial_results: bool
    buffer_pages: int
    planner: str = DEFAULT_PLANNER  # sharded scenarios only

    def describe(self) -> str:
        mode = f"sharded[{self.planner}]" if self.sharded else "serial"
        if self.sharded and self.partial_results:
            mode += "+partial"
        retry = (
            f"retry x{self.retry.max_attempts}" if self.retry else "no retry"
        )
        return (
            f"#{self.index} {self.algorithm} on {self.case.name} "
            f"({mode}, {retry}, M={self.buffer_pages}) {self.plan.describe()}"
        )


@dataclass(frozen=True)
class ChaosOutcome:
    """What one chaos case ended as, with any invariant violations."""

    scenario: str
    outcome: str  # "correct" | "typed-failure" | "partial" | "wrong" | ...
    detail: str = ""
    violations: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.outcome in GOOD_OUTCOMES and not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "outcome": self.outcome,
            "detail": self.detail,
            "violations": list(self.violations),
            "ok": self.ok,
        }


@dataclass
class ChaosReport:
    """The outcome tally of one chaos sweep."""

    seed: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def tally(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
        return counts

    def failures(self) -> list[ChaosOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> str:
        lines = [
            f"chaos: {len(self.outcomes)} case(s), seed {self.seed} — "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.tally().items()))
        ]
        for outcome in self.failures():
            lines.append(f"  FAIL {outcome.scenario}: {outcome.outcome}")
            if outcome.detail:
                lines.append(f"       {outcome.detail}")
            for violation in outcome.violations:
                lines.append(f"       violated: {violation}")
        if self.ok:
            lines.append("  no silent wrong answers")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "cases": len(self.outcomes),
            "tally": self.tally(),
            "ok": self.ok,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def _shrunk_cases(seed: int, limit: int = CHAOS_ENTITY_LIMIT) -> list[VerifyCase]:
    """The generated workload roster, cut down to chaos scale."""
    shrunk = []
    for case in generated_cases(seed):
        entities_a = list(case.dataset_a)[:limit]
        entities_b = (
            entities_a if case.self_join else list(case.dataset_b)[:limit]
        )
        shrunk.append(case.with_entities(entities_a, entities_b))
    return shrunk


def sample_scenario(
    index: int,
    seed: int,
    cases: list[VerifyCase] | None = None,
    algorithms: tuple[str, ...] = CHAOS_ALGORITHMS,
) -> ChaosScenario:
    """Deterministically sample chaos case number ``index``.

    The scenario is a pure function of ``(seed, index)``: the same
    sweep replays the same fault plans, so a failing case number is a
    stable reproduction recipe.
    """
    rng = random.Random((seed << 20) ^ index)
    roster = cases if cases is not None else _shrunk_cases(seed)
    case = roster[index % len(roster)]
    algorithm = algorithms[index % len(algorithms)]
    sharded = index % 4 == 3  # every 4th case goes through the executor
    # Sharded scenarios alternate planners so the chaos surface covers
    # both decompositions (sharded indices are 3, 7, 11, ...).
    planner = PLANNERS[(index // 4) % len(PLANNERS)]
    partial_results = sharded and rng.random() < 0.5

    profile = rng.choice(("transient", "permanent", "torn", "mixed", "quiet"))
    kwargs: dict[str, Any] = {"seed": rng.randrange(2**31)}
    if profile == "transient":
        kwargs["transient_read_rate"] = rng.uniform(0.005, 0.08)
        kwargs["transient_write_rate"] = rng.uniform(0.005, 0.08)
    elif profile == "permanent":
        kwargs["permanent_rate"] = rng.uniform(0.001, 0.02)
    elif profile == "torn":
        kwargs["torn_write_rate"] = rng.uniform(0.005, 0.05)
    elif profile == "mixed":
        kwargs["transient_read_rate"] = rng.uniform(0.0, 0.05)
        kwargs["transient_write_rate"] = rng.uniform(0.0, 0.05)
        kwargs["permanent_rate"] = rng.uniform(0.0, 0.01)
        kwargs["torn_write_rate"] = rng.uniform(0.0, 0.02)
    # "quiet": no storage faults — the fault-free path must stay correct.
    if rng.random() < 0.3:
        kwargs["max_faults"] = rng.randrange(1, 6)
    if sharded and rng.random() < 0.5:
        # Crash a worker; recoverable half the time (the executor
        # re-dispatches), sticky otherwise (fails or goes partial).
        kwargs["crash_shards"] = (f"cell-{rng.randrange(4):x}",)
        kwargs["crash_attempts"] = rng.choice((1, 99))
    plan = FaultPlan(**kwargs)

    retry = None
    if rng.random() < 0.75:
        retry = RetryPolicy(
            max_attempts=rng.randrange(2, 5), seed=rng.randrange(2**31)
        )
    return ChaosScenario(
        index=index,
        case=case,
        algorithm=algorithm,
        plan=plan,
        retry=retry,
        sharded=sharded,
        partial_results=partial_results,
        buffer_pages=rng.choice((8, 16, 32)),
        planner=planner,
    )


def _excused_pairs(
    scenario: ChaosScenario, failed_shard_ids: set[str]
) -> frozenset[Pair]:
    """Oracle pairs attributable to declared-failed shards.

    Planning is deterministic, so re-planning with the scenario's
    planner reconstructs exactly the sub-joins the dead shards would
    have run.  A two-layer tile shard is excused per *mini-join* (the
    union over its class-pair sub-joins), not as a cross product of
    the tile's sides — the tile never joins everything-with-everything,
    so neither may its excuse.
    """
    case = scenario.case
    shard_plan = plan_join(
        case.dataset_a,
        case.dataset_b,
        1,  # chaos sharded runs always use shard_level=1
        margin=case.margin,
        planner=scenario.planner,
    )
    excused: set[Pair] = set()
    for task in shard_plan.tasks:
        if task.shard_id not in failed_shard_ids:
            continue
        for mini in task.sub_joins():
            dataset_b = mini.dataset_a if mini.self_join else mini.dataset_b
            excused.update(
                oracle_pairs(mini.dataset_a, dataset_b, margin=case.margin)
            )
    return canonical_pairs(excused, case.self_join)


def _ledger_violations(metrics_phases: dict[str, PhaseStats]) -> list[str]:
    """Post-recovery ledger sanity: no negative counts anywhere."""
    problems = []
    for name, stats in metrics_phases.items():
        for attr in (
            "page_reads",
            "page_writes",
            "random_reads",
            "random_writes",
            "buffer_hits",
        ):
            if getattr(stats, attr) < 0:
                problems.append(f"phase {name}: negative {attr}")
        if any(count < 0 for count in stats.cpu_ops.values()):
            problems.append(f"phase {name}: negative cpu op count")
    return problems


def run_chaos_case(scenario: ChaosScenario) -> ChaosOutcome:
    """Run one chaos scenario and classify its ending."""
    case = scenario.case
    oracle = oracle_for_case(case)
    obs = Observability()
    config = StorageConfig(
        buffer_pages=scenario.buffer_pages,
        fault_plan=scenario.plan,
        retry=scenario.retry,
    )
    execution: dict[str, Any] = {}
    if scenario.sharded:
        # workers=1 + shard_level=1 drives the hardened executor (crash
        # and partial-results paths included) without process startup.
        execution = {
            "workers": 1,
            "shard_level": 1,
            "planner": scenario.planner,
            "partial_results": scenario.partial_results,
        }
    label = scenario.describe()
    try:
        result = spatial_join(
            case.dataset_a,
            case.dataset_b,
            algorithm=scenario.algorithm,
            predicate=case.predicate,
            storage=config,
            obs=obs,
            **execution,
        )
    except FaultError as error:
        return ChaosOutcome(
            scenario=label,
            outcome="typed-failure",
            detail=f"{type(error).__name__}: {error}",
            violations=tuple(_metric_violations(obs, complete_success=False)),
        )
    except Exception as error:  # noqa: BLE001 - the bug class under test
        return ChaosOutcome(
            scenario=label,
            outcome="untyped-error",
            detail=f"{type(error).__name__}: {error}",
        )

    violations = _metric_violations(
        obs, complete_success=not result.failures
    ) + _ledger_violations(result.metrics.phases)

    if result.failures:
        failed_ids = {f.shard_id for f in result.failures}
        excused = _excused_pairs(scenario, failed_ids)
        extra = result.pairs - oracle
        unexcused = oracle - result.pairs - excused
        if extra or unexcused:
            return ChaosOutcome(
                scenario=label,
                outcome="wrong",
                detail=(
                    f"declared-partial result diverges: {len(extra)} bogus, "
                    f"{len(unexcused)} missing beyond the "
                    f"{len(failed_ids)} failed shard(s)"
                ),
                violations=tuple(violations),
            )
        return ChaosOutcome(
            scenario=label,
            outcome="partial",
            detail=f"{len(failed_ids)} shard(s) declared failed",
            violations=tuple(violations),
        )

    if result.pairs != oracle:
        extra = result.pairs - oracle
        missing = oracle - result.pairs
        return ChaosOutcome(
            scenario=label,
            outcome="wrong",
            detail=f"{len(extra)} bogus pair(s), {len(missing)} missing",
            violations=tuple(violations),
        )
    return ChaosOutcome(
        scenario=label, outcome="correct", violations=tuple(violations)
    )


def _metric_violations(obs: Observability, complete_success: bool) -> list[str]:
    """Retry bookkeeping invariants, readable from the metrics alone."""
    metrics = obs.metrics
    attempted = metrics.counter_total("faults.retries_attempted")
    succeeded = metrics.counter_total("faults.retries_succeeded")
    giveups = metrics.counter_total("faults.giveups")
    problems = []
    if attempted < succeeded:
        problems.append(
            f"retries_attempted ({attempted}) < retries_succeeded ({succeeded})"
        )
    if complete_success and giveups:
        problems.append(f"{giveups} give-up(s) on a fully successful run")
    return problems


def run_chaos(
    cases: int = 25,
    seed: int = 0,
    algorithms: tuple[str, ...] = CHAOS_ALGORITHMS,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run ``cases`` sampled fault scenarios and report the trichotomy."""
    if cases < 1:
        raise ValueError("cases must be positive")
    roster = _shrunk_cases(seed)
    report = ChaosReport(seed=seed)
    for index in range(cases):
        scenario = sample_scenario(index, seed, cases=roster, algorithms=algorithms)
        outcome = run_chaos_case(scenario)
        report.outcomes.append(outcome)
        if progress is not None:
            progress(f"chaos {outcome.outcome:>13}  {scenario.describe()}")
    return report
