"""Tests for repro.geometry.shapes."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.shapes import Point, Polygon, Segment

coords = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_mbr_is_degenerate(self):
        p = Point(0.3, 0.4)
        assert p.mbr().as_tuple() == (0.3, 0.4, 0.3, 0.4)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)


class TestSegment:
    def test_mbr_covers_endpoints(self):
        s = Segment(0.8, 0.1, 0.2, 0.9)
        assert s.mbr().as_tuple() == (0.2, 0.1, 0.8, 0.9)

    def test_length(self):
        assert Segment(0, 0, 3, 4).length == pytest.approx(5.0)

    def test_crossing_segments_intersect(self):
        assert Segment(0, 0, 1, 1).intersects(Segment(0, 1, 1, 0))

    def test_parallel_disjoint(self):
        assert not Segment(0, 0, 1, 0).intersects(Segment(0, 0.1, 1, 0.1))

    def test_shared_endpoint_counts(self):
        assert Segment(0, 0, 0.5, 0.5).intersects(Segment(0.5, 0.5, 1, 0))

    def test_collinear_overlapping(self):
        assert Segment(0, 0, 0.6, 0).intersects(Segment(0.4, 0, 1, 0))

    def test_collinear_disjoint(self):
        assert not Segment(0, 0, 0.3, 0).intersects(Segment(0.4, 0, 1, 0))

    def test_t_junction(self):
        assert Segment(0, 0, 1, 0).intersects(Segment(0.5, 0, 0.5, 1))

    def test_distance_to_point_interior(self):
        assert Segment(0, 0, 1, 0).distance_to_point(0.5, 0.3) == pytest.approx(0.3)

    def test_distance_to_point_beyond_end(self):
        d = Segment(0, 0, 1, 0).distance_to_point(1.3, 0.4)
        assert d == pytest.approx(0.5)

    def test_distance_degenerate_segment(self):
        s = Segment(0.5, 0.5, 0.5, 0.5)
        assert s.distance_to_point(0.5, 0.9) == pytest.approx(0.4)

    def test_distance_between_crossing_is_zero(self):
        assert Segment(0, 0, 1, 1).distance_to(Segment(0, 1, 1, 0)) == 0.0

    def test_distance_between_parallel(self):
        d = Segment(0, 0, 1, 0).distance_to(Segment(0, 0.2, 1, 0.2))
        assert d == pytest.approx(0.2)

    @given(coords, coords, coords, coords)
    def test_intersects_self(self, x1, y1, x2, y2):
        s = Segment(x1, y1, x2, y2)
        assert s.intersects(s)

    @given(
        st.tuples(coords, coords, coords, coords),
        st.tuples(coords, coords, coords, coords),
    )
    def test_intersects_symmetric(self, p, q):
        a = Segment(*p)
        b = Segment(*q)
        assert a.intersects(b) == b.intersects(a)

    @given(
        st.tuples(coords, coords, coords, coords),
        st.tuples(coords, coords, coords, coords),
    )
    def test_distance_consistent_with_intersection(self, p, q):
        a = Segment(*p)
        b = Segment(*q)
        if a.intersects(b):
            assert a.distance_to(b) == 0.0
        else:
            assert a.distance_to(b) > 0.0


def unit_triangle():
    return Polygon(((0.0, 0.0), (1.0, 0.0), (0.0, 1.0)))


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon(((0, 0), (1, 1)))

    def test_mbr(self):
        assert unit_triangle().mbr().as_tuple() == (0.0, 0.0, 1.0, 1.0)

    def test_contains_interior_point(self):
        assert unit_triangle().contains_point(0.2, 0.2)

    def test_excludes_exterior_point(self):
        assert not unit_triangle().contains_point(0.8, 0.8)

    def test_boundary_point_counts(self):
        assert unit_triangle().contains_point(0.5, 0.0)

    def test_vertex_counts(self):
        assert unit_triangle().contains_point(0.0, 0.0)

    def test_edge_count(self):
        assert len(unit_triangle().edges()) == 3

    def test_overlapping_polygons(self):
        other = Polygon(((0.1, 0.1), (0.9, 0.1), (0.1, 0.9)))
        assert unit_triangle().intersects(other)

    def test_disjoint_polygons(self):
        other = Polygon(((2.0, 2.0), (3.0, 2.0), (2.0, 3.0)))
        assert not unit_triangle().intersects(other)

    def test_nested_polygon_intersects(self):
        inner = Polygon(((0.1, 0.1), (0.2, 0.1), (0.1, 0.2)))
        assert unit_triangle().intersects(inner)
        assert inner.intersects(unit_triangle())

    def test_distance_between_disjoint(self):
        other = Polygon(((2.0, 0.0), (3.0, 0.0), (2.0, 1.0)))
        assert unit_triangle().distance_to(other) == pytest.approx(1.0)

    def test_distance_zero_when_nested(self):
        inner = Polygon(((0.1, 0.1), (0.2, 0.1), (0.1, 0.2)))
        assert unit_triangle().distance_to(inner) == 0.0

    def test_concave_polygon_containment(self):
        # A "U" shape: the notch interior is outside the polygon.
        u_shape = Polygon(
            (
                (0.0, 0.0),
                (1.0, 0.0),
                (1.0, 1.0),
                (0.7, 1.0),
                (0.7, 0.3),
                (0.3, 0.3),
                (0.3, 1.0),
                (0.0, 1.0),
            )
        )
        assert u_shape.contains_point(0.15, 0.9)  # left prong
        assert u_shape.contains_point(0.85, 0.9)  # right prong
        assert not u_shape.contains_point(0.5, 0.9)  # inside the notch
        assert u_shape.contains_point(0.5, 0.15)  # the base


class TestCrossTypeGeometry:
    def test_point_distances_match_segment_math(self):
        s = Segment(0.0, 0.0, 1.0, 0.0)
        assert s.distance_to_point(0.25, 0.1) == pytest.approx(0.1)
        assert s.distance_to_point(-0.3, 0.4) == pytest.approx(0.5)

    def test_segment_through_polygon(self):
        s = Segment(-0.5, 0.2, 1.5, 0.2)
        edges_hit = [e for e in unit_triangle().edges() if e.intersects(s)]
        assert edges_hit

    def test_diagonal_distance(self):
        a = Segment(0, 0, 0, 1)
        b = Segment(1, 2, 2, 2)
        assert a.distance_to(b) == pytest.approx(math.hypot(1, 1))
