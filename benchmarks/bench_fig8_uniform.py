"""E-F8a / E-F8b — figures 8a and 8b: phase-by-phase response time for
the uniform-square joins UN1 x UN2 (coverage 0.4/0.9) and UN2 x UN3
(coverage 0.9/1.6), for S3J, PBSM at two tile settings, and SHJ.
"""

import pytest

from repro.experiments.workloads import workload_by_name

from benchmarks.conftest import cached_workload_row, print_phase_breakdown


@pytest.mark.parametrize("name", ["UN1-UN2", "UN2-UN3"])
def test_fig8_uniform_join(benchmark, name, repro_scale):
    workload = workload_by_name(name)
    row = benchmark.pedantic(
        lambda: cached_workload_row(workload, repro_scale), rounds=1, iterations=1
    )

    rows = [row["s3j"], row["pbsm_small"], row["pbsm_large"], row["shj"]]
    print_phase_breakdown(f"Figure {workload.figure}: {name}", rows)

    s3j = row["s3j"]
    # Section 5.2.1 observations for the uniform joins:
    # S3J's partition phase is relatively fast (sequential I/O only).
    assert s3j["partition_s"] <= s3j["time_s"] * 0.5
    # PBSM spends the largest share partitioning (incl. repartitioning).
    pbsm = row["pbsm_small"]
    assert pbsm["partition_s"] >= pbsm["join_s"] * 0.5
    # SHJ's join phase is fast: partition pairs fit in memory.
    shj = row["shj"]
    assert shj["join_s"] <= shj["partition_s"]
    benchmark.extra_info["rows"] = rows


def test_fig8_coverage_increases_cost(benchmark, repro_scale):
    """Figure 8a -> 8b: higher coverage raises every algorithm's
    response time (more joining pairs, more replication)."""

    def both():
        return (
            cached_workload_row(workload_by_name("UN1-UN2"), repro_scale),
            cached_workload_row(workload_by_name("UN2-UN3"), repro_scale),
        )

    low, high = benchmark.pedantic(both, rounds=1, iterations=1)
    for key in ("s3j", "pbsm_small", "shj"):
        assert high[key]["time_s"] > low[key]["time_s"] * 0.9, key
    assert high["pairs"] > low["pairs"]
