"""Dynamic Spatial Bitmaps (section 3.2).

DSB projects every entity of the first data set onto a chosen *bitmap
level* ``l`` — a ``2^l x 2^l`` grid whose ``4^l`` cells map one-to-one
onto bits, indexed by the cell's Hilbert value at level ``l``.  While
the second data set is partitioned, entities whose projection finds no
set bit cannot join anything and are filtered out.

Two projection modes for entities *above* the bitmap level (level
``l_e < l``, i.e. entities bigger than a bitmap cell):

- ``precise`` — enumerate the level-``l`` cells the MBR actually
  overlaps ("determining all the partitions at level l that e overlaps
  and computing their Hilbert values");
- ``fast`` — take the whole Hilbert range of the entity's level-``l_e``
  cell ("extending H with all possible bit strings" — faster, but less
  precise because it covers the full cell, not just the entity).

Entities at or below the bitmap level use a single bit: their Hilbert
value truncated to ``2*l`` bits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.curves.base import SpaceFillingCurve
from repro.filtertree.grid import cells_overlapping
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

_MODES = ("precise", "fast")


class DynamicSpatialBitmap:
    """A ``4^level``-bit spatial bitmap addressed by Hilbert value.

    ``stats`` is the simulated ledger (every projection charges
    ``bitmap`` CPU ops); ``metrics`` is observability only — set/probe/
    admit/reject counters that never influence a simulated quantity.
    """

    def __init__(
        self,
        level: int,
        curve: SpaceFillingCurve,
        mode: str = "precise",
        stats: IOStats | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0 <= level <= min(curve.order, 13):
            raise ValueError("bitmap level must be between 0 and min(order, 13)")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self.level = level
        self.curve = curve
        self.mode = mode
        self.stats = stats
        self.metrics = metrics
        self.num_bits = 1 << (2 * level)
        self._bits = bytearray((self.num_bits + 7) // 8)
        # A curve instance at the bitmap's own resolution, for cell keys
        # in precise mode.  Space-filling curves are self-similar, so
        # the level-l key of a cell equals the full-precision key of any
        # interior point truncated to 2*l bits.
        self._cell_curve = type(curve)(order=level) if level >= 1 else None
        self.set_operations = 0
        self.probe_operations = 0
        self.filtered_count = 0

    def pages(self, page_size: int) -> int:
        """Pages needed to store the bitmap: ``2^(2l - p)`` for a page
        of ``2^p`` bits (section 3.2)."""
        page_bits = page_size * 8
        return max(1, -(-self.num_bits // page_bits))

    # -- population (first data set) -----------------------------------

    def set_entity(self, mbr: Rect | None, hilbert: int, entity_level: int) -> None:
        """Project one entity of the first data set onto the bitmap.

        ``mbr`` may be None when the projection provably will not read
        it (see :meth:`_lazy_mbr`); the scalar partition paths always
        pass the real rectangle.
        """
        self.set_operations += 1
        if self.metrics is not None:
            self.metrics.count("dsb.set_ops")
        for lo, hi in self._bit_ranges(mbr, hilbert, entity_level):
            self._set_range(lo, hi)

    def set_batch(
        self,
        xlo: Sequence[float],
        ylo: Sequence[float],
        xhi: Sequence[float],
        yhi: Sequence[float],
        hilberts: Sequence[int],
        levels: Sequence[int],
    ) -> None:
        """Project a block of first-data-set entities onto the bitmap.

        Counter-for-counter identical to calling :meth:`set_entity`
        per row; the MBR is only materialized for entities whose
        projection actually inspects it (precise mode, entity coarser
        than the bitmap level).
        """
        for i in range(len(hilberts)):
            self.set_entity(
                self._lazy_mbr(xlo, ylo, xhi, yhi, i, levels[i]),
                hilberts[i],
                levels[i],
            )

    # -- probing (second data set) ---------------------------------------

    def admits(self, mbr: Rect | None, hilbert: int, entity_level: int) -> bool:
        """True when an entity of the second data set may have a joining
        partner (some corresponding bit is set); false means the entity
        can be safely filtered out."""
        self.probe_operations += 1
        if self.metrics is not None:
            self.metrics.count("dsb.probes")
        for lo, hi in self._bit_ranges(mbr, hilbert, entity_level):
            if self._any_in_range(lo, hi):
                if self.metrics is not None:
                    self.metrics.count("dsb.admits")
                return True
        self.filtered_count += 1
        if self.metrics is not None:
            self.metrics.count("dsb.rejects")
        return False

    def admits_batch(
        self,
        xlo: Sequence[float],
        ylo: Sequence[float],
        xhi: Sequence[float],
        yhi: Sequence[float],
        hilberts: Sequence[int],
        levels: Sequence[int],
    ) -> list[bool]:
        """Per-row :meth:`admits` over a block of second-data-set
        entities (same counters, lazy MBR construction)."""
        return [
            self.admits(
                self._lazy_mbr(xlo, ylo, xhi, yhi, i, levels[i]),
                hilberts[i],
                levels[i],
            )
            for i in range(len(hilberts))
        ]

    def _lazy_mbr(
        self,
        xlo: Sequence[float],
        ylo: Sequence[float],
        xhi: Sequence[float],
        yhi: Sequence[float],
        index: int,
        entity_level: int,
    ) -> Rect | None:
        """The entity MBR when the projection will read it, else None.

        :meth:`_bit_ranges` touches the MBR only in precise mode for
        entities coarser than the bitmap level (``entity_level <
        level``); every other projection works off the Hilbert value
        alone, so the batch paths skip the Rect construction there.
        """
        if (
            self.mode == "precise"
            and self.level > 0
            and entity_level < self.level
        ):
            return Rect(xlo[index], ylo[index], xhi[index], yhi[index])
        return None

    # -- internals ---------------------------------------------------------

    def _bit_ranges(
        self, mbr: Rect | None, hilbert: int, entity_level: int
    ) -> list[tuple[int, int]]:
        """Half-open bit-index ranges covering the entity's projection."""
        self._charge()
        if self.level == 0:
            return [(0, 1)]
        if entity_level >= self.level:
            # At or below the bitmap level: one bit — the Hilbert value
            # truncated to the bitmap resolution.
            bit = hilbert >> (2 * (self.curve.order - self.level))
            return [(bit, bit + 1)]
        if self.mode == "fast":
            # The whole key range of the entity's own (coarser) cell.
            span = 2 * (self.level - entity_level)
            prefix = hilbert >> (2 * (self.curve.order - entity_level))
            return [(prefix << span, (prefix + 1) << span)]
        # Precise: only the bitmap cells the MBR actually overlaps.
        ranges = []
        for cx, cy in cells_overlapping(mbr, self.level):
            self._charge()
            bit = self._cell_curve.key(cx, cy)
            ranges.append((bit, bit + 1))
        return ranges

    def _set_range(self, lo: int, hi: int) -> None:
        """Set bits ``[lo, hi)``, filling whole middle bytes at once.

        ``fast`` mode projects a level-0 entity on a level-13 bitmap to
        a 2^26-bit range; setting those one loop iteration at a time is
        tens of millions of Python operations, while the slice fill
        below is three byte-level writes.
        """
        if hi <= lo:
            return
        if hi - lo == 1:  # the common single-bit case
            self._bits[lo >> 3] |= 1 << (lo & 7)
            return
        first, last = lo >> 3, (hi - 1) >> 3
        head_mask = (0xFF << (lo & 7)) & 0xFF
        tail_mask = 0xFF >> (7 - ((hi - 1) & 7))
        if first == last:
            self._bits[first] |= head_mask & tail_mask
            return
        self._bits[first] |= head_mask
        self._bits[last] |= tail_mask
        if last - first > 1:
            self._bits[first + 1 : last] = b"\xff" * (last - first - 1)

    def _any_in_range(self, lo: int, hi: int) -> bool:
        """True when any bit in ``[lo, hi)`` is set (byte-wise scan)."""
        if hi <= lo:
            return False
        first, last = lo >> 3, (hi - 1) >> 3
        head_mask = (0xFF << (lo & 7)) & 0xFF
        tail_mask = 0xFF >> (7 - ((hi - 1) & 7))
        if first == last:
            return bool(self._bits[first] & head_mask & tail_mask)
        if self._bits[first] & head_mask or self._bits[last] & tail_mask:
            return True
        # Whole middle bytes: strip() runs at C speed over the slice.
        return bool(self._bits[first + 1 : last].strip(b"\x00"))

    def is_set(self, bit: int) -> bool:
        """Direct single-bit read (used by tests)."""
        if not 0 <= bit < self.num_bits:
            raise IndexError(f"bit {bit} outside [0, {self.num_bits})")
        return bool(self._bits[bit >> 3] & (1 << (bit & 7)))

    def population(self) -> int:
        """Number of set bits."""
        return sum(byte.bit_count() for byte in self._bits)

    def _charge(self) -> None:
        if self.stats is not None:
            self.stats.charge_cpu("bitmap")
