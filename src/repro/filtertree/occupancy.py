"""Closed-form level occupancy for uniform squares (equation 2).

For a data set of ``d x d`` squares uniformly distributed over the unit
square, the fraction of objects landing in level file ``i`` is::

    f_0    = d (2 - d)
    f_i    = 2^i d (2 - (3 * 2^i - 2) d)     for i = 1 .. k(d) - 1
    f_k(d) = (1 - (2^k - 1) d)^2

where ``k(d) = floor(-log2 d)`` is the lowest level any ``d x d``
object can fall to (the finest grid whose cells are still at least
``d`` wide).  The forms follow from ``P(level >= i) = (1 - (2^i - 1) d)^2``
— per dimension, the MBR avoids all ``2^i - 1`` interior grid lines —
and are consistent with the paper's ``f_0`` and ``f_k`` terms.
"""

from __future__ import annotations

import math


def lowest_level(d: float) -> int:
    """``k(d)``: the deepest level a ``d x d`` square can reach."""
    if not 0.0 < d <= 1.0:
        raise ValueError("square side d must be in (0, 1]")
    return max(0, math.floor(-math.log2(d)))


def probability_level_at_least(i: int, d: float) -> float:
    """``P(level >= i)`` for a uniform ``d x d`` square."""
    if i < 0:
        raise ValueError("level must be non-negative")
    if not 0.0 < d <= 1.0:
        raise ValueError("square side d must be in (0, 1]")
    per_dim = 1.0 - ((1 << i) - 1) * d
    if per_dim <= 0.0:
        return 0.0
    return per_dim * per_dim


def level_fraction(i: int, d: float) -> float:
    """``f_i``: fraction of uniform ``d x d`` squares in level file ``i``."""
    k = lowest_level(d)
    if i > k:
        return 0.0
    if i == k:
        return probability_level_at_least(k, d)
    return probability_level_at_least(i, d) - probability_level_at_least(i + 1, d)


def level_fractions(d: float, max_level: int | None = None) -> list[float]:
    """All occupancy fractions ``[f_0, ..., f_k(d)]``.

    When ``max_level`` is given, deeper levels are folded into the
    ``max_level`` entry (matching a capped :class:`LevelAssigner`).
    """
    k = lowest_level(d)
    fractions = [level_fraction(i, d) for i in range(k + 1)]
    if max_level is not None and k > max_level:
        folded = fractions[: max_level + 1]
        folded[max_level] += sum(fractions[max_level + 1 :])
        fractions = folded
    return fractions
