"""The fault subsystem: plans, injection, torn writes, retries, and the
storage-layer contracts they rely on (closed backends, sorter cleanup,
fault-free parity)."""

import dataclasses

import pytest

from repro.faults import (
    NO_FAULTS,
    FaultInjectingBackend,
    FaultPlan,
    PermanentIOError,
    RetriesExhaustedError,
    RetryingBackend,
    RetryPolicy,
    ScheduledFault,
    TornWriteError,
    TransientIOError,
)
from repro.obs import Observability
from repro.storage.backend import BackendClosedError, FileBackend, MemoryBackend
from repro.storage.iostats import IOStats
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.records import EntityDescriptorCodec

REC = (1, 0.1, 0.1, 0.2, 0.2, 0)


def make_backend(plan, stats=None, metrics=None):
    backend = FaultInjectingBackend(
        MemoryBackend(), plan, stats=stats, metrics=metrics
    )
    backend.create_file("f", EntityDescriptorCodec(), 4096)
    return backend


class TestScheduledFault:
    def test_fires_window(self):
        rule = ScheduledFault(op="write", kind="transient", first=2, last=3)
        assert not rule.fires("write", 1, "f")
        assert rule.fires("write", 2, "f")
        assert rule.fires("write", 3, "f")
        assert not rule.fires("write", 4, "f")
        assert not rule.fires("read", 2, "f")

    def test_open_ended_and_file_filter(self):
        rule = ScheduledFault(op="read", kind="permanent", first=5, file="x")
        assert rule.fires("read", 500, "x")
        assert not rule.fires("read", 500, "y")

    def test_validation(self):
        with pytest.raises(ValueError, match="op"):
            ScheduledFault(op="delete", kind="transient")
        with pytest.raises(ValueError, match="kind"):
            ScheduledFault(op="write", kind="weird")
        with pytest.raises(ValueError, match="torn"):
            ScheduledFault(op="read", kind="torn")
        with pytest.raises(ValueError, match="1-based"):
            ScheduledFault(op="write", kind="torn", first=0)
        with pytest.raises(ValueError, match="last"):
            ScheduledFault(op="write", kind="torn", first=5, last=4)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="transient_read_rate"):
            FaultPlan(transient_read_rate=1.5)
        with pytest.raises(ValueError, match="max_faults"):
            FaultPlan(max_faults=-1)
        with pytest.raises(ValueError, match="delay_s"):
            FaultPlan(delay_s=-0.1)

    def test_random_enabled_needs_seed_and_rate(self):
        assert not FaultPlan(seed=1).random_enabled
        assert not FaultPlan(transient_read_rate=0.5).random_enabled
        assert FaultPlan(seed=1, transient_read_rate=0.5).random_enabled
        assert not NO_FAULTS.injects_storage_faults
        assert FaultPlan.failing_writes(3).injects_storage_faults

    def test_plan_is_picklable_and_hashable(self):
        import pickle

        plan = FaultPlan(
            seed=7,
            torn_write_rate=0.1,
            schedule=(ScheduledFault(op="write", kind="torn"),),
            crash_shards=("cell-0",),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))

    def test_crash_and_delay_queries(self):
        plan = FaultPlan(
            crash_shards=("cell-0",),
            crash_attempts=2,
            delay_shards=("cell-1",),
            delay_s=0.5,
        )
        assert plan.crashes_shard("cell-0", 1)
        assert plan.crashes_shard("cell-0", 2)
        assert not plan.crashes_shard("cell-0", 3)
        assert not plan.crashes_shard("cell-1", 1)
        assert plan.delays_shard("cell-1", 1)
        assert not plan.delays_shard("cell-1", 2)


class TestInjection:
    def test_scheduled_write_failures(self):
        backend = make_backend(FaultPlan.failing_writes(2))
        backend.write_page("f", 0, [REC])
        backend.write_page("f", 1, [REC])
        with pytest.raises(PermanentIOError, match="injected"):
            backend.write_page("f", 2, [REC])

    def test_transient_is_injected_before_side_effects(self):
        plan = FaultPlan(
            schedule=(ScheduledFault(op="write", kind="transient", last=1),)
        )
        backend = make_backend(plan)
        with pytest.raises(TransientIOError):
            backend.write_page("f", 0, [REC])
        # Nothing persisted: the retry writes the full page.
        backend.write_page("f", 0, [REC])
        assert backend.read_page("f", 0) == [REC]

    def test_random_stream_is_deterministic(self):
        def run():
            plan = FaultPlan(seed=11, transient_write_rate=0.3)
            backend = make_backend(plan)
            failed = []
            for page in range(40):
                try:
                    backend.write_page("f", page, [REC])
                except TransientIOError:
                    failed.append(page)
            return failed

        first, second = run(), run()
        assert first == second
        assert first  # the 0.3 rate must actually fire in 40 calls

    def test_max_faults_caps_random_but_not_scheduled(self):
        plan = FaultPlan(
            seed=1,
            transient_write_rate=1.0,
            max_faults=2,
            schedule=(ScheduledFault(op="write", kind="permanent", first=30),),
        )
        backend = make_backend(plan)
        failures = 0
        for page in range(29):
            try:
                backend.write_page("f", page, [REC])
            except TransientIOError:
                failures += 1
        assert failures == 2  # capped
        with pytest.raises(PermanentIOError):  # schedule still honored
            backend.write_page("f", 99, [REC])

    def test_fault_latency_charged_to_ledger(self):
        stats = IOStats()
        plan = FaultPlan(
            latency_ops=3,
            schedule=(ScheduledFault(op="write", kind="transient", last=1),),
        )
        backend = make_backend(plan, stats=stats)
        with pytest.raises(TransientIOError):
            backend.write_page("f", 0, [REC])
        assert stats.total.cpu_ops.get("fault_latency") == 3

    def test_injection_metrics(self):
        obs = Observability()
        plan = FaultPlan.failing_writes(0, kind="transient")
        backend = make_backend(plan, metrics=obs.metrics)
        with pytest.raises(TransientIOError):
            backend.write_page("f", 0, [REC])
        assert obs.metrics.counter_total("faults.injected") == 1
        assert backend.log.injected["transient"] == 1
        assert backend.log.calls["write"] == 1


class TestTornWrites:
    def plan(self):
        return FaultPlan(schedule=(ScheduledFault(op="write", kind="torn", last=1),))

    def records(self, n):
        return [(i, 0.1, 0.1, 0.2, 0.2, 0) for i in range(n)]

    def test_torn_write_detected_on_read(self):
        backend = make_backend(self.plan())
        backend.write_page("f", 0, self.records(4))  # torn: silent success
        with pytest.raises(TornWriteError, match="torn write"):
            backend.read_page("f", 0)

    def test_torn_write_persists_only_a_prefix(self):
        inner = MemoryBackend()
        backend = FaultInjectingBackend(inner, self.plan())
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        backend.write_page("f", 0, self.records(4))
        assert inner.read_page("f", 0) == self.records(4)[:2]

    def test_full_rewrite_heals_the_page(self):
        backend = make_backend(self.plan())
        backend.write_page("f", 0, self.records(4))  # torn
        backend.write_page("f", 0, self.records(4))  # full rewrite
        assert backend.read_page("f", 0) == self.records(4)

    def test_detection_survives_rename(self):
        backend = make_backend(self.plan())
        backend.write_page("f", 0, self.records(4))
        backend.rename_file("f", "g")
        with pytest.raises(TornWriteError):
            backend.read_page("g", 0)

    def test_torn_error_is_permanent_not_retryable(self):
        backend = make_backend(self.plan())
        retrying = RetryingBackend(backend, RetryPolicy(max_attempts=5))
        retrying.write_page("f", 0, self.records(4))
        with pytest.raises(TornWriteError):  # not RetriesExhaustedError
            retrying.read_page("f", 0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_backoff_deterministic_and_exponential(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=2.0, jitter=0.25)
        first = policy.backoff_s(1, "f:0")
        assert first == policy.backoff_s(1, "f:0")  # deterministic
        assert first != policy.backoff_s(1, "f:1")  # token-jittered
        assert 0.01 <= first <= 0.01 * 1.25
        assert 0.02 <= policy.backoff_s(2, "f:0") <= 0.02 * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=3.0, jitter=0.0)
        assert policy.backoff_s(2, "anything") == pytest.approx(0.03)


class TestRetryingBackend:
    def window_plan(self, fail_first_n):
        """Writes 1..n fail transiently; later calls succeed."""
        return FaultPlan(
            schedule=(
                ScheduledFault(op="write", kind="transient", last=fail_first_n),
            )
        )

    def test_transparent_recovery(self):
        obs = Observability()
        inner = FaultInjectingBackend(MemoryBackend(), self.window_plan(2))
        inner.create_file("f", EntityDescriptorCodec(), 4096)
        backend = RetryingBackend(inner, RetryPolicy(max_attempts=3), obs=obs)
        backend.write_page("f", 0, [REC])  # attempts 1,2 fail, 3 succeeds
        assert backend.read_page("f", 0) == [REC]
        assert obs.metrics.counter_total("faults.retries_attempted") == 2
        assert obs.metrics.counter_total("faults.retries_succeeded") == 1
        assert obs.metrics.counter_total("faults.giveups") == 0
        assert backend.simulated_backoff_s > 0

    def test_gives_up_loudly(self):
        obs = Observability()
        inner = FaultInjectingBackend(MemoryBackend(), self.window_plan(10))
        inner.create_file("f", EntityDescriptorCodec(), 4096)
        backend = RetryingBackend(inner, RetryPolicy(max_attempts=3), obs=obs)
        with pytest.raises(RetriesExhaustedError) as info:
            backend.write_page("f", 0, [REC])
        assert isinstance(info.value.__cause__, TransientIOError)
        assert obs.metrics.counter_total("faults.giveups") == 1

    def test_permanent_faults_pass_straight_through(self):
        inner = FaultInjectingBackend(MemoryBackend(), FaultPlan.failing_writes(0))
        inner.create_file("f", EntityDescriptorCodec(), 4096)
        backend = RetryingBackend(inner, RetryPolicy(max_attempts=5))
        with pytest.raises(PermanentIOError):
            backend.write_page("f", 0, [REC])

    def test_retry_span_events_emitted(self):
        obs = Observability()
        inner = FaultInjectingBackend(MemoryBackend(), self.window_plan(1))
        inner.create_file("f", EntityDescriptorCodec(), 4096)
        backend = RetryingBackend(inner, RetryPolicy(max_attempts=2), obs=obs)
        with obs.tracer.span("test"):
            backend.write_page("f", 0, [REC])
        dumps = obs.tracer.to_dicts()
        flat = str(dumps)
        assert "retry:write" in flat


class TestManagerIntegration:
    def test_config_installs_wrappers(self):
        config = StorageConfig(
            fault_plan=FaultPlan.failing_writes(0), retry=RetryPolicy()
        )
        with StorageManager(config) as manager:
            assert isinstance(manager.backend, RetryingBackend)
            assert isinstance(manager.backend.inner, FaultInjectingBackend)

    def test_no_wrappers_by_default(self):
        with StorageManager(StorageConfig()) as manager:
            assert isinstance(manager.backend, MemoryBackend)

    def test_fault_free_parity_under_retry_layer(self):
        """Retry layer + zero-fault plan => identical pairs and an
        identical simulated ledger, phase by phase."""
        from repro.join.api import spatial_join
        from tests.conftest import make_squares

        a = make_squares(80, 0.04, seed=5, name="A")
        b = make_squares(80, 0.05, seed=6, name="B")
        base_config = StorageConfig(buffer_pages=24)
        layered_config = dataclasses.replace(
            base_config, retry=RetryPolicy(max_attempts=4), fault_plan=NO_FAULTS
        )
        plain = spatial_join(a, b, algorithm="s3j", storage=base_config)
        layered = spatial_join(a, b, algorithm="s3j", storage=layered_config)
        assert layered.pairs == plain.pairs
        assert {
            name: stats.to_dict() for name, stats in layered.metrics.phases.items()
        } == {
            name: stats.to_dict() for name, stats in plain.metrics.phases.items()
        }
        assert layered.metrics.breakdown() == plain.metrics.breakdown()

    def test_fault_free_run_emits_no_fault_metrics(self):
        """The retry wrapper adds nothing on the happy path: no
        ``faults.*`` counter ever appears."""
        from repro.join.api import spatial_join
        from tests.conftest import make_squares

        a = make_squares(60, 0.04, seed=5, name="A")
        b = make_squares(60, 0.05, seed=6, name="B")
        obs = Observability()
        config = StorageConfig(
            buffer_pages=24, retry=RetryPolicy(), fault_plan=NO_FAULTS
        )
        spatial_join(a, b, algorithm="s3j", storage=config, obs=obs)
        for metric in (
            "faults.injected",
            "faults.retries_attempted",
            "faults.retries_succeeded",
            "faults.giveups",
        ):
            assert obs.metrics.counter_total(metric) == 0


class TestClosedBackendContract:
    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_close_is_idempotent(self, kind, tmp_path):
        backend = (
            MemoryBackend() if kind == "memory" else FileBackend(tmp_path)
        )
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        backend.write_page("f", 0, [REC])
        backend.close()
        backend.close()  # must not raise

    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_operations_on_closed_backend_raise(self, kind, tmp_path):
        backend = (
            MemoryBackend() if kind == "memory" else FileBackend(tmp_path)
        )
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        backend.write_page("f", 0, [REC])
        backend.close()
        with pytest.raises(BackendClosedError):
            backend.read_page("f", 0)
        with pytest.raises(BackendClosedError):
            backend.write_page("f", 0, [REC])
        with pytest.raises(BackendClosedError):
            backend.create_file("g", EntityDescriptorCodec(), 4096)
        with pytest.raises(BackendClosedError):
            backend.delete_file("f")
        with pytest.raises(BackendClosedError):
            backend.rename_file("f", "g")

    def test_file_backend_flushes_on_close(self, tmp_path):
        backend = FileBackend(tmp_path)
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        backend.write_page("f", 0, [REC])
        backend.close()
        fresh = FileBackend(tmp_path)
        fresh._codecs["f"] = EntityDescriptorCodec()
        fresh._page_sizes["f"] = 4096
        assert fresh.read_page("f", 0) == [REC]


class TestSorterCleanup:
    def fill(self, manager, records=600):
        handle = manager.create_file("input")
        for i in range(records):
            handle.append((i, 0.1, 0.1, 0.2, 0.2, 0))
        return handle

    def run_names(self, manager):
        return [
            name
            for name in manager.list_files()
            if name.startswith("__sort-run")
        ]

    def test_failed_sort_drops_temp_runs(self):
        from repro.faults import FaultIOError
        from repro.sorting.external_sort import ExternalSorter

        # Filling 600 records write-behinds pages 0..6 (7 writes; the
        # partial tail stays buffered).  Sorting with 2 memory pages
        # spills 170-record runs: run 1 persists via writes #8/#9, and
        # run 2's write-behind is #10 — where the one-write fault window
        # sits, so the sort dies mid-run-formation with one run fully on
        # the backend.  Writes #11+ succeed again, so the closing flush
        # and the retried sort exercise the healthy path.
        config = StorageConfig(
            buffer_pages=16,
            fault_plan=FaultPlan(
                schedule=(
                    ScheduledFault(op="write", kind="permanent", first=10, last=10),
                )
            ),
        )
        with StorageManager(config) as manager:
            handle = self.fill(manager)
            assert manager.backend.log.calls["write"] == 7  # pin the layout
            sorter = ExternalSorter(manager, memory_pages=2)
            with pytest.raises(FaultIOError):
                sorter.sort(handle, "sorted", key=lambda r: r[0])
            assert self.run_names(manager) == []
            assert "input" in manager.list_files()
            # The storage is still usable: the same input sorts fine now.
            result = sorter.sort(handle, "sorted", key=lambda r: r[0])
            assert list(result.output.scan()) == sorted(handle.scan())
            assert self.run_names(manager) == []

    def test_successful_sort_leaves_no_runs(self):
        from repro.sorting.external_sort import ExternalSorter

        with StorageManager(StorageConfig(buffer_pages=16)) as manager:
            handle = self.fill(manager, records=400)
            sorter = ExternalSorter(manager, memory_pages=2)
            sorter.sort(handle, "sorted", key=lambda r: r[0])
            assert self.run_names(manager) == []
            assert "sorted" in manager.list_files()
