"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures.  The interesting
measurements are the *simulated* quantities (page I/Os, per-phase
response times on the modeled 1997 testbed), reported via
``benchmark.extra_info`` and printed; wall-clock timings from
pytest-benchmark are secondary.

``REPRO_SCALE`` (default 0.2) shrinks entity counts; page capacities
shrink with them so the memory geometry — and therefore every shape
result — matches the full-size paper experiments (see
repro.experiments.runner).
"""

from __future__ import annotations

import pytest

from repro.datagen.paper import default_scale
from repro.experiments.table4 import run_workload
from repro.experiments.workloads import Workload

_row_cache: dict[tuple[str, float], dict] = {}


@pytest.fixture(scope="session")
def repro_scale() -> float:
    return default_scale()


def cached_workload_row(workload: Workload, scale: float) -> dict:
    """Run (or reuse) one Table 4 workload row — several figures and the
    summary table share the same underlying joins."""
    key = (workload.name, scale)
    if key not in _row_cache:
        _row_cache[key] = run_workload(workload, scale)
    return _row_cache[key]


def print_phase_breakdown(title: str, rows: list[dict]) -> None:
    """Print a figure-8/9/10-style stacked phase breakdown."""
    print(f"\n--- {title} (simulated seconds per phase) ---")
    phases = ["partition_s", "sort_s", "join_s"]
    header = f"{'algorithm':<14}" + "".join(f"{p[:-2]:>12}" for p in phases) + f"{'total':>12}"
    print(header)
    for row in rows:
        cells = "".join(f"{row.get(p, 0.0):>12.2f}" for p in phases)
        print(f"{row['algorithm']:<14}{cells}{row['time_s']:>12.2f}")
