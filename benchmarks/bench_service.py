"""E-SVC — throughput of the long-lived join service over real TCP.

Boots a :class:`~repro.service.server.ServiceServer` on an ephemeral
port, drives it with concurrent JSON-lines clients issuing a mixed
point/window/insert/delete stream, and measures real host wall-clock
throughput (``service_qps``).  Every client response is sanity-checked:
a non-ok query status or a server-side error fails the benchmark — a
service that sheds load under this light drive is broken, not slow.

The run flows through :mod:`repro.obs` like any batch join: service
lifecycle events (queries, mutations, compactions) land in the event
log, and the benchmark renders a full :class:`RunReport` from them, so
``repro report`` works on a service run artifact.

Emits ``BENCH_service.json`` (gated on ``service_qps`` by
``benchmarks.trajectory`` with a wide collapse-only threshold — the
absolute number is host-dependent) plus ``REPORT_service.json``::

    python -m benchmarks.bench_service [--entities 1500] [--clients 4]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time

from repro.join.metrics import JoinMetrics
from repro.join.result import JoinResult
from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.report import build_run_report
from repro.service import (
    JoinService,
    PersistentIndex,
    ServiceConfig,
    ServiceServer,
)

from benchmarks.artifacts import bench_artifact_dir, write_bench_artifact
from tests.conftest import make_squares

NUM_ENTITIES = int(os.environ.get("REPRO_SERVICE_N", "1500"))
NUM_CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "4"))
OPS_PER_CLIENT = int(os.environ.get("REPRO_SERVICE_OPS", "120"))


async def _client(
    host: str, port: int, client_id: int, ops: int
) -> tuple[int, list[str]]:
    """One JSON-lines client; returns (completed ops, failures)."""
    rng = random.Random(1000 + client_id)
    reader, writer = await asyncio.open_connection(host, port)
    failures: list[str] = []
    completed = 0
    next_eid = 10_000_000 + client_id * 100_000  # private eid range
    owned: list[int] = []

    async def ask(request: dict) -> dict:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    for op_no in range(ops):
        choice = rng.random()
        if choice < 0.10:
            x, y = rng.uniform(0.0, 0.9), rng.uniform(0.0, 0.9)
            side = rng.uniform(0.005, 0.03)
            response = await ask(
                {"op": "insert", "eid": next_eid, "xlo": x, "ylo": y,
                 "xhi": x + side, "yhi": y + side}
            )
            if response.get("ok"):
                owned.append(next_eid)
            else:
                failures.append(f"client {client_id} op {op_no}: {response}")
            next_eid += 1
        elif choice < 0.15 and owned:
            response = await ask({"op": "delete", "eid": owned.pop()})
            if not response.get("ok"):
                failures.append(f"client {client_id} op {op_no}: {response}")
        elif choice < 0.60:
            response = await ask(
                {"op": "point", "x": rng.uniform(0, 1), "y": rng.uniform(0, 1)}
            )
            if response.get("status") != "ok":
                failures.append(f"client {client_id} op {op_no}: {response}")
        else:
            xlo, ylo = rng.uniform(0.0, 0.8), rng.uniform(0.0, 0.8)
            response = await ask(
                {"op": "window", "xlo": xlo, "ylo": ylo,
                 "xhi": xlo + 0.1, "yhi": ylo + 0.1}
            )
            if response.get("status") != "ok":
                failures.append(f"client {client_id} op {op_no}: {response}")
        completed += 1
    writer.close()
    await writer.wait_closed()
    return completed, failures


async def drive(entities: int, clients: int, ops: int) -> tuple[dict, list[str]]:
    """Boot the server, run the client fleet, assemble the payload."""
    dataset = make_squares(entities, 0.004, seed=20260807, name="SVC-BENCH")
    obs = Observability(events=EventLog())
    index = PersistentIndex(
        dataset.entities, obs=obs, compaction_threshold=64
    )
    service = JoinService(index, ServiceConfig(max_inflight=16))
    server = ServiceServer(service)
    host, port = await server.start()
    failures: list[str] = []
    try:
        start = time.perf_counter()
        results = await asyncio.gather(
            *(_client(host, port, i, ops) for i in range(clients))
        )
        wall = time.perf_counter() - start

        join_start = time.perf_counter()
        join = await service.join()
        join_wall = time.perf_counter() - join_start
        if join.status != "ok":
            failures.append(f"final join not ok: {join.status}")
        pairs = join.pairs or frozenset()

        total_ops = sum(completed for completed, _ in results)
        for _, client_failures in results:
            failures.extend(client_failures)
        stats = service.stats()
        payload = {
            "entities": entities,
            "clients": clients,
            "ops_per_client": ops,
            "total_ops": total_ops,
            "wall_s": wall,
            "service_qps": total_ops / wall if wall > 0 else 0.0,
            "join_wall_s": join_wall,
            "join_pairs": len(pairs),
            "compactions": stats["compactions"],
            "final_epoch": stats["epoch"],
            "cache": stats["cache"],
        }
    finally:
        await server.stop()

    # The service run renders through the same observatory as a batch
    # join: the ledger's phase buckets become the metrics, the event
    # log becomes the timeline/analytics.
    metrics = JoinMetrics(
        algorithm="service",
        phase_names=("load", "query", "compaction"),
        phases=index.storage.stats.phase_snapshot(),
        cost_model=index.storage.cost_model,
    )
    result = JoinResult(pairs=pairs, metrics=metrics, self_join=True)
    report = build_run_report(
        result,
        obs,
        workload="service-drive",
        wall_seconds=payload["wall_s"],
        clients=clients,
        service_qps=payload["service_qps"],
    )
    report_path = bench_artifact_dir() / "REPORT_service.json"
    report.save(report_path)
    payload["report"] = str(report_path)
    index.close()
    return payload, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=NUM_ENTITIES)
    parser.add_argument("--clients", type=int, default=NUM_CLIENTS)
    parser.add_argument("--ops", type=int, default=OPS_PER_CLIENT)
    args = parser.parse_args(argv)

    payload, failures = asyncio.run(
        drive(args.entities, args.clients, args.ops)
    )
    print(
        f"service    entities={payload['entities']:<6} "
        f"clients={payload['clients']} "
        f"ops={payload['total_ops']:<5} "
        f"wall={payload['wall_s']:.3f}s "
        f"qps={payload['service_qps']:,.0f}  "
        f"join={payload['join_wall_s']:.3f}s "
        f"({payload['join_pairs']} pairs, "
        f"{payload['compactions']} compactions)"
    )
    path = write_bench_artifact("service", payload)
    if failures:
        for failure in failures[:10]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"service OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
