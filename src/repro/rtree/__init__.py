"""In-memory R-tree (Guttman 1984).

SHJ's join phase "reads one partition into main memory, builds an
R-tree index on it, and processes the second partition by probing the
index with each entity" (section 2.2).  This subpackage provides that
R-tree (quadratic-split insertion, window search, an STR bulk-load
variant) plus the synchronized R-tree spatial join of Brinkhoff et
al. [BKS93] surveyed in section 2.
"""

from repro.rtree.join import rtree_join
from repro.rtree.rtree import RTree

__all__ = ["RTree", "rtree_join"]
