"""Per-phase join metrics (the paper's Table 2 and Table 4 quantities).

Each algorithm accounts its work into named phases:

=========  =========================================================
algorithm  phases (Table 2)
=========  =========================================================
S3J        partition, sort, join
PBSM       partition, join, sort
SHJ        partition, join
=========  =========================================================

and reports replication factors ``r_A``/``r_B`` (equation 9: data set
size after replication and filtering over original size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.costs import CostModel
from repro.storage.iostats import PhaseStats


@dataclass
class JoinMetrics:
    """Everything measured about one join execution."""

    algorithm: str
    phase_names: tuple[str, ...]
    phases: dict[str, PhaseStats]
    cost_model: CostModel
    replication_a: float = 1.0
    replication_b: float = 1.0
    details: dict[str, Any] = field(default_factory=dict)

    def phase_time(self, name: str) -> float:
        """Simulated seconds spent in one phase (0 for absent phases)."""
        stats = self.phases.get(name)
        if stats is None:
            return 0.0
        return self.cost_model.response_time(stats)

    def phase_ios(self, name: str) -> int:
        """Physical page transfers in one phase (0 for absent phases)."""
        stats = self.phases.get(name)
        return 0 if stats is None else stats.total_ios

    @property
    def response_time(self) -> float:
        """Total simulated response time (sum over the phases)."""
        return sum(self.phase_time(name) for name in self.phase_names)

    @property
    def total_ios(self) -> int:
        """Total physical page reads + writes across all phases."""
        return sum(self.phase_ios(name) for name in self.phase_names)

    @property
    def total_reads(self) -> int:
        return sum(
            self.phases[name].page_reads for name in self.phase_names if name in self.phases
        )

    @property
    def total_writes(self) -> int:
        return sum(
            self.phases[name].page_writes for name in self.phase_names if name in self.phases
        )

    @property
    def replication_total(self) -> float:
        """The paper's Table 4 column ``r_A + r_B``."""
        return self.replication_a + self.replication_b

    def breakdown(self) -> dict[str, float]:
        """Phase -> simulated seconds, in the algorithm's phase order."""
        return {name: self.phase_time(name) for name in self.phase_names}

    def describe(self) -> str:
        """A compact human-readable summary line."""
        phases = ", ".join(
            f"{name}={seconds:.2f}s" for name, seconds in self.breakdown().items()
        )
        return (
            f"{self.algorithm}: total={self.response_time:.2f}s "
            f"ios={self.total_ios} r_A={self.replication_a:.2f} "
            f"r_B={self.replication_b:.2f} [{phases}]"
        )
