"""Tests for Partition Based Spatial Merge Join."""

import pytest

from repro.baselines.pbsm import (
    PartitionBasedSpatialMergeJoin,
    _mix32,
    suggested_partitions,
)
from repro.geometry.rect import Rect
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import brute_force_pairs, brute_force_self_pairs, make_squares


def run_pbsm(dataset_a, dataset_b, buffer_pages=32, **params):
    with StorageManager(StorageConfig(buffer_pages=buffer_pages)) as storage:
        file_a = dataset_a.write_descriptors(storage, "in-a")
        file_b = dataset_b.write_descriptors(storage, "in-b")
        storage.phase_boundary()
        storage.stats.reset()
        algo = PartitionBasedSpatialMergeJoin(storage, **params)
        return algo.join(file_a, file_b, self_join=dataset_a is dataset_b)


class TestCorrectness:
    def test_matches_brute_force(self):
        a = make_squares(300, 0.03, seed=1, name="A")
        b = make_squares(300, 0.05, seed=2, name="B")
        assert run_pbsm(a, b).pairs == brute_force_pairs(a, b)

    def test_self_join(self):
        a = make_squares(250, 0.04, seed=3)
        assert run_pbsm(a, a).pairs == brute_force_self_pairs(a)

    def test_empty_input(self):
        a = make_squares(0, 0.1, seed=4, name="A")
        b = make_squares(50, 0.1, seed=5, name="B")
        assert run_pbsm(a, b).pairs == frozenset()

    @pytest.mark.parametrize("tiles", [1, 4, 16, 64])
    def test_any_tile_count_correct(self, tiles):
        """Too few or too many tiles hurt performance, never
        correctness (section 2.1)."""
        a = make_squares(200, 0.04, seed=6, name="A")
        b = make_squares(200, 0.04, seed=7, name="B")
        assert run_pbsm(a, b, tiles_per_dim=tiles).pairs == brute_force_pairs(a, b)

    @pytest.mark.parametrize("mapping", ["round_robin", "hash"])
    def test_both_mappings_correct(self, mapping):
        a = make_squares(200, 0.04, seed=8, name="A")
        b = make_squares(200, 0.04, seed=9, name="B")
        assert run_pbsm(a, b, mapping=mapping).pairs == brute_force_pairs(a, b)

    def test_forced_repartitioning_correct(self):
        """A single partition much bigger than memory must repartition
        and still produce the exact result."""
        a = make_squares(800, 0.03, seed=10, name="A")
        b = make_squares(800, 0.03, seed=11, name="B")
        result = run_pbsm(a, b, buffer_pages=16, num_partitions=1)
        assert result.pairs == brute_force_pairs(a, b)
        assert result.metrics.details["repartitioned_pairs"] >= 1

    def test_duplicates_eliminated(self):
        """Large entities replicated across many partitions yield
        duplicate candidates; the sort must remove them all."""
        big = make_squares(60, 0.3, seed=12, name="big")
        small = make_squares(200, 0.02, seed=13, name="small")
        result = run_pbsm(big, small, tiles_per_dim=16, num_partitions=8)
        assert result.metrics.replication_a > 1.5
        assert result.pairs == brute_force_pairs(big, small)


class TestParameters:
    def test_suggested_partitions_equation8(self):
        assert suggested_partitions(300, 300, 100) == 6
        assert suggested_partitions(10, 10, 100) == 1

    def test_suggested_partitions_capped_by_memory(self):
        assert suggested_partitions(10000, 10000, 20) <= 16

    def test_invalid_parameters(self, storage):
        with pytest.raises(ValueError):
            PartitionBasedSpatialMergeJoin(storage, tiles_per_dim=0)
        with pytest.raises(ValueError):
            PartitionBasedSpatialMergeJoin(storage, mapping="modulo")

    def test_phase_names(self):
        a = make_squares(100, 0.05, seed=14)
        result = run_pbsm(a, a)
        assert result.metrics.phase_names == ("partition", "join", "sort")


class TestReplication:
    def test_replication_grows_with_tiles(self):
        """Section 2.1 / figure 7: more tiles -> more replication."""
        a = make_squares(400, 0.05, seed=15, name="A")
        b = make_squares(400, 0.05, seed=16, name="B")
        coarse = run_pbsm(a, b, tiles_per_dim=8, num_partitions=16)
        fine = run_pbsm(a, b, tiles_per_dim=32, num_partitions=16)
        assert fine.metrics.replication_a > coarse.metrics.replication_a

    def test_points_never_replicate(self):
        from repro.geometry.entity import Entity
        from repro.join.dataset import SpatialDataset

        points = SpatialDataset(
            "pts",
            [
                Entity.from_geometry(i, Rect.point(i / 300.0, (i * 7 % 300) / 300.0))
                for i in range(300)
            ],
        )
        result = run_pbsm(points, points, tiles_per_dim=16)
        assert result.metrics.replication_a == 1.0

    def test_replication_factor_accounting(self):
        """r_f = records written / original records (equation 9)."""
        a = make_squares(300, 0.08, seed=17, name="A")
        b = make_squares(300, 0.08, seed=18, name="B")
        result = run_pbsm(a, b, tiles_per_dim=16)
        assert result.metrics.replication_a >= 1.0
        assert result.metrics.replication_b >= 1.0


class TestFiltering:
    def test_entities_outside_tile_space_filtered(self):
        """With the tile space restricted to A's extent, B entities
        entirely outside it are dropped (the filtering feature)."""
        import random

        from repro.geometry.entity import Entity
        from repro.join.dataset import SpatialDataset

        rng = random.Random(19)
        left = SpatialDataset(
            "left",
            [
                Entity.from_geometry(
                    i,
                    Rect(
                        x := rng.uniform(0, 0.28),
                        y := rng.uniform(0, 0.95),
                        x + 0.02,
                        y + 0.02,
                    ),
                )
                for i in range(200)
            ],
        )
        right = SpatialDataset(
            "right",
            [
                Entity.from_geometry(
                    i,
                    Rect(
                        x := rng.uniform(0.5, 0.93),
                        y := rng.uniform(0, 0.95),
                        x + 0.02,
                        y + 0.02,
                    ),
                )
                for i in range(200)
            ],
        )
        result = run_pbsm(
            left, right, tile_space=Rect(0.0, 0.0, 0.3, 1.0)
        )
        assert result.pairs == frozenset()
        assert result.metrics.details["filtered_b"] == 200
        assert result.metrics.replication_b == 0.0


class TestMix32:
    def test_deterministic(self):
        assert _mix32(12345) == _mix32(12345)

    def test_range(self):
        for value in (0, 1, 2**31, 2**40):
            assert 0 <= _mix32(value) <= 0xFFFFFFFF

    def test_breaks_arithmetic_progressions(self):
        """Tiles in one partition form progressions; their hash mod 2
        must split roughly evenly (the repartitioning-degeneracy bug)."""
        values = [(_mix32(t) % 2) for t in range(3, 4000, 10)]
        ones = sum(values)
        assert 0.4 < ones / len(values) < 0.6
