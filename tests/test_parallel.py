"""Tests for the Hilbert-sharded parallel join (repro.parallel)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.join.dataset import SpatialDataset
from repro.obs import Observability
from repro.parallel import (
    default_shard_level,
    parallel_spatial_join,
    plan_shards,
)
from repro.parallel.planner import RESIDUAL_A, RESIDUAL_B
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import brute_force_pairs, brute_force_self_pairs, make_squares

ALGORITHMS = ("s3j", "pbsm", "shj")
WORKER_COUNTS = (1, 2, 4)


def small_inputs():
    return (
        make_squares(120, side=0.01, seed=1, name="A"),
        make_squares(150, side=0.02, seed=2, name="B"),
    )


class TestShardLevel:
    def test_default_levels(self):
        assert default_shard_level(1) == 1
        assert default_shard_level(2) == 1
        assert default_shard_level(4) == 1
        assert default_shard_level(5) == 2
        assert default_shard_level(16) == 2
        assert default_shard_level(17) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_shard_level(0)


class TestPlanner:
    def test_routing_is_exhaustive_and_disjoint(self):
        dataset_a, dataset_b = small_inputs()
        plan = plan_shards(dataset_a, dataset_b, shard_level=1)
        assert plan.routed_a + plan.residual_a == len(dataset_a)
        assert plan.routed_b + plan.residual_b == len(dataset_b)
        # No replication across cell shards: each routed entity appears
        # in exactly one cell task (the residual-B task reuses the
        # routed A entities by design — that is decomposition, not
        # replication into overlapping cell sub-joins).
        cell_a = [e.eid for t in plan.tasks if t.kind == "cell" for e in t.dataset_a]
        assert len(cell_a) == len(set(cell_a)) == plan.routed_a

    def test_boundary_touch_goes_residual(self):
        """An MBR touching a shard grid line from below quantizes into
        a lower level and routes to the residual shard, never to two
        cells."""
        touching = Entity.from_geometry(0, Rect(0.2, 0.2, 0.5, 0.3))
        inside = Entity.from_geometry(1, Rect(0.6, 0.6, 0.61, 0.61))
        dataset = SpatialDataset("T", [touching, inside])
        plan = plan_shards(dataset, dataset, shard_level=1)
        residual = [t for t in plan.tasks if t.kind == RESIDUAL_A]
        assert plan.residual_a == 1
        assert [e.eid for e in residual[0].dataset_a] == [0]

    def test_self_join_has_no_residual_b_task(self):
        dataset, _ = small_inputs()
        plan = plan_shards(dataset, dataset, shard_level=2)
        kinds = [t.kind for t in plan.tasks]
        assert RESIDUAL_B not in kinds

    def test_plan_is_worker_independent(self):
        dataset_a, dataset_b = small_inputs()
        one = plan_shards(dataset_a, dataset_b, shard_level=2)
        two = plan_shards(dataset_a, dataset_b, shard_level=2)
        assert [t.shard_id for t in one.tasks] == [t.shard_id for t in two.tasks]

    def test_invalid_shard_level(self):
        dataset_a, dataset_b = small_inputs()
        with pytest.raises(ValueError):
            plan_shards(dataset_a, dataset_b, shard_level=0)
        with pytest.raises(ValueError):
            plan_shards(dataset_a, dataset_b, shard_level=99)


class TestParity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_sharded_equals_serial_all_worker_counts(self, algorithm):
        dataset_a, dataset_b = small_inputs()
        serial = spatial_join(dataset_a, dataset_b, algorithm=algorithm)
        assert serial.pairs == brute_force_pairs(dataset_a, dataset_b)
        for workers in WORKER_COUNTS:
            sharded = parallel_spatial_join(
                dataset_a, dataset_b, algorithm=algorithm, workers=workers
            )
            assert sharded.pairs == serial.pairs

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_self_join_parity(self, algorithm):
        dataset = make_squares(140, side=0.015, seed=3, name="S")
        serial = spatial_join(dataset, dataset, algorithm=algorithm)
        sharded = parallel_spatial_join(
            dataset, dataset, algorithm=algorithm, workers=2
        )
        assert sharded.self_join
        assert sharded.pairs == serial.pairs == brute_force_self_pairs(dataset)

    def test_refine_parity(self):
        dataset_a, dataset_b = small_inputs()
        serial = spatial_join(dataset_a, dataset_b, refine=True)
        sharded = parallel_spatial_join(dataset_a, dataset_b, refine=True, workers=2)
        assert sharded.refined == serial.refined

    def test_deeper_shard_level_parity(self):
        dataset_a, dataset_b = small_inputs()
        serial = spatial_join(dataset_a, dataset_b)
        sharded = parallel_spatial_join(dataset_a, dataset_b, workers=2, shard_level=3)
        assert sharded.pairs == serial.pairs

    def test_empty_side_yields_empty_result(self):
        dataset_a = SpatialDataset("E", [])
        dataset_b = make_squares(20, side=0.01, seed=4, name="B")
        result = parallel_spatial_join(dataset_a, dataset_b, workers=2)
        assert result.pairs == frozenset()
        assert result.metrics.phase_names  # still carries Table-2 phases


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_metrics_identical_across_worker_counts(self, algorithm):
        dataset_a, dataset_b = small_inputs()
        dumps = [
            parallel_spatial_join(
                dataset_a, dataset_b, algorithm=algorithm, workers=workers
            ).metrics.to_dict()
            for workers in WORKER_COUNTS
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    def test_merged_ledger_is_sum_of_shards(self):
        dataset_a, dataset_b = small_inputs()
        metrics = parallel_spatial_join(dataset_a, dataset_b, workers=2).metrics
        shards = metrics.details["shards"]
        assert metrics.total_ios == sum(s["total_ios"] for s in shards)
        assert len(shards) == metrics.details["plan"]["tasks"]


class TestObservability:
    def test_span_grafting_and_metric_merge(self):
        dataset_a, dataset_b = small_inputs()
        obs = Observability()
        result = parallel_spatial_join(dataset_a, dataset_b, workers=2, obs=obs)
        (root,) = obs.tracer.roots
        assert root.name == "parallel_join"
        assert root.attrs["workers"] == 2
        assert root.attrs["candidate_pairs"] == len(result.pairs)
        shard_spans = [c for c in root.children if c.name.startswith("shard:")]
        assert len(shard_spans) == result.metrics.details["plan"]["tasks"]
        # every shard ran one nested spatial_join
        assert all(
            c.children and c.children[0].name == "spatial_join" for c in shard_spans
        )
        assert obs.metrics.counter_total("io.reads") > 0

    def test_uninstrumented_run_records_nothing(self):
        dataset_a, dataset_b = small_inputs()
        result = parallel_spatial_join(dataset_a, dataset_b, workers=2)
        assert result.metrics.details["parallel"] is True


class TestApiWiring:
    def test_spatial_join_workers_delegates(self):
        dataset_a, dataset_b = small_inputs()
        serial = spatial_join(dataset_a, dataset_b)
        sharded = spatial_join(dataset_a, dataset_b, workers=2)
        assert sharded.pairs == serial.pairs
        assert sharded.metrics.details.get("parallel") is True
        assert serial.metrics.details.get("parallel") is None

    def test_spatial_join_shard_level_alone_delegates(self):
        dataset_a, dataset_b = small_inputs()
        sharded = spatial_join(dataset_a, dataset_b, shard_level=2)
        assert sharded.metrics.details["plan"]["shard_level"] == 2

    def test_storage_manager_rejected(self):
        dataset_a, dataset_b = small_inputs()
        with StorageManager(StorageConfig()) as manager:
            with pytest.raises(ValueError):
                spatial_join(dataset_a, dataset_b, workers=2, storage=manager)
            with pytest.raises(ValueError):
                parallel_spatial_join(dataset_a, dataset_b, storage=manager)

    def test_explicit_config_honored(self):
        dataset_a, dataset_b = small_inputs()
        config = StorageConfig(page_size=1024, buffer_pages=32)
        result = parallel_spatial_join(dataset_a, dataset_b, storage=config, workers=2)
        assert result.pairs == brute_force_pairs(dataset_a, dataset_b)

    def test_bad_arguments(self):
        dataset_a, dataset_b = small_inputs()
        with pytest.raises(ValueError):
            parallel_spatial_join(dataset_a, dataset_b, workers=0)
        with pytest.raises(ValueError):
            parallel_spatial_join(dataset_a, dataset_b, algorithm="nope")


# -- property-based oracle ----------------------------------------------
#
# The same grid-aligned generator as the synchronized-scan oracle
# (boundary-touching MBRs decide cell vs residual routing), checked
# against a 2-worker sharded run end to end.

GRID = 16

entity_boxes = st.tuples(
    st.integers(0, GRID - 1), st.integers(0, GRID - 1),
    st.integers(0, GRID), st.integers(0, GRID),
).map(
    lambda t: Rect(
        t[0] / GRID,
        t[1] / GRID,
        (t[0] + min(t[2], GRID - t[0])) / GRID,
        (t[1] + min(t[3], GRID - t[1])) / GRID,
    )
)
box_lists = st.lists(entity_boxes, min_size=1, max_size=30)


def to_dataset(name, boxes, start_eid=0):
    return SpatialDataset(
        name,
        [Entity.from_geometry(start_eid + i, box) for i, box in enumerate(boxes)],
    )


class TestShardedOracle:
    @given(boxes_a=box_lists, boxes_b=box_lists)
    @settings(max_examples=10, deadline=None)
    def test_two_worker_join_matches_brute_force(self, boxes_a, boxes_b):
        dataset_a = to_dataset("A", boxes_a)
        dataset_b = to_dataset("B", boxes_b, start_eid=1000)
        result = parallel_spatial_join(dataset_a, dataset_b, workers=2)
        assert result.pairs == brute_force_pairs(dataset_a, dataset_b)
