"""Tests for the Filter Tree access method (the indexed counterpart of
S3J, [SK96])."""

import random

import pytest

from repro.filtertree.index import FilterTreeIndex
from repro.geometry.rect import Rect
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import brute_force_pairs, make_squares


@pytest.fixture
def built_index(storage):
    dataset = make_squares(400, 0.03, seed=1, name="D")
    index = FilterTreeIndex(storage, "ft").build(dataset)
    return dataset, index


class TestBuild:
    def test_size(self, built_index):
        dataset, index = built_index
        assert len(index) == len(dataset)

    def test_level_files_sorted_by_hilbert(self, built_index):
        from repro.storage.records import HKEY

        _, index = built_index
        for handle in index.level_files.values():
            keys = [r[HKEY] for r in handle.scan()]
            assert keys == sorted(keys)

    def test_double_build_raises(self, storage):
        dataset = make_squares(50, 0.05, seed=2)
        index = FilterTreeIndex(storage, "ft2").build(dataset)
        with pytest.raises(RuntimeError):
            index.build(dataset)

    def test_drop_releases_files(self, storage):
        dataset = make_squares(50, 0.05, seed=3)
        index = FilterTreeIndex(storage, "ft3").build(dataset)
        index.drop()
        assert len(index) == 0
        assert not any(name.startswith("ft3-") for name in storage.list_files())

    def test_mixed_sizes_spread_over_levels(self, storage):
        import itertools

        big = make_squares(30, 0.3, seed=4)
        small = make_squares(300, 0.005, seed=5)
        from repro.join.dataset import SpatialDataset

        entities = [
            type(e)(i, e.mbr, e.geometry)
            for i, e in enumerate(itertools.chain(big, small))
        ]
        dataset = SpatialDataset("mixed", entities)
        index = FilterTreeIndex(storage, "ft4").build(dataset)
        assert len(index.level_files) >= 3


class TestWindowQuery:
    def test_matches_linear_scan(self, built_index):
        dataset, index = built_index
        rng = random.Random(6)
        for _ in range(25):
            x, y = rng.uniform(0, 0.7), rng.uniform(0, 0.7)
            window = Rect(x, y, x + rng.uniform(0.05, 0.3), y + rng.uniform(0.05, 0.3))
            expected = sorted(
                e.eid for e in dataset if e.mbr.intersects(window)
            )
            assert sorted(index.window_query(window)) == expected

    def test_empty_window(self, storage):
        # A dataset confined to the left half; query the right half.
        import random as _random

        from repro.geometry.entity import Entity
        from repro.join.dataset import SpatialDataset

        rng = _random.Random(7)
        entities = []
        for i in range(200):
            x = rng.uniform(0.0, 0.35)
            y = rng.uniform(0.0, 0.9)
            entities.append(Entity.from_geometry(i, Rect(x, y, x + 0.02, y + 0.02)))
        index = FilterTreeIndex(storage, "ft5").build(
            SpatialDataset("left", entities)
        )
        assert index.window_query(Rect(0.6, 0.0, 0.9, 0.9)) == []

    def test_window_query_reads_fewer_pages_than_scan(self, storage):
        dataset = make_squares(3000, 0.01, seed=8)
        index = FilterTreeIndex(storage, "ft6").build(dataset)
        total_pages = sum(f.num_pages for f in index.level_files.values())
        storage.phase_boundary()
        storage.stats.reset()
        index.window_query(Rect(0.4, 0.4, 0.45, 0.45))
        assert storage.stats.total.page_reads < total_pages / 2

    def test_big_entities_found_from_high_levels(self, storage):
        from repro.geometry.entity import Entity
        from repro.join.dataset import SpatialDataset

        dataset = SpatialDataset(
            "one-big",
            [Entity.from_geometry(0, Rect(0.05, 0.05, 0.95, 0.95))],
        )
        index = FilterTreeIndex(storage, "ft7").build(dataset)
        assert index.window_query(Rect(0.9, 0.9, 0.92, 0.92)) == [0]


class TestIndexJoin:
    def test_matches_brute_force(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            a = make_squares(300, 0.04, seed=9, name="A")
            b = make_squares(300, 0.04, seed=10, name="B")
            index_a = FilterTreeIndex(storage, "ja").build(a)
            index_b = FilterTreeIndex(storage, "jb").build(b)
            storage.phase_boundary()
            pairs = index_a.join(index_b)
            assert pairs == brute_force_pairs(a, b)

    def test_matches_s3j(self):
        """The indexed join equals S3J's output — it *is* S3J's join
        phase over prebuilt level files."""
        from repro.join.api import spatial_join

        a = make_squares(250, 0.05, seed=11, name="A")
        b = make_squares(250, 0.05, seed=12, name="B")
        expected = spatial_join(a, b, algorithm="s3j").pairs
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            index_a = FilterTreeIndex(storage, "ja").build(a)
            index_b = FilterTreeIndex(storage, "jb").build(b)
            assert index_a.join(index_b) == expected

    def test_join_reads_each_page_once(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            a = make_squares(800, 0.02, seed=13, name="A")
            b = make_squares(800, 0.02, seed=14, name="B")
            index_a = FilterTreeIndex(storage, "ja").build(a)
            index_b = FilterTreeIndex(storage, "jb").build(b)
            storage.phase_boundary()
            storage.stats.reset()
            index_a.join(index_b, stats_phase="join")
            pages = sum(
                f.num_pages
                for f in list(index_a.level_files.values())
                + list(index_b.level_files.values())
            )
            assert storage.stats.phases["join"].page_reads == pages

    def test_mismatched_order_raises(self, storage):
        from repro.curves.hilbert import HilbertCurve

        a = make_squares(20, 0.1, seed=15)
        index_a = FilterTreeIndex(storage, "oa", curve=HilbertCurve(order=16)).build(a)
        index_b = FilterTreeIndex(storage, "ob", curve=HilbertCurve(order=8)).build(a)
        with pytest.raises(ValueError):
            index_a.join(index_b)
