"""Base class for spatial join algorithms.

All three algorithms operate on *descriptor files* (paged files of
entity descriptors already expanded for the predicate's margin) and
produce a set of candidate pairs plus per-phase metrics.  They are
predicate-agnostic: the filter step is always MBR intersection; the
refinement step happens above them (see :mod:`repro.join.api`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterator

from repro.join.metrics import JoinMetrics
from repro.join.result import JoinResult, canonical_pairs
from repro.storage.iostats import PhaseStats
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile


class SpatialJoinAlgorithm(ABC):
    """One join algorithm bound to a storage manager."""

    name: str = "abstract"
    phase_names: tuple[str, ...] = ()

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage
        self.obs = storage.obs
        # Numbered per storage manager, not per process: internal file
        # names (and therefore ledger labels and reports) depend only on
        # what this manager has run, never on process history.
        self._run_id = storage.next_sequence("run")

    def _file_name(self, suffix: str) -> str:
        """A collision-free per-run internal file name."""
        return f"{self.name}-{self._run_id}-{suffix}"

    @contextmanager
    def _phase(self, name: str) -> Iterator[PhaseStats]:
        """Open one accounting phase *and* its tracing span together.

        The ledger side is exactly ``stats.phase(name)`` — tracing on or
        off never changes a simulated count.  When tracing is enabled,
        the span additionally records the phase's simulated seconds as
        the cost-model delta of the phase's own bucket, so nested phases
        (e.g. PBSM repartitioning inside its join phase) attribute
        simulated time the same way the ledger attributes counts: to the
        innermost open phase.
        """
        tracer = self.obs.tracer
        cost = self.storage.cost_model
        with tracer.span(name, kind="phase") as span:
            with self.storage.stats.phase(name) as bucket:
                before = cost.response_time(bucket) if tracer.enabled else 0.0
                yield bucket
            if tracer.enabled:
                span.set(simulated_s=cost.response_time(bucket) - before)

    @abstractmethod
    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        """Execute the filter step and return raw candidate pairs plus
        metrics.  Raw pairs may contain mirrored duplicates for self
        joins; they are canonicalized by :meth:`join`."""

    def join(
        self, input_a: PagedFile, input_b: PagedFile, self_join: bool = False
    ) -> JoinResult:
        """Run the filter step and package the result."""
        raw_pairs, metrics = self.run_filter_step(input_a, input_b)
        return JoinResult(
            pairs=canonical_pairs(raw_pairs, self_join),
            metrics=metrics,
            self_join=self_join,
        )

    def _build_metrics(self, **extra: object) -> JoinMetrics:
        """Collect this run's phase stats from the storage ledger.

        Buckets are deep-copied (:meth:`IOStats.phase_snapshot`), so the
        metrics are frozen at collection time instead of aliasing the
        live ledger; *every* recorded phase is included, declared in
        :attr:`phase_names` or not, so extra instrumented sub-phases
        cannot drop I/O from the totals."""
        return JoinMetrics(
            algorithm=self.name,
            phase_names=self.phase_names,
            phases=self.storage.stats.phase_snapshot(),
            cost_model=self.storage.cost_model,
            details=dict(extra),
        )
