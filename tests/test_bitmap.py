"""Tests for Dynamic Spatial Bitmaps (section 3.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import DynamicSpatialBitmap
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats

CURVE = HilbertCurve(order=10)
ASSIGNER = LevelAssigner(order=10, max_level=10)


def project(bitmap, rect):
    level = ASSIGNER.level(rect)
    key = CURVE.key_of_normalized(*rect.center)
    return rect, key, level


def random_rects(rng, count, max_side=0.3):
    rects = []
    for _ in range(count):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1)
        side = rng.uniform(0, max_side)
        rects.append(Rect(x, y, min(1, x + side), min(1, y + side)))
    return rects


class TestConstruction:
    def test_sizes(self):
        bitmap = DynamicSpatialBitmap(8, CURVE)
        assert bitmap.num_bits == 4**8

    def test_pages_matches_paper(self):
        """Section 3.2's example: with pages of 2^12 bits, level 7 ->
        4 pages and level 8 -> 16 pages (2^(2l - p))."""
        page_bytes = (1 << 12) // 8
        assert DynamicSpatialBitmap(7, HilbertCurve(order=16)).pages(page_bytes) == 4
        assert DynamicSpatialBitmap(8, HilbertCurve(order=16)).pages(page_bytes) == 16

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            DynamicSpatialBitmap(14, CURVE)
        with pytest.raises(ValueError):
            DynamicSpatialBitmap(-1, CURVE)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            DynamicSpatialBitmap(4, CURVE, mode="approximate")

    def test_population_starts_empty(self):
        assert DynamicSpatialBitmap(6, CURVE).population() == 0


class TestSetAndProbe:
    @pytest.mark.parametrize("mode", ["precise", "fast"])
    def test_set_then_probe_same_entity(self, mode):
        bitmap = DynamicSpatialBitmap(5, CURVE, mode=mode)
        rect, key, level = project(bitmap, Rect(0.3, 0.3, 0.32, 0.32))
        bitmap.set_entity(rect, key, level)
        assert bitmap.admits(rect, key, level)

    @pytest.mark.parametrize("mode", ["precise", "fast"])
    def test_far_entity_filtered(self, mode):
        bitmap = DynamicSpatialBitmap(5, CURVE, mode=mode)
        rect, key, level = project(bitmap, Rect(0.1, 0.1, 0.12, 0.12))
        bitmap.set_entity(rect, key, level)
        far, far_key, far_level = project(bitmap, Rect(0.8, 0.8, 0.82, 0.82))
        assert not bitmap.admits(far, far_key, far_level)
        assert bitmap.filtered_count == 1

    def test_entity_above_bitmap_level_sets_region(self):
        """A level-1 entity on a level-4 bitmap covers many cells."""
        bitmap = DynamicSpatialBitmap(4, CURVE, mode="fast")
        rect = Rect(0.6, 0.6, 0.9, 0.9)  # inside quadrant (1,1), level 1
        _, key, level = project(bitmap, rect)
        assert level == 1
        bitmap.set_entity(rect, key, level)
        assert bitmap.population() == 4 ** (4 - 1)

    def test_precise_mode_sets_fewer_bits_than_fast(self):
        rect = Rect(0.6, 0.6, 0.65, 0.65)  # small but above level 4 cells?
        _, key, level = project(None, rect)
        fast = DynamicSpatialBitmap(6, CURVE, mode="fast")
        precise = DynamicSpatialBitmap(6, CURVE, mode="precise")
        fast.set_entity(rect, key, level)
        precise.set_entity(rect, key, level)
        assert precise.population() <= fast.population()

    def test_counters(self):
        bitmap = DynamicSpatialBitmap(5, CURVE)
        rect, key, level = project(bitmap, Rect(0.2, 0.2, 0.25, 0.25))
        bitmap.set_entity(rect, key, level)
        bitmap.admits(rect, key, level)
        assert bitmap.set_operations == 1
        assert bitmap.probe_operations == 1

    def test_charges_cpu(self):
        stats = IOStats()
        bitmap = DynamicSpatialBitmap(5, CURVE, stats=stats)
        rect, key, level = project(bitmap, Rect(0.2, 0.2, 0.25, 0.25))
        bitmap.set_entity(rect, key, level)
        assert stats.total.cpu_ops.get("bitmap", 0) > 0

    def test_is_set_bounds(self):
        bitmap = DynamicSpatialBitmap(3, CURVE)
        with pytest.raises(IndexError):
            bitmap.is_set(4**3)


class TestNoFalseNegatives:
    """The core DSB safety property: if an A entity and a B entity have
    intersecting MBRs, B must be admitted after A was set — in every
    mode combination and at every bitmap level."""

    @pytest.mark.parametrize("mode", ["precise", "fast"])
    @pytest.mark.parametrize("bitmap_level", [2, 4, 6])
    def test_random_workload(self, mode, bitmap_level):
        rng = random.Random(bitmap_level * 7 + len(mode))
        bitmap = DynamicSpatialBitmap(bitmap_level, CURVE, mode=mode)
        set_a = random_rects(rng, 120)
        for rect in set_a:
            _, key, level = project(bitmap, rect)
            bitmap.set_entity(rect, key, level)
        for rect in random_rects(rng, 200):
            if any(rect.intersects(other) for other in set_a):
                _, key, level = project(bitmap, rect)
                assert bitmap.admits(rect, key, level), rect

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_no_false_negatives(self, seed):
        rng = random.Random(seed)
        mode = rng.choice(["precise", "fast"])
        bitmap = DynamicSpatialBitmap(rng.choice([3, 5]), CURVE, mode=mode)
        set_a = random_rects(rng, 40)
        for rect in set_a:
            _, key, level = project(bitmap, rect)
            bitmap.set_entity(rect, key, level)
        probe = random_rects(rng, 40)
        for rect in probe:
            if any(rect.intersects(other) for other in set_a):
                _, key, level = project(bitmap, rect)
                assert bitmap.admits(rect, key, level)


class TestFilteringEffectiveness:
    def test_filters_disjoint_region(self):
        """Entities confined to the left half must reject right-half
        probes (the selective-join scenario of section 5.2.2)."""
        rng = random.Random(42)
        bitmap = DynamicSpatialBitmap(6, CURVE, mode="precise")
        for _ in range(200):
            x = rng.uniform(0.0, 0.4)
            y = rng.uniform(0.0, 1.0)
            rect = Rect(x, y, min(1, x + 0.02), min(1, y + 0.02))
            _, key, level = project(bitmap, rect)
            bitmap.set_entity(rect, key, level)
        filtered = 0
        for _ in range(200):
            x = rng.uniform(0.6, 0.95)
            y = rng.uniform(0.0, 0.95)
            rect = Rect(x, y, x + 0.02, y + 0.02)
            _, key, level = project(bitmap, rect)
            if not bitmap.admits(rect, key, level):
                filtered += 1
        assert filtered > 150


def _naive_set(bits, lo, hi):
    for bit in range(lo, hi):
        bits[bit >> 3] |= 1 << (bit & 7)


class TestByteWiseRanges:
    """`_set_range` / `_any_in_range` fill and scan whole bytes; they
    must agree with the bit-at-a-time definition on every alignment."""

    @given(st.integers(0, 1024), st.integers(0, 1024))
    @settings(max_examples=300)
    def test_set_range_matches_naive(self, a, b):
        lo, hi = min(a, b), max(a, b)
        bitmap = DynamicSpatialBitmap(5, CURVE)  # 1024 bits
        expected = bytearray(len(bitmap._bits))
        _naive_set(expected, lo, hi)
        bitmap._set_range(lo, hi)
        assert bitmap._bits == expected

    @given(
        st.integers(0, 1024),
        st.integers(0, 1024),
        st.lists(st.integers(0, 1023), max_size=8),
    )
    @settings(max_examples=300)
    def test_any_in_range_matches_naive(self, a, b, set_bits):
        lo, hi = min(a, b), max(a, b)
        bitmap = DynamicSpatialBitmap(5, CURVE)
        for bit in set_bits:
            bitmap._set_range(bit, bit + 1)
        expected = any(lo <= bit < hi for bit in set_bits)
        assert bitmap._any_in_range(lo, hi) is expected

    def test_fast_mode_huge_range_is_cheap(self):
        """Regression: a level-0 entity projected in fast mode onto a
        level-13 bitmap covers all 2^26 bits.  Setting them must be a
        few byte-slice operations, not 67 million Python loop turns."""
        import time

        curve = HilbertCurve(order=16)
        bitmap = DynamicSpatialBitmap(13, curve, mode="fast")
        start = time.perf_counter()
        bitmap.set_entity(Rect(0.0, 0.0, 1.0, 1.0), 0, 0)
        assert bitmap.admits(Rect(0.3, 0.3, 0.9, 0.9), 0, 0)
        elapsed = time.perf_counter() - start
        assert bitmap.population() == bitmap.num_bits
        # The bit-at-a-time version needs tens of seconds here; the
        # byte-wise one is well under a second even on slow CI.
        assert elapsed < 2.0

    def test_probe_empty_huge_range_is_cheap(self):
        import time

        curve = HilbertCurve(order=16)
        bitmap = DynamicSpatialBitmap(13, curve, mode="fast")
        bitmap._set_range(bitmap.num_bits - 1, bitmap.num_bits)
        start = time.perf_counter()
        assert bitmap._any_in_range(0, bitmap.num_bits)
        assert not bitmap._any_in_range(0, bitmap.num_bits - 1)
        assert time.perf_counter() - start < 2.0


class TestBatchProjection:
    """`set_batch` / `admits_batch` must be call-for-call equivalent to
    the scalar projections, counters included."""

    def test_batch_equals_scalar(self):
        rng = random.Random(42)
        rects = random_rects(rng, 120)
        projections = [project(None, rect)[1:] for rect in rects]
        keys = [key for key, _ in projections]
        levels = [level for _, level in projections]
        for mode in ("precise", "fast"):
            scalar_stats, batch_stats = IOStats(), IOStats()
            scalar = DynamicSpatialBitmap(6, CURVE, mode=mode, stats=scalar_stats)
            batch = DynamicSpatialBitmap(6, CURVE, mode=mode, stats=batch_stats)
            half = len(rects) // 2
            for rect, key, level in zip(rects[:half], keys, levels):
                scalar.set_entity(rect, key, level)
            batch.set_batch(
                [r.xlo for r in rects[:half]],
                [r.ylo for r in rects[:half]],
                [r.xhi for r in rects[:half]],
                [r.yhi for r in rects[:half]],
                keys[:half],
                levels[:half],
            )
            assert batch._bits == scalar._bits
            scalar_answers = [
                scalar.admits(rect, key, level)
                for rect, key, level in zip(rects[half:], keys[half:], levels[half:])
            ]
            batch_answers = batch.admits_batch(
                [r.xlo for r in rects[half:]],
                [r.ylo for r in rects[half:]],
                [r.xhi for r in rects[half:]],
                [r.yhi for r in rects[half:]],
                keys[half:],
                levels[half:],
            )
            assert batch_answers == scalar_answers
            assert batch.set_operations == scalar.set_operations
            assert batch.probe_operations == scalar.probe_operations
            assert batch.filtered_count == scalar.filtered_count
            assert batch_stats.total == scalar_stats.total
