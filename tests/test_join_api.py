"""Tests for the top-level join API, predicates, datasets, metrics,
and results."""

import pytest

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.geometry.shapes import Point, Segment
from repro.join.api import (
    available_algorithms,
    default_storage_config,
    make_algorithm,
    spatial_join,
)
from repro.join.dataset import SpatialDataset
from repro.join.metrics import JoinMetrics
from repro.join.predicates import Intersects, WithinDistance
from repro.join.result import canonical_pairs
from repro.storage.costs import CostModel
from repro.storage.iostats import PhaseStats
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import brute_force_pairs, make_squares


class TestPredicates:
    def test_intersects_margin_zero(self):
        assert Intersects().mbr_margin == 0.0

    def test_within_distance_margin(self):
        assert WithinDistance(0.2).mbr_margin == 0.1

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            WithinDistance(-1.0)

    def test_refine_dispatch(self):
        a = Entity.from_geometry(1, Point(0.1, 0.1))
        b = Entity.from_geometry(2, Point(0.1, 0.25))
        assert WithinDistance(0.2).refine(a, b)
        assert not Intersects().refine(a, b)


class TestDataset:
    def test_len_and_iter(self):
        ds = make_squares(10, 0.1, seed=1)
        assert len(ds) == 10
        assert len(list(ds)) == 10

    def test_mbr_and_coverage(self):
        ds = SpatialDataset(
            "two",
            [
                Entity.from_geometry(0, Rect(0.0, 0.0, 0.5, 0.5)),
                Entity.from_geometry(1, Rect(0.5, 0.5, 1.0, 1.0)),
            ],
        )
        assert ds.mbr() == Rect(0.0, 0.0, 1.0, 1.0)
        assert ds.coverage() == pytest.approx(0.5)

    def test_empty_dataset_mbr_raises(self):
        with pytest.raises(ValueError):
            SpatialDataset("empty", []).mbr()

    def test_size_pages(self, storage):
        ds = make_squares(100, 0.1, seed=2)
        assert ds.size_pages(storage) == 2  # 85 per page

    def test_entity_by_id(self):
        ds = make_squares(5, 0.1, seed=3)
        lookup = ds.entity_by_id()
        assert set(lookup) == {0, 1, 2, 3, 4}

    def test_write_descriptors_margin_expands(self, storage):
        ds = SpatialDataset(
            "one", [Entity.from_geometry(0, Rect(0.4, 0.4, 0.5, 0.5))]
        )
        handle = ds.write_descriptors(storage, "f", margin=0.1)
        record = next(handle.scan())
        assert record[1] == pytest.approx(0.3)
        assert record[4] == pytest.approx(0.6)

    def test_write_descriptors_clips_to_unit_square(self, storage):
        ds = SpatialDataset(
            "edge", [Entity.from_geometry(0, Rect(0.0, 0.0, 0.05, 0.05))]
        )
        handle = ds.write_descriptors(storage, "f", margin=0.2)
        record = next(handle.scan())
        assert record[1] == 0.0 and record[2] == 0.0


class TestCanonicalPairs:
    def test_plain_join_passthrough(self):
        pairs = {(1, 2), (2, 1)}
        assert canonical_pairs(pairs, self_join=False) == frozenset(pairs)

    def test_self_join_normalizes(self):
        pairs = {(1, 2), (2, 1), (3, 3)}
        assert canonical_pairs(pairs, self_join=True) == frozenset({(1, 2)})


class TestSpatialJoinAPI:
    def test_algorithms_listed(self):
        assert available_algorithms() == ("pbsm", "rtree", "s3j", "shj", "sweep")

    def test_unknown_algorithm_raises(self):
        a = make_squares(10, 0.1, seed=4)
        with pytest.raises(ValueError):
            spatial_join(a, a, algorithm="nested-loops")

    def test_make_algorithm_unknown_raises(self, storage):
        with pytest.raises(ValueError):
            make_algorithm("quadtree", storage)

    @pytest.mark.parametrize("algorithm", ["s3j", "pbsm", "shj"])
    def test_all_algorithms_agree(self, algorithm):
        a = make_squares(150, 0.04, seed=5, name="A")
        b = make_squares(150, 0.04, seed=6, name="B")
        result = spatial_join(a, b, algorithm=algorithm)
        assert result.pairs == brute_force_pairs(a, b)

    def test_distance_predicate_filter_superset(self):
        a = make_squares(100, 0.02, seed=7, name="A")
        b = make_squares(100, 0.02, seed=8, name="B")
        eps = 0.03
        result = spatial_join(a, b, predicate=WithinDistance(eps))
        assert result.pairs == brute_force_pairs(a, b, margin=eps / 2)

    def test_refinement_exact_distance(self):
        a = SpatialDataset("a", [Entity.from_geometry(0, Point(0.30, 0.30))])
        b = SpatialDataset(
            "b",
            [
                Entity.from_geometry(0, Point(0.30, 0.34)),  # within 0.05
                Entity.from_geometry(1, Point(0.34, 0.34)),  # corner: ~0.057
            ],
        )
        result = spatial_join(
            a, b, predicate=WithinDistance(0.05), refine=True
        )
        # The filter step (Chebyshev) admits both; refinement keeps one.
        assert result.pairs == frozenset({(0, 0), (0, 1)})
        assert result.refined == frozenset({(0, 0)})

    def test_refinement_segments(self):
        a = SpatialDataset(
            "a", [Entity.from_geometry(0, Segment(0.1, 0.1, 0.4, 0.4))]
        )
        b = SpatialDataset(
            "b",
            [
                Entity.from_geometry(0, Segment(0.1, 0.4, 0.4, 0.1)),  # crosses
                Entity.from_geometry(1, Segment(0.35, 0.12, 0.4, 0.15)),  # MBR only
            ],
        )
        result = spatial_join(a, b, refine=True)
        assert result.pairs == frozenset({(0, 0), (0, 1)})
        assert result.refined == frozenset({(0, 0)})

    def test_self_join_identity(self):
        a = make_squares(100, 0.05, seed=9)
        result = spatial_join(a, a)
        assert result.self_join
        assert all(x < y for x, y in result.pairs)

    def test_external_storage_manager_reused(self):
        a = make_squares(50, 0.05, seed=10, name="A")
        b = make_squares(50, 0.05, seed=11, name="B")
        with StorageManager(StorageConfig(buffer_pages=32)) as manager:
            result = spatial_join(a, b, storage=manager)
            assert result.pairs == brute_force_pairs(a, b)
            # The manager stays usable (not closed by the call).
            manager.create_file("still-works")

    def test_storage_config_accepted(self):
        a = make_squares(50, 0.05, seed=12, name="A")
        b = make_squares(50, 0.05, seed=13, name="B")
        result = spatial_join(a, b, storage=StorageConfig(buffer_pages=24))
        assert result.pairs == brute_force_pairs(a, b)

    def test_default_config_memory_fraction(self):
        a = make_squares(8500, 0.01, seed=14, name="A")  # 100 pages
        config = default_storage_config(a, a)
        assert config.buffer_pages == 20  # 10% of 200 pages

    def test_default_config_tracks_page_size(self):
        # Regression: E must come from the actual page size and the
        # descriptor record size, not a hardcoded 4096 // 48.
        a = make_squares(8500, 0.01, seed=14, name="A")
        config = default_storage_config(a, a, page_size=1024)
        per_page = 1024 // 48  # 21 descriptors per 1 KB page
        pages = 2 * -(-8500 // per_page)
        assert config.page_size == 1024
        assert config.buffer_pages == -(-pages // 10)  # 10%, rounded up
        # Same inputs on larger pages need fewer buffer pages.
        assert config.buffer_pages > default_storage_config(a, a).buffer_pages

    def test_algorithm_params_forwarded(self):
        a = make_squares(100, 0.05, seed=15, name="A")
        b = make_squares(100, 0.05, seed=16, name="B")
        result = spatial_join(a, b, algorithm="pbsm", tiles_per_dim=7)
        assert result.metrics.details["tiles_per_dim"] == 7


class TestMetrics:
    def make_metrics(self):
        phases = {
            "partition": PhaseStats(page_reads=10, page_writes=10),
            "join": PhaseStats(page_reads=5, cpu_ops={"mbr_test": 1000}),
        }
        return JoinMetrics(
            algorithm="test",
            phase_names=("partition", "join"),
            phases=phases,
            cost_model=CostModel(),
        )

    def test_response_time_is_sum_of_phases(self):
        metrics = self.make_metrics()
        assert metrics.response_time == pytest.approx(
            metrics.phase_time("partition") + metrics.phase_time("join")
        )

    def test_absent_phase_zero(self):
        metrics = self.make_metrics()
        assert metrics.phase_time("sort") == 0.0
        assert metrics.phase_ios("sort") == 0

    def test_totals(self):
        metrics = self.make_metrics()
        assert metrics.total_ios == 25
        assert metrics.total_reads == 15
        assert metrics.total_writes == 10

    def test_replication_total(self):
        metrics = self.make_metrics()
        metrics.replication_a = 1.5
        metrics.replication_b = 2.0
        assert metrics.replication_total == 3.5

    def test_describe_contains_key_fields(self):
        text = self.make_metrics().describe()
        assert "test" in text and "partition" in text and "r_A" in text


class TestParameterValidation:
    def small(self):
        return make_squares(20, 0.05, seed=1, name="V")

    @pytest.mark.parametrize("workers", [0, -1, 1.5, "2"])
    def test_bad_workers_raises(self, workers):
        ds = self.small()
        with pytest.raises(ValueError, match="workers"):
            spatial_join(ds, ds, workers=workers)

    @pytest.mark.parametrize("shard_level", [-1, 0.5, "1"])
    def test_bad_shard_level_raises(self, shard_level):
        ds = self.small()
        with pytest.raises(ValueError, match="shard_level"):
            spatial_join(ds, ds, shard_level=shard_level)

    def test_none_shard_level_allowed(self):
        ds = self.small()
        assert spatial_join(ds, ds).pairs  # shard_level=None is the default


class TestWarmProcessDeterminism:
    """Back-to-back joins in one process must be byte-identical.

    File names used to come from process-global counters, so a warm
    process numbered its runs differently from a fresh one and the
    second run's ledger/report drifted.  Naming is per-manager now."""

    def run_once(self, workers=1):
        import json

        dataset_a = make_squares(80, 0.03, seed=5, name="A")
        dataset_b = make_squares(90, 0.04, seed=6, name="B")
        result = spatial_join(dataset_a, dataset_b, workers=workers)
        return json.dumps(result.metrics.to_dict(), sort_keys=True)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_back_to_back_joins_identical(self, workers):
        assert self.run_once(workers) == self.run_once(workers)

    def test_warm_process_all_algorithms(self):
        import json

        ds = make_squares(100, 0.03, seed=9, name="S")
        for algorithm in available_algorithms():
            dumps = [
                json.dumps(
                    spatial_join(ds, ds, algorithm=algorithm).metrics.to_dict(),
                    sort_keys=True,
                )
                for _ in range(2)
            ]
            assert dumps[0] == dumps[1], f"{algorithm} drifted when warm"
