"""The resident S3J index: level files + delta + tombstones + epoch.

A level file is just a Hilbert-sorted run (PAPER.md section 3), so the
LSM idiom applies directly: the **base** is the partitioned + sorted
level files kept open across queries in one long-lived storage
manager; incremental ``insert``/``delete`` land in a small in-memory
**delta** (one sorted buffer per level, deletes of base entities as
tombstones) merged into every query's view; ``compact`` folds the delta
back into the level files (write-new + atomic rename, the external
sorter's temp-file discipline) once it grows past a threshold.

Every mutation *and* every compaction bumps the **epoch**.  The epoch
is the index's only cache key ingredient besides the query itself: a
result cached at epoch ``e`` is valid exactly as long as the live set
is the one ``e`` named — compaction changes no live entity but does
change which files back them, so it too must (and does) advance the
epoch rather than silently re-using entries computed against dropped
files.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Iterable, Iterator

from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import DEFAULT_MAX_LEVEL, LevelAssigner
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.join.result import Pair, canonical_pairs
from repro.obs import Observability
from repro.service.scan import DEFAULT_CHUNK_RECORDS, live_self_scan
from repro.storage.backend import Record
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, HKEY, XHI, XLO, YHI, YLO

DEFAULT_COMPACTION_THRESHOLD = 256
"""Delta records (inserts + tombstones) that trigger compaction."""


def _sort_key(record: Record) -> tuple[int, int]:
    """Level files are Hilbert-sorted; eid breaks ties deterministically."""
    return (record[HKEY], record[EID])


class PersistentIndex:
    """One resident spatial-join index over a long-lived storage manager.

    Synchronous and single-writer by design: the service front-end
    (:class:`repro.service.api.JoinService`) serializes mutations and
    compaction around queries.  All query I/O against the base level
    files is charged to the manager's simulated ledger under the
    ``query`` / ``compaction`` phases, so ``repro report`` renders a
    service run with the same machinery as a batch join.
    """

    def __init__(
        self,
        entities: Iterable[Entity] = (),
        storage: StorageConfig | None = None,
        obs: Observability | None = None,
        curve: SpaceFillingCurve | None = None,
        max_level: int = DEFAULT_MAX_LEVEL,
        compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        name: str = "idx",
    ) -> None:
        if compaction_threshold < 1:
            raise ValueError("compaction_threshold must be positive")
        self.curve = curve or HilbertCurve()
        self.assigner = LevelAssigner(
            order=self.curve.order, max_level=min(max_level, self.curve.order)
        )
        self.storage = StorageManager(storage or StorageConfig(), obs=obs)
        self.obs = self.storage.obs
        self.name = name
        self.compaction_threshold = compaction_threshold
        self.chunk_records = chunk_records
        self.epoch = 0
        self.compactions = 0
        self._base: dict[int, PagedFile] = {}
        self._delta: dict[int, list[Record]] = {}
        self._tombstones: dict[int, set[int]] = {}  # level -> base eids
        self._live: dict[int, tuple[int, Entity]] = {}  # eid -> (level, entity)
        self._bulk_load(list(entities))

    # -- construction ----------------------------------------------------

    def _describe(self, entity: Entity) -> tuple[int, Record]:
        box = entity.mbr
        level = self.assigner.level(box)
        hilbert = self.curve.key_of_normalized(*box.center)
        record = (entity.eid, box.xlo, box.ylo, box.xhi, box.yhi, hilbert)
        return level, record

    def _bulk_load(self, entities: list[Entity]) -> None:
        by_level: dict[int, list[Record]] = {}
        for entity in entities:
            if entity.eid in self._live:
                raise ValueError(f"duplicate entity id {entity.eid}")
            level, record = self._describe(entity)
            by_level.setdefault(level, []).append(record)
            self._live[entity.eid] = (level, entity)
        with self.storage.stats.phase("load"):
            for level, records in sorted(by_level.items()):
                records.sort(key=_sort_key)
                handle = self.storage.create_file(self._level_name(level))
                handle.append_many(records)
                handle.flush()
                self._base[level] = handle

    def _level_name(self, level: int) -> str:
        return f"{self.name}-L{level}"

    # -- the live view ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, eid: int) -> bool:
        return eid in self._live

    @property
    def delta_records(self) -> int:
        """Pending delta size: buffered inserts plus tombstones."""
        return sum(len(buf) for buf in self._delta.values()) + sum(
            len(dead) for dead in self._tombstones.values()
        )

    @property
    def needs_compaction(self) -> bool:
        return self.delta_records >= self.compaction_threshold

    def levels(self) -> list[int]:
        """Levels with any live or pending data, sorted."""
        return sorted(set(self._base) | set(self._delta))

    def level_records(self, level: int) -> Iterator[Record]:
        """The live records of one level in Hilbert order: the base
        level file merged with the delta buffer, minus tombstones.
        Base pages are read through the buffer pool, so the simulated
        ledger prices every query's base I/O."""
        handle = self._base.get(level)
        base: Iterable[Record] = handle.scan() if handle is not None else ()
        delta = self._delta.get(level, ())
        dead = self._tombstones.get(level)
        merged = heapq.merge(base, delta, key=_sort_key)
        if not dead:
            return iter(merged)
        return (record for record in merged if record[EID] not in dead)

    def live_entities(self) -> list[Entity]:
        """The live entity set (insertion-independent order: by eid)."""
        return [entity for _, (_, entity) in sorted(self._live.items())]

    def snapshot_dataset(self, name: str = "live") -> SpatialDataset:
        """The live set as a :class:`SpatialDataset` — the input the
        cold-batch oracle joins (verify/service.py)."""
        return SpatialDataset(name, self.live_entities())

    # -- mutations -------------------------------------------------------

    def insert(self, entity: Entity) -> int:
        """Add one entity to the live set; returns the new epoch."""
        if entity.eid in self._live:
            raise ValueError(f"entity id {entity.eid} is already live")
        level, record = self._describe(entity)
        insort(self._delta.setdefault(level, []), record, key=_sort_key)
        self._live[entity.eid] = (level, entity)
        self.epoch += 1
        return self.epoch

    def delete(self, eid: int) -> int:
        """Remove one live entity; returns the new epoch.

        An entity still sitting in the delta is removed outright; an
        entity already in a base level file gets a tombstone that the
        merge applies until the next compaction folds it in.
        """
        try:
            level, _ = self._live.pop(eid)
        except KeyError:
            raise KeyError(f"no live entity with id {eid}") from None
        buffer = self._delta.get(level)
        if buffer is not None:
            for position, record in enumerate(buffer):
                if record[EID] == eid:
                    del buffer[position]
                    if not buffer:
                        del self._delta[level]
                    break
            else:
                self._tombstones.setdefault(level, set()).add(eid)
        else:
            self._tombstones.setdefault(level, set()).add(eid)
        self.epoch += 1
        return self.epoch

    # -- compaction ------------------------------------------------------

    def compact(self) -> bool:
        """Fold the delta and tombstones into the base level files.

        Write-new + atomic rename per affected level (the external
        sorter's temp-file discipline: the replacement is complete
        before it takes the base name, and the temp file is dropped on
        any failure).  Returns whether anything was folded; when it
        was, the epoch advances so cached results keyed on the old
        epoch can never be served against the new file set.
        """
        affected = sorted(set(self._delta) | set(self._tombstones))
        if not affected:
            return False
        with self.storage.stats.phase("compaction"):
            self.storage.phase_boundary()
            for level in affected:
                records = list(self.level_records(level))
                temp_name = f"{self._level_name(level)}-compact"
                temp = self.storage.create_file(temp_name)
                try:
                    temp.append_many(records)
                    temp.flush()
                    if records:
                        self.storage.rename_file(
                            temp_name, self._level_name(level), replace=True
                        )
                        self._base[level] = temp
                    else:
                        self.storage.drop_file(temp_name)
                        if level in self._base:
                            self.storage.drop_file(self._level_name(level))
                            del self._base[level]
                except BaseException:
                    if temp_name in self.storage.list_files():
                        self.storage.drop_file(temp_name)
                    raise
                self._delta.pop(level, None)
                self._tombstones.pop(level, None)
        self.compactions += 1
        self.epoch += 1
        return True

    # -- queries ---------------------------------------------------------

    def point_query(self, x: float, y: float) -> tuple[int, ...]:
        """Ids of live entities whose MBR contains the point, sorted."""
        return self.window_query(Rect.point(x, y))

    def window_query(self, window: Rect) -> tuple[int, ...]:
        """Ids of live entities whose MBR intersects the window, sorted.

        A linear merge-scan of every level's live stream (closed-
        interval semantics, same as the sweep) — correctness-first; the
        base pages it touches are priced by the ledger like any scan.
        """
        hits: list[int] = []
        with self.storage.stats.phase("query"):
            self.storage.phase_boundary()
            for level in self.levels():
                for record in self.level_records(level):
                    if (
                        record[XLO] <= window.xhi
                        and window.xlo <= record[XHI]
                        and record[YLO] <= window.yhi
                        and window.ylo <= record[YHI]
                    ):
                        hits.append(record[EID])
        return tuple(sorted(hits))

    def self_join(self) -> frozenset[Pair]:
        """All intersecting live pairs — the synchronized self-scan over
        the live per-level streams, canonicalized like a batch self
        join (``(min, max)``, no ``(e, e)``)."""
        raw: set[Pair] = set()
        with self.storage.stats.phase("query"):
            self.storage.phase_boundary()
            live_self_scan(
                {level: self.level_records(level) for level in self.levels()},
                self.curve.order,
                lambda a, b: raw.add((a[EID], b[EID])),
                chunk_records=self.chunk_records,
                stats=self.storage.stats,
                metrics=self.obs.active_metrics,
            )
        return canonical_pairs(raw, self_join=True)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the storage manager (idempotent)."""
        self.storage.close()

    def __enter__(self) -> PersistentIndex:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
