"""Pluggable ledger-invariant checkers.

Each checker inspects one :class:`~repro.verify.executors.RunRecord`
and returns human-readable violation messages (empty list = holds).
These are the paper's structural claims, enforced mechanically:

- **phase-buckets-sum-to-total** — the per-phase ledger buckets add up
  to the grand totals exactly: no I/O or counted CPU op ever escapes
  phase attribution (Table 2's breakdown is exhaustive).
- **join-reads-once** — S3J's join phase reads each sorted level-file
  page at most once physically and processes every page exactly once
  (the "strongly resembles an L-way merge sort" single-pass claim of
  section 3.1).
- **replication** — S3J never replicates (``r = 1.0`` exactly without
  DSB filtering, equation 9); the R-tree and sweep references never
  replicate either; SHJ never replicates data set A.

Obs-on/obs-off ledger parity is a *differential* check (it needs two
runs), so it lives in the harness (:func:`check_obs_parity`) rather
than in the per-record protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.storage.iostats import PhaseStats
from repro.verify.cases import VerifyCase
from repro.verify.executors import (
    SORTED_FILE_SUFFIX,
    ExecutorSpec,
    RunRecord,
    run_executor,
)

NO_REPLICATION = {"s3j", "rtree", "sweep"}


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant failure, with enough context to reproduce."""

    invariant: str
    executor: str
    case: str
    message: str

    def describe(self) -> str:
        return f"[{self.invariant}] {self.executor} on {self.case}: {self.message}"


class Invariant(ABC):
    """One per-record invariant checker."""

    name: str = "abstract"

    @abstractmethod
    def check(self, record: RunRecord) -> list[str]:
        """Violation messages for one run (empty when the invariant
        holds or does not apply)."""

    def violations(self, record: RunRecord) -> list[InvariantViolation]:
        return [
            InvariantViolation(
                invariant=self.name,
                executor=record.name,
                case=record.case.name,
                message=message,
            )
            for message in self.check(record)
        ]


class PhaseBucketsSumInvariant(Invariant):
    """Per-phase buckets sum exactly to the ledger totals."""

    name = "phase-buckets-sum-to-total"

    _COUNTERS = (
        "page_reads",
        "page_writes",
        "random_reads",
        "random_writes",
        "buffer_hits",
    )

    def check(self, record: RunRecord) -> list[str]:
        if record.ledger_total is None:  # sharded runs keep no live ledger
            return []
        summed = PhaseStats()
        for bucket in record.metrics.phases.values():
            bucket.merged_into(summed)
        problems = []
        for counter in self._COUNTERS:
            total = getattr(record.ledger_total, counter)
            phased = getattr(summed, counter)
            if total != phased:
                problems.append(
                    f"{counter}: phases sum to {phased}, total is {total}"
                )
        if summed.cpu_ops != record.ledger_total.cpu_ops:
            problems.append(
                f"cpu_ops: phases sum to {summed.cpu_ops}, "
                f"total is {record.ledger_total.cpu_ops}"
            )
        return problems


class JoinReadsOnceInvariant(Invariant):
    """S3J's join phase touches each sorted level-file page once."""

    name = "join-reads-once"

    def check(self, record: RunRecord) -> list[str]:
        if record.spec.algorithm != "s3j" or record.spec.sharded:
            return []
        if record.registry is None or not record.level_file_pages:
            return []
        problems = []
        total_pages = 0
        for file_name, pages in sorted(record.level_file_pages.items()):
            if not file_name.endswith(SORTED_FILE_SUFFIX):
                continue
            total_pages += pages
            reads = record.registry.counter_value(
                "io.reads", file=file_name, kind="sequential"
            ) + record.registry.counter_value(
                "io.reads", file=file_name, kind="random"
            )
            if reads > pages:
                problems.append(
                    f"{file_name}: {reads} physical reads for {pages} pages "
                    "(some page was read more than once)"
                )
        processed = record.registry.counter_total("scan.pages")
        if processed != total_pages:
            problems.append(
                f"synchronized scan processed {processed} pages, sorted "
                f"level files hold {total_pages}"
            )
        return problems


class ReplicationInvariant(Invariant):
    """Replication factors match each algorithm's paper claim."""

    name = "replication"

    def check(self, record: RunRecord) -> list[str]:
        metrics = record.metrics
        problems = []
        algorithm = record.spec.algorithm
        if algorithm in NO_REPLICATION:
            for side, factor in (
                ("r_A", metrics.replication_a),
                ("r_B", metrics.replication_b),
            ):
                if factor != 1.0:
                    problems.append(
                        f"{side} = {factor!r}, expected exactly 1.0 "
                        f"({algorithm} never replicates)"
                    )
        elif algorithm == "shj" and metrics.replication_a != 1.0:
            problems.append(
                f"r_A = {metrics.replication_a!r}, expected exactly 1.0 "
                "(SHJ never replicates data set A)"
            )
        return problems


DEFAULT_INVARIANTS: tuple[Invariant, ...] = (
    PhaseBucketsSumInvariant(),
    JoinReadsOnceInvariant(),
    ReplicationInvariant(),
)


def check_obs_parity(
    case: VerifyCase, spec: ExecutorSpec
) -> list[InvariantViolation]:
    """Run one executor twice — instrumented and not — and require the
    identical pair set and the identical per-phase simulated ledger
    (observability must never change a simulated count)."""
    instrumented = run_executor(case, spec, instrument=True)
    bare = run_executor(case, spec, instrument=False)
    problems = []
    if instrumented.pairs != bare.pairs:
        problems.append(
            f"pair sets differ: {len(instrumented.pairs)} instrumented "
            f"vs {len(bare.pairs)} bare"
        )
    phases_on = {
        name: stats.to_dict() for name, stats in instrumented.metrics.phases.items()
    }
    phases_off = {
        name: stats.to_dict() for name, stats in bare.metrics.phases.items()
    }
    if phases_on != phases_off:
        differing = sorted(
            name
            for name in set(phases_on) | set(phases_off)
            if phases_on.get(name) != phases_off.get(name)
        )
        problems.append(
            f"per-phase ledgers differ with observability on/off: {differing}"
        )
    return [
        InvariantViolation(
            invariant="obs-ledger-parity",
            executor=spec.name,
            case=case.name,
            message=message,
        )
        for message in problems
    ]
