"""Ledger-parity tests: the batched partition pipeline must be
indistinguishable — in the simulated I/O ledger, in every per-phase CPU
counter, and in the emitted records — from the scalar reference paths.

This is the hard invariant of :mod:`repro.core.partition`: batching is
a pure wall-clock optimization of the *simulator*, never a change to
the simulated algorithm.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.pbsm import PartitionBasedSpatialMergeJoin
from repro.baselines.shj import SpatialHashJoin
from repro.core.s3j import SizeSeparationSpatialJoin
from repro.curves.hilbert import HilbertCurve
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.storage.manager import StorageConfig, StorageManager

from tests.conftest import make_squares

BATCH_SIZES = (1, 7, 4096)  # page-sized blocks, ragged blocks, one big block


def make_clustered(count: int, seed: int, name: str) -> SpatialDataset:
    """Gaussian clusters plus occasional large rectangles, so records
    spread over many Filter-Tree levels and tiles replicate unevenly."""
    rng = random.Random(seed)
    centers = [(rng.random(), rng.random()) for _ in range(8)]
    entities = []
    for eid in range(count):
        side = rng.uniform(0.2, 0.45) if eid % 13 == 0 else rng.uniform(0.002, 0.03)
        cx, cy = centers[eid % len(centers)]
        x = min(max(cx + rng.gauss(0.0, 0.08), 0.0), 1.0 - side)
        y = min(max(cy + rng.gauss(0.0, 0.08), 0.0), 1.0 - side)
        entities.append(Entity.from_geometry(eid, Rect(x, y, x + side, y + side)))
    return SpatialDataset(name, entities)


WORKLOADS = {
    "uniform": lambda: (
        make_squares(400, 0.03, seed=101, name="A"),
        make_squares(400, 0.05, seed=102, name="B"),
    ),
    "clustered": lambda: (
        make_clustered(400, seed=103, name="A"),
        make_clustered(400, seed=104, name="B"),
    ),
}

ALGORITHMS = {
    "s3j": lambda storage, bs: SizeSeparationSpatialJoin(storage, batch_size=bs),
    "s3j-dsb-precise": lambda storage, bs: SizeSeparationSpatialJoin(
        storage, dsb_level=6, dsb_mode="precise", batch_size=bs
    ),
    "s3j-dsb-fast": lambda storage, bs: SizeSeparationSpatialJoin(
        storage, dsb_level=6, dsb_mode="fast", batch_size=bs
    ),
    "pbsm": lambda storage, bs: PartitionBasedSpatialMergeJoin(
        storage, tiles_per_dim=16, batch_size=bs
    ),
    "pbsm-filtering": lambda storage, bs: PartitionBasedSpatialMergeJoin(
        storage,
        tiles_per_dim=8,
        tile_space=Rect(0.25, 0.25, 0.75, 0.75),
        batch_size=bs,
    ),
    "shj": lambda storage, bs: SpatialHashJoin(storage, batch_size=bs),
}


def execute(factory, dataset_a, dataset_b, batch_size, buffer_pages=32, obs=None):
    """One full join run on a fresh storage manager; returns everything
    parity must hold over.  ``obs`` optionally attaches observability —
    by construction it must not change any returned quantity."""
    with StorageManager(StorageConfig(buffer_pages=buffer_pages), obs=obs) as storage:
        curve = HilbertCurve()
        file_a = dataset_a.write_descriptors(storage, "in-a", curve=curve)
        file_b = dataset_b.write_descriptors(storage, "in-b", curve=curve)
        storage.phase_boundary()
        storage.stats.reset()
        algorithm = factory(storage, batch_size)
        result = algorithm.join(file_a, file_b)
        return {
            "pairs": result.pairs,
            "phases": dict(storage.stats.phases),
            "total": storage.stats.snapshot(),
            "details": result.metrics.details,
            "replication": (
                result.metrics.replication_a,
                result.metrics.replication_b,
            ),
        }


def assert_parity(scalar, batched, context):
    assert batched["pairs"] == scalar["pairs"], context
    assert set(batched["phases"]) == set(scalar["phases"]), context
    for name, reference in scalar["phases"].items():
        # PhaseStats is a dataclass: == covers page reads/writes, the
        # random/sequential split, buffer hits, and every CPU op count.
        assert batched["phases"][name] == reference, f"{context}: phase {name}"
    assert batched["total"] == scalar["total"], context
    assert batched["details"] == scalar["details"], context
    assert batched["replication"] == scalar["replication"], context


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_batched_run_matches_scalar(algorithm, workload):
    dataset_a, dataset_b = WORKLOADS[workload]()
    factory = ALGORITHMS[algorithm]
    scalar = execute(factory, dataset_a, dataset_b, batch_size=None)
    for batch_size in BATCH_SIZES:
        batched = execute(factory, dataset_a, dataset_b, batch_size=batch_size)
        assert_parity(scalar, batched, f"{algorithm}/{workload}/bs={batch_size}")


def test_s3j_precomputed_hilbert_parity():
    """The precomputed-keys path skips the curve kernel in both modes."""
    dataset_a, dataset_b = WORKLOADS["uniform"]()
    factory = lambda storage, bs: SizeSeparationSpatialJoin(  # noqa: E731
        storage, hilbert_precomputed=True, batch_size=bs
    )
    scalar = execute(factory, dataset_a, dataset_b, batch_size=None)
    assert "hilbert" not in scalar["total"].cpu_ops
    batched = execute(factory, dataset_a, dataset_b, batch_size=512)
    assert "hilbert" not in batched["total"].cpu_ops
    assert_parity(scalar, batched, "s3j-precomputed")


def test_s3j_level_files_bit_identical():
    """Stronger than pair equality: the partition phase must write the
    exact same record tuples to the exact same level files."""
    dataset = make_clustered(500, seed=105, name="A")

    def partition_once(batch_size):
        with StorageManager(StorageConfig(buffer_pages=32)) as storage:
            source = dataset.write_descriptors(storage, "in-a")
            storage.phase_boundary()
            storage.stats.reset()
            algorithm = SizeSeparationSpatialJoin(storage, batch_size=batch_size)
            with storage.stats.phase("partition"):
                files = algorithm._partition(source, "A", bitmap=None, building=True)
            return {
                level: [tuple(record) for record in handle.scan()]
                for level, handle in files.items()
            }

    reference = partition_once(None)
    assert sum(len(records) for records in reference.values()) == 500
    for batch_size in BATCH_SIZES:
        assert partition_once(batch_size) == reference, f"bs={batch_size}"


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_parity_holds_with_tracing_enabled(algorithm):
    """Observability is pure observation: the batched-vs-scalar parity
    contract holds identically with tracing and metrics turned on, and
    the traced ledger matches the untraced one bit for bit."""
    from repro.obs import Observability

    dataset_a, dataset_b = WORKLOADS["uniform"]()
    factory = ALGORITHMS[algorithm]
    scalar = execute(
        factory, dataset_a, dataset_b, batch_size=None, obs=Observability()
    )
    batched = execute(
        factory, dataset_a, dataset_b, batch_size=64, obs=Observability()
    )
    assert_parity(scalar, batched, f"{algorithm}/traced")
    untraced = execute(factory, dataset_a, dataset_b, batch_size=64)
    assert_parity(untraced, batched, f"{algorithm}/traced-vs-untraced")


def test_dsb_filter_counts_match():
    """The bitmap filters the same B entities in both modes."""
    dataset_a, dataset_b = WORKLOADS["clustered"]()
    for mode in ("precise", "fast"):
        factory = lambda storage, bs: SizeSeparationSpatialJoin(  # noqa: E731
            storage, dsb_level=5, dsb_mode=mode, batch_size=bs
        )
        scalar = execute(factory, dataset_a, dataset_b, batch_size=None)
        batched = execute(factory, dataset_a, dataset_b, batch_size=64)
        assert scalar["details"]["dsb_filtered"] == batched["details"]["dsb_filtered"]
        assert_parity(scalar, batched, f"dsb-{mode}")
