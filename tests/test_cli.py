"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.report import RunReport


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.algorithm == "s3j"
        assert args.workload == "UN1-UN2"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--algorithm", "nested"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--workload", "XYZ"])


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "UN1" in out and "CFD" in out

    def test_join_runs(self, capsys):
        assert main(
            ["join", "--workload", "UN1-UN2", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "pairs" in out and "partition" in out

    def test_join_pbsm_with_tiles(self, capsys):
        assert main(
            [
                "join",
                "--workload",
                "UN1-UN2",
                "--algorithm",
                "pbsm",
                "--tiles",
                "8",
                "--scale",
                "0.02",
            ]
        ) == 0
        assert "r_A / r_B" in capsys.readouterr().out

    def test_tiles_rejected_for_s3j(self, capsys):
        assert main(["join", "--tiles", "8", "--scale", "0.02"]) == 2

    def test_table4_single_workload(self, capsys):
        assert main(["table4", "--only", "UN1-UN2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "UN1-UN2" in out


class TestObservabilityFlags:
    def test_report_to_stdout_is_pure_json(self, capsys):
        assert main(
            ["join", "--workload", "UN1-UN2", "--scale", "0.02", "--report", "-"]
        ) == 0
        out = capsys.readouterr().out
        report = RunReport.from_json(out)  # would raise on any non-JSON noise
        assert report.algorithm == "s3j"
        assert report.pairs > 0
        for phase in ("partition", "sort", "join"):
            assert phase in report.metrics.phases
            assert report.phase_wall.get(phase, 0.0) > 0.0

    def test_report_and_trace_files(self, capsys, tmp_path):
        report_path = tmp_path / "run.report.json"
        trace_path = tmp_path / "run.trace.json"
        assert main(
            [
                "join",
                "--algorithm",
                "pbsm",
                "--workload",
                "UN1-UN2",
                "--scale",
                "0.02",
                "--report",
                str(report_path),
                "--trace",
                str(trace_path),
            ]
        ) == 0
        assert "pairs" in capsys.readouterr().out  # summary still printed
        report = RunReport.load(str(report_path))
        assert report.algorithm == "pbsm"
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        assert {event["name"] for event in events} >= {"partition", "join"}

    def test_no_flags_no_observability(self, capsys):
        assert main(["join", "--workload", "UN1-UN2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)

    def test_table4_json_round_trips(self, capsys):
        assert main(
            ["table4", "--only", "UN1-UN2", "--scale", "0.02", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        row = rows[0]
        assert row["workload"] == "UN1-UN2"
        assert {"s3j", "pbsm_small", "pbsm_large", "shj"} <= set(row)
        assert json.loads(json.dumps(rows)) == rows
