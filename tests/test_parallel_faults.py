"""The hardened parallel executor: crash recovery, timeouts, partial
results, and the structured failure reports of DESIGN.md section 11."""

import pickle

import pytest

from repro.faults import (
    FaultError,
    FaultPlan,
    ShardExecutionError,
    ShardFailure,
)
from repro.obs import Observability
from repro.parallel.executor import parallel_spatial_join
from repro.storage.manager import StorageConfig
from tests.conftest import make_squares


@pytest.fixture(scope="module")
def datasets():
    a = make_squares(60, 0.04, seed=21, name="A")
    b = make_squares(60, 0.05, seed=22, name="B")
    return a, b


@pytest.fixture(scope="module")
def baseline(datasets):
    a, b = datasets
    return parallel_spatial_join(a, b, workers=1, shard_level=1)


def config_with(plan):
    return StorageConfig(fault_plan=plan)


class TestInProcessRecovery:
    def test_single_crash_recovers(self, datasets, baseline):
        a, b = datasets
        obs = Observability()
        result = parallel_spatial_join(
            a,
            b,
            workers=1,
            shard_level=1,
            shard_retries=2,
            storage=config_with(FaultPlan(crash_shards=("cell-0",))),
            obs=obs,
        )
        assert result.pairs == baseline.pairs
        assert result.complete
        assert result.failures == ()
        # The crash really happened and really was re-dispatched.
        assert obs.metrics.counter_total("parallel.redispatches") == 1
        assert obs.metrics.counter_total("parallel.shard_failures") == 0

    def test_sticky_crash_raises_listing_only_the_crasher(self, datasets):
        a, b = datasets
        plan = FaultPlan(crash_shards=("cell-0",), crash_attempts=99)
        with pytest.raises(ShardExecutionError) as info:
            parallel_spatial_join(
                a,
                b,
                workers=1,
                shard_level=1,
                shard_retries=1,
                storage=config_with(plan),
            )
        failures = info.value.failures
        assert [f.shard_id for f in failures] == ["cell-0"]
        assert failures[0].error_type == "WorkerCrashError"
        assert failures[0].attempts == 2
        assert "cell-0" in str(info.value)

    def test_partial_results_mode(self, datasets, baseline):
        a, b = datasets
        plan = FaultPlan(crash_shards=("cell-0",), crash_attempts=99)
        obs = Observability()
        result = parallel_spatial_join(
            a,
            b,
            workers=1,
            shard_level=1,
            shard_retries=1,
            partial_results=True,
            storage=config_with(plan),
            obs=obs,
        )
        assert not result.complete
        assert [f.shard_id for f in result.failures] == ["cell-0"]
        # Declared partial: what came back is a subset of the truth.
        assert result.pairs < baseline.pairs
        reported = result.metrics.details["shard_failures"]
        assert reported == [f.to_dict() for f in result.failures]
        assert obs.metrics.counter_total("parallel.shard_failures") == 1

    def test_fault_free_run_has_no_failure_details(self, baseline):
        assert baseline.complete
        assert baseline.failures == ()
        assert "shard_failures" not in baseline.metrics.details


class TestSubprocessRecovery:
    def test_crashed_worker_is_redispatched(self, datasets, baseline):
        a, b = datasets
        obs = Observability()
        result = parallel_spatial_join(
            a,
            b,
            workers=2,
            shard_level=1,
            shard_retries=2,
            storage=config_with(FaultPlan(crash_shards=("cell-0",))),
            obs=obs,
        )
        assert result.pairs == baseline.pairs
        assert result.complete
        assert obs.metrics.counter_total("parallel.pool_breaks") >= 1
        assert obs.metrics.counter_total("parallel.redispatches") >= 1

    def test_sticky_crash_fails_only_the_crasher(self, datasets, baseline):
        """A crasher breaks the whole pool; the grace round must keep
        the innocent shards out of the failure report."""
        a, b = datasets
        plan = FaultPlan(crash_shards=("cell-1",), crash_attempts=99)
        result = parallel_spatial_join(
            a,
            b,
            workers=2,
            shard_level=1,
            shard_retries=1,
            partial_results=True,
            storage=config_with(plan),
        )
        assert [f.shard_id for f in result.failures] == ["cell-1"]
        assert result.pairs < baseline.pairs

    def test_timeout_is_retried(self, datasets, baseline):
        """Attempt 1 of the delayed shard exceeds the timeout; attempt 2
        is undelayed and completes."""
        a, b = datasets
        plan = FaultPlan(
            delay_shards=("cell-2",), delay_attempts=1, delay_s=1.5
        )
        obs = Observability()
        result = parallel_spatial_join(
            a,
            b,
            workers=2,
            shard_level=1,
            shard_timeout_s=0.3,
            shard_retries=2,
            storage=config_with(plan),
            obs=obs,
        )
        assert result.pairs == baseline.pairs
        assert result.complete
        assert obs.metrics.counter_total("parallel.shard_timeouts") >= 1
        assert obs.metrics.counter_total("parallel.redispatches") >= 1


class TestValidation:
    def test_negative_shard_retries_rejected(self, datasets):
        a, b = datasets
        with pytest.raises(ValueError, match="shard_retries"):
            parallel_spatial_join(a, b, shard_level=1, shard_retries=-1)

    def test_non_positive_timeout_rejected(self, datasets):
        a, b = datasets
        with pytest.raises(ValueError, match="shard_timeout_s"):
            parallel_spatial_join(a, b, shard_level=1, shard_timeout_s=0.0)

    def test_kwargs_flow_through_spatial_join(self, datasets):
        from repro.join.api import spatial_join

        a, b = datasets
        plan = FaultPlan(crash_shards=("cell-0",), crash_attempts=99)
        result = spatial_join(
            a,
            b,
            workers=1,
            shard_level=1,
            shard_retries=0,
            partial_results=True,
            storage=config_with(plan),
        )
        assert not result.complete
        assert result.failures[0].shard_id == "cell-0"
        assert result.failures[0].attempts == 1


class TestFailureReports:
    def failure(self):
        return ShardFailure(
            shard_id="cell-3",
            kind="cell",
            error_type="ShardTimeoutError",
            message="shard cell-3 exceeded the per-shard timeout of 0.3s",
            attempts=3,
        )

    def test_round_trip(self):
        failure = self.failure()
        assert ShardFailure.from_dict(failure.to_dict()) == failure

    def test_describe_names_the_essentials(self):
        text = self.failure().describe()
        assert "cell-3" in text
        assert "ShardTimeoutError" in text
        assert "3" in text

    def test_shard_execution_error_pickles(self):
        error = ShardExecutionError((self.failure(),))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.failures == error.failures
        assert isinstance(clone, FaultError)
