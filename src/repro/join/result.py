"""Join results: candidate pairs from the filter step, refined pairs
from the refinement step, and the metrics of the run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geometry.entity import Entity
from repro.join.metrics import JoinMetrics
from repro.join.predicates import JoinPredicate
from repro.storage.iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.errors import ShardFailure

Pair = tuple[int, int]


def canonical_pairs(
    raw_pairs: set[Pair] | list[Pair], self_join: bool
) -> frozenset[Pair]:
    """Normalize a raw pair collection for comparison across algorithms.

    For a self join, mirrored pairs collapse to ``(min, max)`` and
    degenerate ``(e, e)`` pairs are dropped (they arise because the
    algorithms join a data set with an identical copy of itself —
    "although only a single data set is involved, the algorithm does
    not exploit that fact", section 5.2.1).
    """
    if not self_join:
        return frozenset(raw_pairs)
    return frozenset(
        (min(a, b), max(a, b)) for a, b in raw_pairs if a != b
    )


@dataclass
class JoinResult:
    """Outcome of one spatial join execution.

    ``failures`` is non-empty only for a sharded run in partial-results
    mode (``partial_results=True``) where some shards could not be
    completed: it lists one structured
    :class:`~repro.faults.errors.ShardFailure` per dead shard, and
    ``pairs`` then covers the completed shards only.  A result with
    failures is *declared partial*, never silently wrong.
    """

    pairs: frozenset[Pair]
    metrics: JoinMetrics
    self_join: bool = False
    refined: frozenset[Pair] | None = field(default=None)
    failures: tuple[ShardFailure, ...] = field(default=())

    @property
    def complete(self) -> bool:
        """Whether every shard (trivially true unsharded) completed."""
        return not self.failures

    def __len__(self) -> int:
        return len(self.pairs)

    def refine(
        self,
        predicate: JoinPredicate,
        entities_a: dict[int, Entity],
        entities_b: dict[int, Entity],
        stats: IOStats | None = None,
    ) -> frozenset[Pair]:
        """Run the refinement step over the candidate pairs.

        Each candidate pair is checked under the exact predicate
        (section 2's refinement step); the result is cached in
        ``self.refined``.  CPU work is charged as ``refine`` operations.
        """
        surviving = set()
        for eid_a, eid_b in self.pairs:
            if stats is not None:
                stats.charge_cpu("refine")
            if predicate.refine(entities_a[eid_a], entities_b[eid_b]):
                surviving.add((eid_a, eid_b))
        self.refined = frozenset(surviving)
        return self.refined
