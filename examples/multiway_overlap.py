"""Multiway spatial join: three data sets at once.

The paper's abstract promises joins of "two or more spatial data
sets"; this example finds every (parcel, flood zone, outage area)
triple sharing common ground — the parcels that are flooded *and*
without power — by pipelining S3J over the intermediate result
(section 3.1: the algorithm applies to intermediate data sets without
modification).

Run:  python examples/multiway_overlap.py
"""

import random

from repro import Entity, Rect, SpatialDataset
from repro.join.multiway import spatial_multiway_join


def boxes(name: str, count: int, side: float, seed: int) -> SpatialDataset:
    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        x = rng.uniform(0.0, 1.0 - side)
        y = rng.uniform(0.0, 1.0 - side)
        entities.append(Entity.from_geometry(eid, Rect(x, y, x + side, y + side)))
    return SpatialDataset(name, entities)


def main() -> None:
    parcels = boxes("parcels", 4_000, 0.008, seed=1)
    flood_zones = boxes("flood-zones", 60, 0.15, seed=2)
    outages = boxes("outage-areas", 40, 0.20, seed=3)

    triples, stage_metrics = spatial_multiway_join(
        [parcels, flood_zones, outages], algorithm="s3j"
    )

    print(f"{len(triples):,} (parcel, flood zone, outage) triples overlap")
    affected = {parcel for parcel, _, _ in triples}
    print(f"{len(affected):,} of {len(parcels):,} parcels are flooded and dark")
    print()
    for stage, metrics in enumerate(stage_metrics, start=1):
        print(f"stage {stage}: {metrics.describe()}")


if __name__ == "__main__":
    main()
