"""The typed fault taxonomy.

Every failure the fault subsystem injects, detects, or reports is a
:class:`FaultError`, so callers (and the chaos harness) can separate
*declared* failures from genuine bugs with one ``except FaultError``.
The I/O branch additionally subclasses :class:`IOError`, keeping code
that already guards storage calls with ``except IOError`` working.

Retryability is encoded in the type, not in a flag:

- :class:`TransientIOError` — the one retryable kind.  The retry layer
  (:mod:`repro.faults.retry`) absorbs these up to its attempt bound.
- :class:`PermanentIOError` — never retried; fails loudly at once.
- :class:`TornWriteError` — a page read back with contents differing
  from what was last written (a partially persisted write).  Permanent:
  retrying a read cannot un-tear a page.
- :class:`RetriesExhaustedError` — a transient fault that outlived the
  retry budget; permanent from the caller's point of view.

The executor-facing branch (:class:`WorkerCrashError`,
:class:`ShardTimeoutError`, :class:`ShardExecutionError`) covers the
parallel executor's fault surface; :class:`ShardFailure` is the
structured per-shard report that partial-results mode returns instead
of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


class FaultError(Exception):
    """Base of every typed fault raised by the fault subsystem."""


class FaultIOError(FaultError, IOError):
    """An injected or detected storage-level fault."""


class TransientIOError(FaultIOError):
    """A storage fault that may succeed if the operation is retried."""


class PermanentIOError(FaultIOError):
    """A storage fault that no amount of retrying will fix."""


class TornWriteError(PermanentIOError):
    """A page whose persisted contents differ from the last write."""


class RetriesExhaustedError(PermanentIOError):
    """A transient fault that persisted past the retry budget."""


class WorkerCrashError(FaultError):
    """A shard worker died (or, in-process, simulated dying) mid-task."""


class ShardTimeoutError(FaultError):
    """A shard exceeded the executor's per-shard timeout."""


@dataclass(frozen=True)
class ShardFailure:
    """One shard that could not be completed, in a picklable, JSON-ready
    form — what partial-results mode reports instead of raising."""

    shard_id: str
    kind: str  # "cell" | "residual-A" | "residual-B"
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"shard {self.shard_id} ({self.kind}) failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ShardFailure:
        return cls(
            shard_id=str(data["shard_id"]),
            kind=str(data["kind"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            attempts=int(data["attempts"]),
        )


class ShardExecutionError(FaultError):
    """Raised when shards failed and partial results were not opted in.

    Carries the structured :class:`ShardFailure` reports so callers can
    still see *which* shards died and why.
    """

    def __init__(self, failures: Iterable[ShardFailure]) -> None:
        self.failures: tuple[ShardFailure, ...] = tuple(failures)
        summary = "; ".join(
            f"{f.shard_id} ({f.error_type})" for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} shard(s) failed: {summary}"
        )

    def __reduce__(self):  # keep the failures through pickling
        return (self.__class__, (self.failures,))
