"""The paper's Table 3 data set catalog, scale-parameterized.

``paper_datasets(scale)`` regenerates all seven data sets.  At
``scale=1.0`` entity counts match the paper exactly (100,000 uniform
squares, 53,145 LB segments, ...); smaller scales shrink counts
proportionally while holding *coverage* constant, so every shape result
(who wins, phase proportions, replication factors) is preserved at
laptop-friendly sizes.  Benchmarks read the scale from the
``REPRO_SCALE`` environment variable (default 0.2).
"""

from __future__ import annotations

import math
import os

from repro.datagen.cfd import cfd_points
from repro.datagen.tiger import road_segments
from repro.datagen.triangular import triangular_squares
from repro.datagen.uniform import uniform_squares_by_coverage
from repro.join.dataset import SpatialDataset

PAPER_SIZES = {
    "UN1": 100_000,
    "UN2": 100_000,
    "UN3": 100_000,
    "LB": 53_145,
    "MG": 39_000,
    "TR": 50_000,
    "CFD": 208_688,
}

PAPER_COVERAGE = {
    "UN1": 0.4,
    "UN2": 0.9,
    "UN3": 1.6,
    "LB": 0.15,
    "MG": 0.12,
    "TR": 13.96,
    "CFD": 0.0,
}


def default_scale() -> float:
    """Scale factor from ``REPRO_SCALE`` (default 0.2)."""
    return float(os.environ.get("REPRO_SCALE", "0.2"))


def scaled_count(name: str, scale: float) -> int:
    """Entity count of one data set at the given scale (min 100)."""
    return max(100, int(PAPER_SIZES[name] * scale))


def paper_datasets(
    scale: float | None = None, only: tuple[str, ...] | None = None
) -> dict[str, SpatialDataset]:
    """Regenerate the Table 3 data sets (optionally a subset)."""
    if scale is None:
        scale = default_scale()
    if scale <= 0:
        raise ValueError("scale must be positive")
    names = only or tuple(PAPER_SIZES)
    datasets: dict[str, SpatialDataset] = {}
    for name in names:
        datasets[name] = _make(name, scale)
    return datasets


def _make(name: str, scale: float) -> SpatialDataset:
    count = scaled_count(name, scale)
    if name in ("UN1", "UN2", "UN3"):
        seed = {"UN1": 11, "UN2": 22, "UN3": 33}[name]
        return uniform_squares_by_coverage(
            count, PAPER_COVERAGE[name], seed=seed, name=name
        )
    if name in ("LB", "MG"):
        # A random-direction segment of length s has mean MBR area
        # s^2 E|sin t cos t| = s^2 / pi; pick s so n segments hit the
        # Table 3 coverage at any scale.
        length = math.sqrt(math.pi * PAPER_COVERAGE[name] / count)
        towns = 14 if name == "LB" else 10
        seed = 44 if name == "LB" else 55
        return road_segments(
            count, towns=towns, segment_length=length, seed=seed, name=name
        )
    if name == "TR":
        return triangular_squares(
            count, 4.0, 18.0, 19.0, seed=66, name="TR",
            target_coverage=PAPER_COVERAGE["TR"],
        )
    if name == "CFD":
        return cfd_points(count, seed=77, name="CFD")
    raise ValueError(f"unknown paper data set {name!r}")


def table3_rows(scale: float | None = None) -> list[dict[str, object]]:
    """Regenerate Table 3: name, type, size, measured coverage."""
    datasets = paper_datasets(scale)
    rows = []
    for name, dataset in datasets.items():
        rows.append(
            {
                "name": name,
                "type": dataset.description,
                "size": len(dataset),
                "coverage": round(dataset.coverage(), 3),
                "paper_coverage": PAPER_COVERAGE[name],
            }
        )
    return rows
