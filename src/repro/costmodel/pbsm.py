"""PBSM analytic I/O model (section 4.1.2, equations 8-15)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel.s3j import sort_passes


def pbsm_partitions(pages_a: int, pages_b: int, memory_pages: int) -> int:
    """Equation 8: ``D = (S_A + S_B) / M``."""
    return max(1, math.ceil((pages_a + pages_b) / memory_pages))


def expected_replication_factor(side: float, tiles_per_dim: int) -> float:
    """Expected copies per uniform ``side x side`` object on a
    ``tiles_per_dim^2`` grid: ``(1 + d 2^j)^2`` — each dimension
    overlaps ``1 + d / tile_side`` tiles on average."""
    if not 0.0 <= side <= 1.0:
        raise ValueError("side must be in [0, 1]")
    if tiles_per_dim < 1:
        raise ValueError("tiles_per_dim must be positive")
    per_dim = 1.0 + side * tiles_per_dim
    return per_dim * per_dim


@dataclass(frozen=True)
class PBSMCostBreakdown:
    """Page reads+writes per PBSM step."""

    partition_ios: int    # equation 10: (1 + r_A) S_A + (1 + r_B) S_B
    repartition_ios: int  # equation 13 (half the partitions redo)
    join_ios: int         # equations 12/14: read partitions, write C
    sort_ios: int         # equation 15: sort C with duplicate elimination

    @property
    def total_ios(self) -> int:
        return (
            self.partition_ios + self.repartition_ios + self.join_ios + self.sort_ios
        )


def pbsm_io(
    pages_a: int,
    pages_b: int,
    memory_pages: int,
    replication_a: float,
    replication_b: float,
    candidate_pages: int,
    result_pages: int,
    repartition_fraction: float = 0.5,
    dedup_shrink: float = 0.0,
    fan_in: int | None = None,
) -> PBSMCostBreakdown:
    """Predicted PBSM page I/O.

    ``repartition_fraction`` is the share of partitions that overflow
    memory and must be repartitioned — "we expect half the partitions to
    require repartitioning" under equation 8's partition count.
    ``dedup_shrink`` is the per-pass shrink factor of equation 15's
    duplicate elimination (0 = no shrinkage, a conservative bound).
    """
    if not 0.0 <= repartition_fraction <= 1.0:
        raise ValueError("repartition_fraction must be in [0, 1]")
    ra_pages = replication_a * pages_a
    rb_pages = replication_b * pages_b

    partition = (1.0 + replication_a) * pages_a + (1.0 + replication_b) * pages_b
    repartition = repartition_fraction * (
        (1.0 + replication_a) * ra_pages + (1.0 + replication_b) * rb_pages
    )
    join = ra_pages + rb_pages + candidate_pages
    sort = _dedup_sort_ios(
        candidate_pages,
        result_pages,
        memory_pages,
        dedup_shrink,
        fan_in or max(2, memory_pages - 1),
    )
    return PBSMCostBreakdown(
        partition_ios=math.ceil(partition),
        repartition_ios=math.ceil(repartition),
        join_ios=math.ceil(join),
        sort_ios=math.ceil(sort),
    )


def _dedup_sort_ios(
    candidate_pages: int,
    result_pages: int,
    memory_pages: int,
    shrink: float,
    fan_in: int,
) -> float:
    """Equation 15: sorting the candidate list with per-pass shrinkage.

    When C fits in memory the cost is ``C + J`` (read once, write the
    deduplicated result)."""
    if candidate_pages <= 0:
        return 0.0
    if candidate_pages <= memory_pages:
        return candidate_pages + result_pages
    passes = sort_passes(candidate_pages, memory_pages, fan_in)
    total = 0.0
    remaining = float(candidate_pages)
    for _ in range(passes):
        total += 2.0 * remaining
        remaining *= 1.0 - shrink
    return total
