"""R-tree spatial join (Brinkhoff, Kriegel & Seeger, SIGMOD 1993).

Section 2 of the paper surveys the indexed alternatives to S3J; the
canonical one is the synchronized depth-first traversal of two R-trees.
This module provides it, completing the library's indexed-join story
(Filter Tree join for size-separated indexes, R-tree join for
R-tree-indexed data).

The traversal visits a pair of nodes only if their MBRs intersect, and
restricts entry pairing to the intersection of the two node MBRs — the
BKS93 space-restriction optimization.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry.rect import Rect
from repro.rtree.rtree import RTree, _Node
from repro.storage.iostats import IOStats


def rtree_join(
    tree_a: RTree, tree_b: RTree, stats: IOStats | None = None
) -> Iterator[tuple[Any, Any]]:
    """Yield every payload pair whose MBRs intersect, by synchronized
    traversal of the two trees."""
    root_a = tree_a._root
    root_b = tree_b._root
    if not root_a.entries or not root_b.entries:
        return
    yield from _match(
        root_a, tree_a.height, root_b, tree_b.height, stats
    )


def _charge(stats: IOStats | None, op: str = "rtree") -> None:
    if stats is not None:
        stats.charge_cpu(op)


def _match(
    node_a: _Node,
    height_a: int,
    node_b: _Node,
    height_b: int,
    stats: IOStats | None,
) -> Iterator[tuple[Any, Any]]:
    """Synchronized traversal of two subtrees of possibly different
    heights (the taller side descends first)."""
    _charge(stats)
    if height_a > height_b:
        for rect, child in node_a.entries:
            _charge(stats, "mbr_test")
            if rect.intersects(node_b.mbr()):
                yield from _match(child, height_a - 1, node_b, height_b, stats)
        return
    if height_b > height_a:
        for rect, child in node_b.entries:
            _charge(stats, "mbr_test")
            if node_a.mbr().intersects(rect):
                yield from _match(node_a, height_a, child, height_b - 1, stats)
        return

    # Equal heights: pair up entries, restricted to the common region.
    common = node_a.mbr().intersection(node_b.mbr())
    if common is None:
        return
    entries_a = _restricted(node_a, common, stats)
    entries_b = _restricted(node_b, common, stats)
    if node_a.leaf:
        for rect_a, payload_a in entries_a:
            for rect_b, payload_b in entries_b:
                _charge(stats, "mbr_test")
                if rect_a.intersects(rect_b):
                    yield payload_a, payload_b
    else:
        for rect_a, child_a in entries_a:
            for rect_b, child_b in entries_b:
                _charge(stats, "mbr_test")
                if rect_a.intersects(rect_b):
                    yield from _match(
                        child_a, height_a - 1, child_b, height_b - 1, stats
                    )


def _restricted(
    node: _Node, region: Rect, stats: IOStats | None
) -> list[tuple[Rect, Any]]:
    """BKS93 space restriction: only entries intersecting the common
    region of the two node MBRs can contribute pairs."""
    kept = []
    for rect, child in node.entries:
        _charge(stats, "mbr_test")
        if rect.intersects(region):
            kept.append((rect, child))
    return kept
