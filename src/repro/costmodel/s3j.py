"""S3J analytic I/O model (section 4.1.1, equations 1-7)."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class S3JCostBreakdown:
    """Page reads+writes per S3J phase."""

    scan_ios: int      # equation 1: 2 S_A + 2 S_B
    sort_ios: int      # equation 3: 2 sum_i l_i S_i per data set
    join_ios: int      # equation 4: S_A + S_B + J

    @property
    def total_ios(self) -> int:
        return self.scan_ios + self.sort_ios + self.join_ios


def sort_passes(file_pages: int, memory_pages: int, fan_in: int) -> int:
    """``l_i``: total passes (run formation + merges) to sort a file."""
    if file_pages <= 0:
        return 0
    if file_pages <= memory_pages:
        return 1
    runs = math.ceil(file_pages / memory_pages)
    return 1 + math.ceil(math.log(runs, fan_in))


def s3j_io(
    pages_a: int,
    pages_b: int,
    memory_pages: int,
    fractions_a: list[float],
    fractions_b: list[float],
    result_pages: int,
    fan_in: int | None = None,
) -> S3JCostBreakdown:
    """Predicted S3J page I/O.

    ``fractions_a``/``fractions_b`` are the level-file occupancy
    fractions (equation 2 for uniform squares, or measured); the level
    file sizes are ``S_i = f_i * S``.
    """
    fan_in = fan_in or max(2, memory_pages - 1)
    scan = 2 * pages_a + 2 * pages_b
    sort = 0
    for pages, fractions in ((pages_a, fractions_a), (pages_b, fractions_b)):
        for fraction in fractions:
            level_pages = math.ceil(fraction * pages)
            sort += 2 * sort_passes(level_pages, memory_pages, fan_in) * level_pages
    join = pages_a + pages_b + result_pages
    return S3JCostBreakdown(scan_ios=scan, sort_ios=sort, join_ios=join)


def s3j_best_case_io(pages_a: int, pages_b: int, result_pages: int) -> int:
    """Equation 5: every level file fits in memory -> ``5 S_A + 5 S_B + J``."""
    return 5 * pages_a + 5 * pages_b + result_pages


def s3j_worst_case_io(
    pages_a: int,
    pages_b: int,
    memory_pages: int,
    result_pages: int,
    fan_in: int | None = None,
) -> int:
    """Equation 6: a single level file per data set ->
    ``3 S_A + 3 S_B + 2 l_A S_A + 2 l_B S_B + J``."""
    fan_in = fan_in or max(2, memory_pages - 1)
    l_a = sort_passes(pages_a, memory_pages, fan_in)
    l_b = sort_passes(pages_b, memory_pages, fan_in)
    return (
        3 * pages_a
        + 3 * pages_b
        + 2 * l_a * pages_a
        + 2 * l_b * pages_b
        + result_pages
    )


def s3j_hilbert_cpu(
    pages_a: int,
    pages_b: int,
    entries_per_page: int,
    hilbert_seconds: float = 10e-6,
) -> float:
    """Equation 7: ``H (S_A + S_B) E`` seconds of Hilbert computation."""
    return hilbert_seconds * (pages_a + pages_b) * entries_per_page
