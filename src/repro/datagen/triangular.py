"""The TR data set: squares with triangular-distributed log-sizes.

Section 5.1: "the size of the square entities is d = 2^-l where l has
a [triangular] probability distribution with minimum value x1, maximum
value x3, and the peak ... at x2.  TR contains 50,000 entities and was
generated using x1 = 4, x2 = 18, x3 = 19."

Squares range from side 1/16 (huge, heavily overlapping) down to
2^-19, producing the high size variability that drives SHJ's
replication factor to 10 in the paper's Table 4.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset


def triangular_squares(
    count: int,
    l_min: float = 4.0,
    l_mode: float = 18.0,
    l_max: float = 19.0,
    seed: int = 0,
    name: str = "TR",
    target_coverage: float | None = None,
) -> SpatialDataset:
    """``count`` squares of side ``2^-l`` with ``l ~ Triangular(l_min,
    l_mode, l_max)``, positions uniform (squares kept inside the unit
    square).

    ``target_coverage`` rescales all sides by one constant factor so the
    total entity area over the space area hits the given value — i.e.
    it shifts the whole triangular distribution of ``l`` by a constant.
    The paper states (x1, x2, x3) = (4, 18, 19) *and* coverage 13.96
    for TR (Table 3); those two are mutually inconsistent under the
    literal reading of the generator, and coverage is the
    join-cost-relevant quantity, so the Table 3 catalog pins coverage
    (see EXPERIMENTS.md).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not l_min <= l_mode <= l_max:
        raise ValueError("need l_min <= l_mode <= l_max")
    if l_min <= 0:
        raise ValueError("l_min must be positive (sides below 1)")
    rng = np.random.default_rng(seed)
    levels = rng.triangular(l_min, l_mode, l_max, size=count)
    sides = np.exp2(-levels)
    if target_coverage is not None:
        if target_coverage <= 0:
            raise ValueError("target_coverage must be positive")
        sides = _rescale_to_coverage(sides, target_coverage)
    xlo = rng.uniform(0.0, 1.0, size=count) * (1.0 - sides)
    ylo = rng.uniform(0.0, 1.0, size=count) * (1.0 - sides)
    entities = [
        Entity.from_geometry(eid, Rect(x, y, x + d, y + d))
        for eid, (x, y, d) in enumerate(zip(xlo, ylo, sides))
    ]
    return SpatialDataset(
        name,
        entities,
        description=(
            f"{count} squares, side 2^-l, l ~ Triangular"
            f"({l_min:g}, {l_mode:g}, {l_max:g})"
        ),
    )


def _rescale_to_coverage(sides: np.ndarray, target: float) -> np.ndarray:
    """Scale all sides by one factor to hit the target total area,
    iterating because sides are capped at 0.5 (clipping a large square
    loses area that the uncapped squares must make up)."""
    sides = sides.copy()
    for _ in range(8):
        total = float(np.sum(sides * sides))
        if total <= 0 or abs(total - target) / target < 0.005:
            break
        free = sides < 0.5
        capped_area = float(np.sum(sides[~free] ** 2))
        free_area = total - capped_area
        if free_area <= 0 or target <= capped_area:
            break
        factor = np.sqrt((target - capped_area) / free_area)
        sides[free] = np.minimum(sides[free] * factor, 0.5)
    return sides
