"""Physical storage backends.

The buffer pool talks to a backend through two operations: read a page,
write a page.  Two backends are provided:

- :class:`MemoryBackend` — pages live in a dictionary.  This is the
  default for experiments: I/O is *counted* (that is what the paper's
  analysis is about) without paying milliseconds of real disk latency
  per simulated page.
- :class:`FileBackend` — pages are real fixed-size blocks in real files
  on disk, serialized with the file's record codec.  Used to validate
  that the whole stack round-trips through genuine I/O.
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any

from repro.storage.records import RecordCodec

Record = tuple[Any, ...]


class BackendClosedError(RuntimeError):
    """An operation was issued to a backend after ``close()``.

    ``close()`` itself is idempotent on every backend; any *other*
    operation on a closed backend raises this instead of whatever
    arbitrary failure the stale internal state would have produced.
    """


class StorageBackend(ABC):
    """Physical page store keyed by (file name, page number).

    Lifecycle contract: ``close()`` flushes/releases resources and may
    be called any number of times; every other operation on a closed
    backend raises :class:`BackendClosedError`.
    """

    @abstractmethod
    def create_file(self, name: str, codec: RecordCodec, page_size: int) -> None:
        """Register a new (empty) file."""

    @abstractmethod
    def delete_file(self, name: str) -> None:
        """Remove a file and its pages."""

    @abstractmethod
    def rename_file(self, old: str, new: str) -> None:
        """Move a file's pages under a new name (metadata only; the new
        name must not already exist at the backend)."""

    @abstractmethod
    def read_page(self, name: str, page_no: int) -> list[Record]:
        """Return the records stored in one page."""

    @abstractmethod
    def write_page(self, name: str, page_no: int, records: list[Record]) -> None:
        """Persist the records of one page."""

    def sync(self) -> None:
        """Flush every buffered write through to the medium.

        The durability contract: after ``sync()`` returns, every page
        acknowledged by ``write_page`` survives a process kill (to the
        extent the medium allows).  The default is a no-op — correct
        for :class:`MemoryBackend`, whose medium *is* process memory.
        """

    @abstractmethod
    def close(self) -> None:
        """Release any held resources (idempotent).  Implies ``sync()``
        on backends with a durable medium."""


class MemoryBackend(StorageBackend):
    """Pages held in process memory (I/O is counted, not performed)."""

    def __init__(self) -> None:
        self._pages: dict[tuple[str, int], list[Record]] = {}
        self._files: set[str] = set()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise BackendClosedError("operation on a closed MemoryBackend")

    def create_file(self, name: str, codec: RecordCodec, page_size: int) -> None:
        self._check_open()
        if name in self._files:
            raise FileExistsError(f"storage file {name!r} already exists")
        self._files.add(name)

    def delete_file(self, name: str) -> None:
        self._check_open()
        self._files.discard(name)
        for key in [k for k in self._pages if k[0] == name]:
            del self._pages[key]

    def rename_file(self, old: str, new: str) -> None:
        self._check_open()
        if old not in self._files:
            raise FileNotFoundError(f"no storage file named {old!r}")
        if new in self._files:
            raise FileExistsError(f"storage file {new!r} already exists")
        self._files.discard(old)
        self._files.add(new)
        for key in [k for k in self._pages if k[0] == old]:
            self._pages[(new, key[1])] = self._pages.pop(key)

    def read_page(self, name: str, page_no: int) -> list[Record]:
        self._check_open()
        try:
            return list(self._pages[(name, page_no)])
        except KeyError:
            raise ValueError(f"page {page_no} of {name!r} was never written") from None

    def write_page(self, name: str, page_no: int, records: list[Record]) -> None:
        self._check_open()
        self._pages[(name, page_no)] = list(records)

    def close(self) -> None:
        self._closed = True
        self._pages.clear()
        self._files.clear()


_PAGE_HEADER = struct.Struct("<I")


class FileBackend(StorageBackend):
    """Pages as fixed-size blocks in real files.

    Block layout: a 4-byte record count followed by ``E`` fixed-size
    record slots (``E = page_size // record_size``), zero-padded.
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._codecs: dict[str, RecordCodec] = {}
        self._page_sizes: dict[str, int] = {}
        self._handles: dict[str, Any] = {}
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise BackendClosedError("operation on a closed FileBackend")

    def _path(self, name: str) -> Path:
        safe = name.replace(os.sep, "_").replace("/", "_")
        return self.directory / f"{safe}.pages"

    def _block_size(self, name: str) -> int:
        codec = self._codecs[name]
        capacity = codec.records_per_page(self._page_sizes[name])
        return _PAGE_HEADER.size + capacity * codec.record_size

    def _handle(self, name: str):
        if name not in self._handles:
            self._handles[name] = open(self._path(name), "r+b")
        return self._handles[name]

    def create_file(self, name: str, codec: RecordCodec, page_size: int) -> None:
        self._check_open()
        if name in self._codecs:
            raise FileExistsError(f"storage file {name!r} already exists")
        self._codecs[name] = codec
        self._page_sizes[name] = page_size
        self._path(name).write_bytes(b"")

    def delete_file(self, name: str) -> None:
        self._check_open()
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()
        self._codecs.pop(name, None)
        self._page_sizes.pop(name, None)
        path = self._path(name)
        if path.exists():
            path.unlink()

    def rename_file(self, old: str, new: str) -> None:
        self._check_open()
        if old not in self._codecs:
            raise FileNotFoundError(f"no storage file named {old!r}")
        if new in self._codecs:
            raise FileExistsError(f"storage file {new!r} already exists")
        handle = self._handles.pop(old, None)
        if handle is not None:
            handle.close()
        self._codecs[new] = self._codecs.pop(old)
        self._page_sizes[new] = self._page_sizes.pop(old)
        os.replace(self._path(old), self._path(new))

    def read_page(self, name: str, page_no: int) -> list[Record]:
        self._check_open()
        codec = self._codecs[name]
        block_size = self._block_size(name)
        handle = self._handle(name)
        handle.seek(page_no * block_size)
        block = handle.read(block_size)
        if len(block) < _PAGE_HEADER.size:
            raise ValueError(f"page {page_no} of {name!r} was never written")
        (count,) = _PAGE_HEADER.unpack_from(block, 0)
        records = []
        offset = _PAGE_HEADER.size
        for _ in range(count):
            records.append(codec.decode(block[offset : offset + codec.record_size]))
            offset += codec.record_size
        return records

    def write_page(self, name: str, page_no: int, records: list[Record]) -> None:
        self._check_open()
        codec = self._codecs[name]
        capacity = codec.records_per_page(self._page_sizes[name])
        if len(records) > capacity:
            raise ValueError(
                f"{len(records)} records exceed page capacity {capacity}"
            )
        block_size = self._block_size(name)
        payload = b"".join(codec.encode(record) for record in records)
        block = _PAGE_HEADER.pack(len(records)) + payload
        block += b"\x00" * (block_size - len(block))
        handle = self._handle(name)
        end = handle.seek(0, os.SEEK_END)
        target = page_no * block_size
        if target > end:
            # Fill any gap so seeks past EOF stay well-defined.
            handle.write(b"\x00" * (target - end))
        handle.seek(target)
        handle.write(block)

    def sync(self) -> None:
        """Flush and ``fsync`` every open file: the explicit durability
        point of the non-WAL backend.  ``write_page`` alone only hands
        bytes to the OS; only after ``sync()`` (or ``close()``) are they
        on the medium."""
        self._check_open()
        for handle in self._handles.values():
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        self._closed = True
        for handle in self._handles.values():
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
        self._handles.clear()
