"""Metamorphic transforms: result-preserving input rewrites.

Each transform rewrites a :class:`~repro.verify.cases.VerifyCase` into
a new case whose correct answer is *known* from the original's — so a
single workload yields a family of cross-checks:

- ``axis-swap`` — mirror every MBR across the ``y = x`` diagonal; the
  pair set is unchanged.
- ``reflect-x`` — reflect the space horizontally (``x -> 1 - x``); the
  pair set is unchanged.
- ``swap-ab`` — exchange the roles of A and B; every pair flips.
- ``zorder-curve`` — order S3J's level files by the Z-order curve
  instead of Hilbert (section 3.1 lists both); the input and the pair
  set are unchanged, only S3J's internal ordering moves.
- ``grid-snap`` — snap every coordinate to a coarse power-of-two grid.
  This *changes* the answer (so it is checked against the oracle only),
  but floods the input with boundary-touching, grid-aligned, and
  zero-area MBRs — the adversarial cases for closed-interval semantics.

Transforms declare whether they preserve the pair set
(:attr:`Transform.preserves_pairs`) and how pairs map
(:meth:`Transform.map_pairs`); the harness additionally self-checks
the *oracle* under every pair-preserving transform, so a buggy
transform cannot silently weaken the differential run.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.join.result import Pair
from repro.verify.cases import VerifyCase

RectMap = Callable[[Rect], Rect]


class Transform:
    """Base: the identity transform."""

    name = "identity"
    description = "unchanged input"
    preserves_pairs = True

    def apply(self, case: VerifyCase) -> VerifyCase:
        return case

    def map_pairs(
        self, pairs: frozenset[Pair], self_join: bool
    ) -> frozenset[Pair]:
        """Map the original case's pair set onto the transformed
        case's expected pair set (only meaningful when
        :attr:`preserves_pairs`)."""
        return pairs

    def param_overrides(self, algorithm: str) -> dict[str, Any]:
        """Extra constructor parameters for one algorithm."""
        return {}


class GeometryTransform(Transform):
    """Rewrite every entity MBR through a rectangle map."""

    def __init__(self, name: str, description: str, rect_map: RectMap) -> None:
        self.name = name
        self.description = description
        self._rect_map = rect_map

    def _map_dataset(self, dataset: SpatialDataset, tag: str) -> SpatialDataset:
        entities = [
            Entity(entity.eid, self._rect_map(entity.mbr))
            for entity in dataset
        ]
        return SpatialDataset(f"{dataset.name}.{tag}", entities)

    def apply(self, case: VerifyCase) -> VerifyCase:
        mapped_a = self._map_dataset(case.dataset_a, self.name)
        if case.self_join:
            mapped_b = mapped_a
        else:
            mapped_b = self._map_dataset(case.dataset_b, self.name)
        return case.with_datasets(mapped_a, mapped_b, suffix=f"+{self.name}")


class SwapABTransform(Transform):
    """Exchange the two data sets; pairs flip orientation."""

    name = "swap-ab"
    description = "exchange the roles of A and B"

    def apply(self, case: VerifyCase) -> VerifyCase:
        if case.self_join:
            return case.with_datasets(
                case.dataset_a, case.dataset_b, suffix="+swap-ab"
            )
        return case.with_datasets(
            case.dataset_b, case.dataset_a, suffix="+swap-ab"
        )

    def map_pairs(
        self, pairs: frozenset[Pair], self_join: bool
    ) -> frozenset[Pair]:
        if self_join:
            return pairs  # canonical (min, max) pairs are orderless
        return frozenset((b, a) for a, b in pairs)


class CurveSwapTransform(Transform):
    """Run S3J over the Z-order curve instead of Hilbert.

    The input is untouched; only S3J's internal level-file ordering
    changes, so the pair set must be bit-identical (the prefix property
    both curves share is all the synchronized scan relies on).
    """

    name = "zorder-curve"
    description = "order S3J level files by Z-order instead of Hilbert"

    def param_overrides(self, algorithm: str) -> dict[str, Any]:
        if algorithm != "s3j":
            return {}
        from repro.curves.zorder import ZOrderCurve

        return {"curve": ZOrderCurve()}


def _axis_swap(rect: Rect) -> Rect:
    return Rect(rect.ylo, rect.xlo, rect.yhi, rect.xhi)


def _reflect_x(rect: Rect) -> Rect:
    return Rect(1.0 - rect.xhi, rect.ylo, 1.0 - rect.xlo, rect.yhi)


def _snapper(grid: int) -> RectMap:
    def snap(value: float) -> float:
        return round(value * grid) / grid

    def snap_rect(rect: Rect) -> Rect:
        return Rect(
            snap(rect.xlo), snap(rect.ylo), snap(rect.xhi), snap(rect.yhi)
        )

    return snap_rect


class GridSnapTransform(GeometryTransform):
    """Snap all coordinates to the ``grid``-cell lattice.

    Not pair-preserving: snapping moves geometry, so the transformed
    case is validated against the oracle on the *snapped* input.  Its
    value is adversarial: nearly every MBR in the result touches a grid
    line, and many collapse to zero width or height.
    """

    preserves_pairs = False

    def __init__(self, grid: int = 8) -> None:
        if grid < 2:
            raise ValueError("grid must be at least 2")
        super().__init__(
            f"grid-snap-{grid}",
            f"snap coordinates to the 1/{grid} lattice",
            _snapper(grid),
        )


AXIS_SWAP = GeometryTransform(
    "axis-swap", "mirror MBRs across the y = x diagonal", _axis_swap
)
REFLECT_X = GeometryTransform(
    "reflect-x", "reflect the space horizontally", _reflect_x
)

TRANSFORMS: dict[str, Transform] = {
    transform.name: transform
    for transform in (
        Transform(),
        AXIS_SWAP,
        REFLECT_X,
        SwapABTransform(),
        CurveSwapTransform(),
        GridSnapTransform(8),
    )
}

QUICK_TRANSFORMS = ("axis-swap", "swap-ab", "zorder-curve", "grid-snap-8")
FULL_TRANSFORMS = tuple(name for name in TRANSFORMS if name != "identity")


def transforms_by_name(names: tuple[str, ...]) -> list[Transform]:
    """Look transforms up by name (always including identity first)."""
    unknown = set(names) - set(TRANSFORMS)
    if unknown:
        raise ValueError(
            f"unknown transforms {sorted(unknown)}; "
            f"choose from {sorted(TRANSFORMS)}"
        )
    picked = [TRANSFORMS["identity"]]
    picked.extend(TRANSFORMS[name] for name in names if name != "identity")
    return picked
