"""Size Separation Spatial Join (figure 5 of the paper).

Given two spatial data sets A and B:

1. **Partition** — scan each data set; for each entity compute its
   Hilbert value and its Filter-Tree level, and append its descriptor
   to the corresponding level file.  No replication ever happens, so
   execution time depends only on the input sizes.  With Dynamic
   Spatial Bitmaps enabled, data set A populates the bitmap and data
   set B is filtered against it.
2. **Sort** — external-merge-sort each level file by Hilbert value.
3. **Join** — a synchronized scan over all sorted level files, reading
   each page once and writing the result.
"""

from __future__ import annotations

from repro.core.bitmap import DynamicSpatialBitmap
from repro.core.partition import DEFAULT_BATCH_SIZE, partition_levels
from repro.core.sync_scan import synchronized_scan
from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.geometry.rect import Rect
from repro.join.base import SpatialJoinAlgorithm
from repro.join.metrics import JoinMetrics
from repro.sorting.external_sort import ExternalSorter
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, HKEY, XHI, XLO, YHI, YLO, CandidatePairCodec


class SizeSeparationSpatialJoin(SpatialJoinAlgorithm):
    """The S3J algorithm.

    Parameters
    ----------
    storage:
        The storage manager to run against.
    curve:
        Space-filling curve for ordering level files (Hilbert by
        default; Z-order and Gray code work too — section 3.1).
    max_level:
        Deepest level file (``L``); the paper reports 10-20 typical.
    dsb_level:
        When set, enables Dynamic Spatial Bitmap filtering at this
        bitmap level (section 3.2).
    dsb_mode:
        ``"precise"`` or ``"fast"`` projection for entities larger than
        a bitmap cell.
    hilbert_precomputed:
        When true, descriptors already carry Hilbert values (the paper's
        "part of the descriptors" option) and no ``hilbert`` CPU cost is
        charged during partitioning.
    batch_size:
        Records per block of the batched partition pipeline
        (:mod:`repro.core.partition`).  ``None`` selects the scalar
        record-at-a-time reference path; both produce bit-identical
        level files and ledger counts.
    """

    name = "s3j"
    phase_names = ("partition", "sort", "join")

    def __init__(
        self,
        storage: StorageManager,
        curve: SpaceFillingCurve | None = None,
        max_level: int = 16,
        dsb_level: int | None = None,
        dsb_mode: str = "precise",
        hilbert_precomputed: bool = False,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(storage)
        self.curve = curve or HilbertCurve()
        self.assigner = LevelAssigner(
            order=self.curve.order, max_level=min(max_level, self.curve.order)
        )
        self.dsb_level = dsb_level
        self.dsb_mode = dsb_mode
        self.hilbert_precomputed = hilbert_precomputed
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive (or None for scalar)")
        self.batch_size = batch_size

    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        stats = self.storage.stats
        tracer = self.obs.tracer
        metrics = self.obs.active_metrics
        bitmap: DynamicSpatialBitmap | None = None
        if self.dsb_level is not None:
            bitmap = DynamicSpatialBitmap(
                self.dsb_level,
                self.curve,
                mode=self.dsb_mode,
                stats=stats,
                metrics=metrics,
            )

        events = self.obs.events
        with self._phase("partition"):
            with tracer.span("partition:A", side="A") as span:
                levels_a = self._partition(input_a, "A", bitmap=bitmap, building=True)
                span.set(levels=len(levels_a))
            if events.enabled:
                events.emit(
                    "shard_progress", phase="partition", done=1, total=2,
                    detail="A", levels=len(levels_a),
                )
            # A's level-file tails are complete: write them now (one
            # sequential write each, due at the phase boundary anyway)
            # so B's scan never evicts dirty A pages in LRU-recency
            # order (repro.core.partition's parity invariant).
            for handle in levels_a.values():
                handle.flush()
            with tracer.span("partition:B", side="B") as span:
                levels_b = self._partition(input_b, "B", bitmap=bitmap, building=False)
                span.set(levels=len(levels_b))
            if events.enabled:
                events.emit(
                    "shard_progress", phase="partition", done=2, total=2,
                    detail="B", levels=len(levels_b),
                )
            self.storage.phase_boundary()
        if metrics is not None and bitmap is not None:
            metrics.gauge("dsb.population_bits", bitmap.population())
            metrics.gauge("dsb.num_bits", bitmap.num_bits)
            metrics.gauge("dsb.level", bitmap.level)

        with self._phase("sort"):
            sorted_a = self._sort_levels(levels_a, "A")
            sorted_b = self._sort_levels(levels_b, "B")
            self.storage.phase_boundary()

        pairs: set[tuple[int, int]] = set()
        result = self.storage.create_file(
            self._file_name("result"), CandidatePairCodec()
        )

        def emit(rec_a, rec_b) -> None:
            pair = (rec_a[EID], rec_b[EID])
            pairs.add(pair)
            result.append(pair)

        with self._phase("join"):
            with tracer.span("sync-scan") as span:
                processed = synchronized_scan(
                    sorted_a,
                    sorted_b,
                    self.curve.order,
                    emit,
                    stats=stats,
                    metrics=metrics,
                    events=events,
                )
                span.set(pages=processed, pairs=len(pairs))
            self.storage.phase_boundary()

        metrics = self._build_metrics(
            levels_a={level: f.num_records for level, f in sorted_a.items()},
            levels_b={level: f.num_records for level, f in sorted_b.items()},
            result_pages=result.num_pages,
            dsb_filtered=bitmap.filtered_count if bitmap else 0,
            dsb_pages=bitmap.pages(self.storage.page_size) if bitmap else 0,
        )
        # S3J never replicates; DSB filtering can shrink B (r_B <= 1).
        metrics.replication_a = 1.0
        if input_b.num_records:
            kept = sum(f.num_records for f in sorted_b.values())
            metrics.replication_b = kept / input_b.num_records
        return pairs, metrics

    # -- phases ------------------------------------------------------------

    def _partition(
        self,
        source: PagedFile,
        tag: str,
        bitmap: DynamicSpatialBitmap | None,
        building: bool,
    ) -> dict[int, PagedFile]:
        """Scan one data set and route descriptors to level files.

        ``building=True`` populates the bitmap (data set A);
        ``building=False`` probes it and filters (data set B).
        Dispatches to the batched pipeline unless ``batch_size`` is
        None; the scalar loop below is the parity reference.
        """
        if self.batch_size is not None:
            return partition_levels(
                source,
                storage=self.storage,
                assigner=self.assigner,
                curve=self.curve,
                namer=lambda level: self._file_name(f"{tag}-L{level}"),
                bitmap=bitmap,
                building=building,
                hilbert_precomputed=self.hilbert_precomputed,
                batch_size=self.batch_size,
            )
        stats = self.storage.stats
        level_files: dict[int, PagedFile] = {}
        for record in source.scan():
            mbr = Rect(record[XLO], record[YLO], record[XHI], record[YHI])
            level = self.assigner.level(mbr)
            stats.charge_cpu("level")
            if self.hilbert_precomputed:
                hilbert = record[HKEY]
            else:
                hilbert = self.curve.key_of_normalized(*mbr.center)
                stats.charge_cpu("hilbert")
            if bitmap is not None:
                if building:
                    bitmap.set_entity(mbr, hilbert, level)
                elif not bitmap.admits(mbr, hilbert, level):
                    continue  # cannot join anything in A: filtered out
            handle = level_files.get(level)
            if handle is None:
                handle = self.storage.create_file(self._file_name(f"{tag}-L{level}"))
                level_files[level] = handle
            handle.append(
                (record[EID], record[XLO], record[YLO], record[XHI], record[YHI], hilbert)
            )
        return level_files

    def _sort_levels(
        self, level_files: dict[int, PagedFile], tag: str
    ) -> dict[int, PagedFile]:
        """Sort every level file by Hilbert value."""
        sorter = ExternalSorter(self.storage)
        sorted_files: dict[int, PagedFile] = {}
        events = self.obs.events
        ordered = sorted(level_files.items())
        for done, (level, handle) in enumerate(ordered, start=1):
            outcome = sorter.sort(
                handle,
                self._file_name(f"{tag}-L{level}-sorted"),
                key=lambda record: record[HKEY],
            )
            sorted_files[level] = outcome.output
            self.storage.drop_file(handle.name)
            if events.enabled:
                events.emit(
                    "shard_progress", phase="sort", done=done,
                    total=len(ordered), detail=f"{tag}-L{level}",
                    records=outcome.output.num_records,
                )
        return sorted_files
