"""The two comparison algorithms the paper evaluates S3J against.

- :class:`~repro.baselines.pbsm.PartitionBasedSpatialMergeJoin` —
  PBSM (Patel & DeWitt, SIGMOD 1996), section 2.1 / figure 2.
- :class:`~repro.baselines.shj.SpatialHashJoin` —
  SHJ (Lo & Ravishankar, SIGMOD 1996), section 2.2 / figure 3.

Both are full implementations (replication, filtering, repartitioning,
duplicate elimination, R-tree probing) built on the same storage
manager, sort module, and plane-sweep module as S3J, mirroring the
shared-component methodology of the paper's prototype (section 5).
"""

from repro.baselines.pbsm import PartitionBasedSpatialMergeJoin
from repro.baselines.shj import SpatialHashJoin

__all__ = ["PartitionBasedSpatialMergeJoin", "SpatialHashJoin"]
