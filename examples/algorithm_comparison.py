"""Compare S3J against PBSM and SHJ on a replication-hostile workload.

Reproduces the shape of the paper's figure 10a at example scale: on
data with high size variability (the TR distribution), the baselines
pay for replication — PBSM in duplicate elimination, SHJ in its
partition and join phases — while S3J's cost stays proportional to the
input size.

Run:  python examples/algorithm_comparison.py
"""

from repro.datagen import triangular_squares
from repro.experiments import run_algorithm


def main() -> None:
    # 3,000 squares with sides spanning 15 binary orders of magnitude
    # (the paper's TR recipe, at example-friendly coverage 4).
    tr = triangular_squares(
        3_000, 4.0, 18.0, 19.0, seed=66, target_coverage=4.0, name="TR"
    )
    scale = 0.06  # page capacity compensation (see repro.experiments)

    runs = [
        run_algorithm(tr, tr, "s3j", scale=scale),
        run_algorithm(tr, tr, "pbsm", label="pbsm 16x16", scale=scale, tiles_per_dim=16),
        run_algorithm(tr, tr, "pbsm", label="pbsm 32x32", scale=scale, tiles_per_dim=32),
        run_algorithm(tr, tr, "shj", scale=scale),
    ]

    baseline = runs[0].response_time
    header = f"{'algorithm':<12} {'time':>8} {'vs S3J':>7} {'I/Os':>8} {'r_A':>5} {'r_B':>5}  phases"
    print(header)
    print("-" * len(header))
    for run in runs:
        metrics = run.result.metrics
        phases = ", ".join(
            f"{name} {seconds:.1f}s" for name, seconds in run.breakdown.items()
        )
        print(
            f"{run.label:<12} {run.response_time:>7.1f}s "
            f"{run.response_time / baseline:>6.2f}x {metrics.total_ios:>8,} "
            f"{metrics.replication_a:>5.2f} {metrics.replication_b:>5.2f}  {phases}"
        )

    assert all(
        run.result.pairs == runs[0].result.pairs for run in runs[1:]
    ), "all algorithms must agree"
    print(f"\nall four runs found the same {len(runs[0].result.pairs):,} pairs")


if __name__ == "__main__":
    main()
