"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.storage.manager import StorageConfig, StorageManager


@pytest.fixture
def storage():
    """A memory-backed storage manager with a small buffer pool."""
    with StorageManager(StorageConfig(buffer_pages=32)) as manager:
        yield manager


@pytest.fixture
def tiny_storage():
    """A storage manager with a tiny pool (eviction pressure)."""
    with StorageManager(StorageConfig(buffer_pages=4)) as manager:
        yield manager


def make_squares(
    count: int, side: float, seed: int, name: str = "squares"
) -> SpatialDataset:
    """Uniform random squares without the numpy dependency overhead."""
    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        x = rng.uniform(0.0, 1.0 - side)
        y = rng.uniform(0.0, 1.0 - side)
        entities.append(
            Entity.from_geometry(eid, Rect(x, y, x + side, y + side))
        )
    return SpatialDataset(name, entities)


def brute_force_pairs(
    dataset_a: SpatialDataset, dataset_b: SpatialDataset, margin: float = 0.0
) -> frozenset[tuple[int, int]]:
    """Reference join: all MBR-intersecting pairs (with margin expansion)."""
    pairs = set()
    for ea in dataset_a:
        box_a = ea.mbr if margin == 0.0 else ea.mbr.expanded(margin).clamped()
        for eb in dataset_b:
            box_b = eb.mbr if margin == 0.0 else eb.mbr.expanded(margin).clamped()
            if box_a.intersects(box_b):
                pairs.add((ea.eid, eb.eid))
    return frozenset(pairs)


def brute_force_self_pairs(
    dataset: SpatialDataset, margin: float = 0.0
) -> frozenset[tuple[int, int]]:
    """Reference self join: canonical (min, max) pairs, no (e, e)."""
    entities = list(dataset)
    pairs = set()
    for i, ea in enumerate(entities):
        box_a = ea.mbr if margin == 0.0 else ea.mbr.expanded(margin).clamped()
        for eb in entities[i + 1 :]:
            box_b = eb.mbr if margin == 0.0 else eb.mbr.expanded(margin).clamped()
            if box_a.intersects(box_b):
                pairs.add((min(ea.eid, eb.eid), max(ea.eid, eb.eid)))
    return frozenset(pairs)
