"""Exact geometry payloads for the refinement step.

The filter step of a spatial join works on MBRs; candidate pairs are
then checked against the *actual* geometries (Orenstein's two-step
evaluation, section 2 of the paper).  These classes carry the actual
geometries: points, line segments (TIGER road data), and simple
polygons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def mbr(self) -> Rect:
        """A degenerate MBR covering just this point."""
        return Rect.point(self.x, self.y)

    def distance_to(self, other: Point) -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True, slots=True)
class Segment:
    """A line segment, the entity type of the TIGER/Line data sets."""

    x1: float
    y1: float
    x2: float
    y2: float

    def mbr(self) -> Rect:
        """The axis-aligned bounding box of the two endpoints."""
        return Rect(
            min(self.x1, self.x2),
            min(self.y1, self.y2),
            max(self.x1, self.x2),
            max(self.y1, self.y2),
        )

    @property
    def length(self) -> float:
        return math.hypot(self.x2 - self.x1, self.y2 - self.y1)

    def intersects(self, other: Segment) -> bool:
        """Exact segment-segment intersection (shared endpoints count)."""
        return _segments_intersect(
            (self.x1, self.y1),
            (self.x2, self.y2),
            (other.x1, other.y1),
            (other.x2, other.y2),
        )

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from a point to this segment."""
        px, py = self.x2 - self.x1, self.y2 - self.y1
        norm = px * px + py * py
        if norm == 0.0:
            return math.hypot(x - self.x1, y - self.y1)
        t = ((x - self.x1) * px + (y - self.y1) * py) / norm
        t = min(1.0, max(0.0, t))
        cx, cy = self.x1 + t * px, self.y1 + t * py
        return math.hypot(x - cx, y - cy)

    def distance_to(self, other: Segment) -> float:
        """Minimum distance between two segments (zero when they cross)."""
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.x1, other.y1),
            self.distance_to_point(other.x2, other.y2),
            other.distance_to_point(self.x1, self.y1),
            other.distance_to_point(self.x2, self.y2),
        )


@dataclass(frozen=True, slots=True)
class Polygon:
    """A simple polygon given by its vertex ring (no self-intersection).

    Sufficient for region entities such as parking lots or land parcels
    in the paper's motivating examples.
    """

    vertices: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")

    def mbr(self) -> Rect:
        """The axis-aligned bounding box of the vertex ring."""
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def edges(self) -> list[Segment]:
        """The boundary as a list of segments (ring order, closed)."""
        ring = list(self.vertices)
        return [
            Segment(*ring[i], *ring[(i + 1) % len(ring)]) for i in range(len(ring))
        ]

    def contains_point(self, x: float, y: float) -> bool:
        """Even-odd ray casting; boundary points count as inside."""
        inside = False
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            if Segment(x1, y1, x2, y2).distance_to_point(x, y) == 0.0:
                return True
            if (y1 > y) != (y2 > y):
                x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_cross:
                    inside = not inside
        return inside

    def intersects(self, other: Polygon) -> bool:
        """Exact polygon overlap: edge crossing or full containment."""
        for e1 in self.edges():
            for e2 in other.edges():
                if e1.intersects(e2):
                    return True
        return self.contains_point(*other.vertices[0]) or other.contains_point(
            *self.vertices[0]
        )

    def distance_to(self, other: Polygon) -> float:
        """Minimum distance between two polygons (zero when they meet)."""
        if self.intersects(other):
            return 0.0
        return min(
            e1.distance_to(e2) for e1 in self.edges() for e2 in other.edges()
        )


def _orientation(p: tuple[float, float], q: tuple[float, float], r: tuple[float, float]) -> int:
    """Sign of the cross product (q - p) x (r - p): 1 ccw, -1 cw, 0 collinear."""
    val = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if val > 0:
        return 1
    if val < 0:
        return -1
    return 0


def _on_segment(p: tuple[float, float], q: tuple[float, float], r: tuple[float, float]) -> bool:
    """Given collinear p, q, r: does q lie on segment pr?"""
    return (
        min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
        and min(p[1], r[1]) <= q[1] <= max(p[1], r[1])
    )


def _segments_intersect(
    p1: tuple[float, float],
    p2: tuple[float, float],
    p3: tuple[float, float],
    p4: tuple[float, float],
) -> bool:
    """Classic orientation-based segment intersection, robust for
    collinear and touching configurations."""
    o1 = _orientation(p1, p2, p3)
    o2 = _orientation(p1, p2, p4)
    o3 = _orientation(p3, p4, p1)
    o4 = _orientation(p3, p4, p2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p3, p2):
        return True
    if o2 == 0 and _on_segment(p1, p4, p2):
        return True
    if o3 == 0 and _on_segment(p3, p1, p4):
        return True
    if o4 == 0 and _on_segment(p3, p2, p4):
        return True
    return False
