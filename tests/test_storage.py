"""Tests for the storage manager: records, backends, buffer pool,
paged files, ledger, and cost models."""

import pytest

from repro.storage.backend import FileBackend, MemoryBackend
from repro.storage.buffer import BufferPool, BufferPoolExhausted
from repro.storage.costs import CostModel, CpuModel, DiskModel
from repro.storage.iostats import IOStats, PhaseStats
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.records import (
    CandidatePairCodec,
    EntityDescriptorCodec,
    StructCodec,
)


class TestCodecs:
    def test_descriptor_size_and_capacity(self):
        codec = EntityDescriptorCodec()
        assert codec.record_size == 48
        assert codec.records_per_page(4096) == 85  # the paper's E

    def test_descriptor_roundtrip(self):
        codec = EntityDescriptorCodec()
        record = (42, 0.1, 0.2, 0.3, 0.4, 123456789)
        assert codec.decode(codec.encode(record)) == record

    def test_pair_roundtrip(self):
        codec = CandidatePairCodec()
        assert codec.decode(codec.encode((7, -3))) == (7, -3)

    def test_page_too_small_raises(self):
        with pytest.raises(ValueError):
            EntityDescriptorCodec().records_per_page(32)

    def test_struct_codec_generic(self):
        codec = StructCodec("<id")
        assert codec.decode(codec.encode((1, 2.5))) == (1, 2.5)


class TestBackends:
    @pytest.fixture(params=["memory", "disk"])
    def backend(self, request, tmp_path):
        if request.param == "memory":
            backend = MemoryBackend()
        else:
            backend = FileBackend(tmp_path)
        yield backend
        backend.close()

    def test_roundtrip(self, backend):
        codec = EntityDescriptorCodec()
        backend.create_file("f", codec, 4096)
        records = [(i, 0.1, 0.2, 0.3, 0.4, i * 7) for i in range(10)]
        backend.write_page("f", 0, records)
        assert backend.read_page("f", 0) == records

    def test_overwrite_page(self, backend):
        codec = CandidatePairCodec()
        backend.create_file("f", codec, 4096)
        backend.write_page("f", 0, [(1, 2)])
        backend.write_page("f", 0, [(3, 4), (5, 6)])
        assert backend.read_page("f", 0) == [(3, 4), (5, 6)]

    def test_out_of_order_page_writes(self, backend):
        codec = CandidatePairCodec()
        backend.create_file("f", codec, 4096)
        backend.write_page("f", 3, [(3, 3)])
        backend.write_page("f", 1, [(1, 1)])
        assert backend.read_page("f", 3) == [(3, 3)]
        assert backend.read_page("f", 1) == [(1, 1)]

    def test_missing_page_raises(self, backend):
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        with pytest.raises(ValueError):
            backend.read_page("f", 5)

    def test_duplicate_create_raises(self, backend):
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        with pytest.raises(FileExistsError):
            backend.create_file("f", EntityDescriptorCodec(), 4096)

    def test_delete_then_recreate(self, backend):
        codec = CandidatePairCodec()
        backend.create_file("f", codec, 4096)
        backend.write_page("f", 0, [(1, 2)])
        backend.delete_file("f")
        backend.create_file("f", codec, 4096)
        with pytest.raises(ValueError):
            backend.read_page("f", 0)

    def test_rename_moves_pages(self, backend):
        codec = CandidatePairCodec()
        backend.create_file("old", codec, 4096)
        backend.write_page("old", 0, [(1, 2)])
        backend.rename_file("old", "new")
        assert backend.read_page("new", 0) == [(1, 2)]
        with pytest.raises(FileNotFoundError):
            backend.rename_file("old", "elsewhere")

    def test_rename_onto_existing_raises(self, backend):
        codec = CandidatePairCodec()
        backend.create_file("a", codec, 4096)
        backend.create_file("b", codec, 4096)
        with pytest.raises(FileExistsError):
            backend.rename_file("a", "b")

    def test_file_backend_overflow_page_raises(self, tmp_path):
        backend = FileBackend(tmp_path)
        codec = CandidatePairCodec()
        backend.create_file("f", codec, 64)  # 4 records per page
        with pytest.raises(ValueError):
            backend.write_page("f", 0, [(i, i) for i in range(5)])
        backend.close()


class TestBufferPool:
    def make_pool(self, capacity=3):
        backend = MemoryBackend()
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        stats = IOStats()
        return BufferPool(backend, capacity, stats), backend, stats

    def test_miss_then_hit(self):
        pool, backend, stats = self.make_pool()
        backend.write_page("f", 0, [(1, 0.0, 0.0, 0.0, 0.0, 0)])
        pool.fetch("f", 0)
        pool.unpin("f", 0)
        pool.fetch("f", 0)
        pool.unpin("f", 0)
        assert stats.total.page_reads == 1
        assert stats.total.buffer_hits == 1

    def test_eviction_writes_dirty(self):
        pool, backend, stats = self.make_pool(capacity=2)
        frame = pool.create("f", 0)
        frame.records.append((1, 0.0, 0.0, 0.0, 0.0, 0))
        pool.unpin("f", 0, dirty=True)
        pool.create("f", 1)
        pool.unpin("f", 1, dirty=True)
        pool.create("f", 2)  # evicts page 0
        pool.unpin("f", 2, dirty=True)
        assert stats.total.page_writes == 1
        assert backend.read_page("f", 0) == [(1, 0.0, 0.0, 0.0, 0.0, 0)]

    def test_pinned_pages_not_evicted(self):
        pool, _, _ = self.make_pool(capacity=2)
        pool.create("f", 0)
        pool.create("f", 1)
        with pytest.raises(BufferPoolExhausted):
            pool.create("f", 2)

    def test_unpin_unpinned_raises(self):
        pool, _, _ = self.make_pool()
        pool.create("f", 0)
        pool.unpin("f", 0, dirty=True)
        with pytest.raises(RuntimeError):
            pool.unpin("f", 0)

    def test_flush_clears_dirty_without_evicting(self):
        pool, backend, stats = self.make_pool()
        frame = pool.create("f", 0)
        frame.records.append((9, 0.0, 0.0, 0.0, 0.0, 0))
        pool.unpin("f", 0, dirty=True)
        pool.flush()
        assert backend.read_page("f", 0)
        assert len(pool) == 1
        pool.flush()  # second flush writes nothing
        assert stats.total.page_writes == 1

    def test_invalidate_drops_frames(self):
        pool, _, _ = self.make_pool()
        pool.create("f", 0)
        pool.unpin("f", 0, dirty=True)
        pool.invalidate()
        assert len(pool) == 0

    def test_invalidate_pinned_raises(self):
        pool, _, _ = self.make_pool()
        pool.create("f", 0)
        with pytest.raises(RuntimeError):
            pool.invalidate()

    def test_write_behind_flushes_and_drops(self):
        pool, backend, stats = self.make_pool()
        frame = pool.create("f", 0)
        frame.records.append((1, 0.0, 0.0, 0.0, 0.0, 0))
        pool.unpin("f", 0, dirty=True)
        pool.write_behind("f", 0)
        assert len(pool) == 0
        assert stats.total.page_writes == 1
        pool.write_behind("f", 0)  # absent: no-op
        assert stats.total.page_writes == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(MemoryBackend(), 0, IOStats())


class TestPagedFile:
    def test_append_and_scan(self, storage):
        handle = storage.create_file("data")
        records = [(i, 0.0, 0.0, 1.0, 1.0, i) for i in range(200)]
        handle.append_many(records)
        assert list(handle.scan()) == records
        assert handle.num_records == 200
        assert handle.num_pages == 3  # 85 per page

    def test_read_page_bounds(self, storage):
        handle = storage.create_file("data")
        handle.append((0, 0.0, 0.0, 0.0, 0.0, 0))
        with pytest.raises(IndexError):
            handle.read_page(1)

    def test_scan_pages_shape(self, storage):
        handle = storage.create_file("data")
        handle.append_many((i, 0.0, 0.0, 0.0, 0.0, 0) for i in range(90))
        pages = list(handle.scan_pages())
        assert [len(p) for p in pages] == [85, 5]

    def test_survives_eviction_pressure(self, tiny_storage):
        handle = tiny_storage.create_file("data")
        others = [tiny_storage.create_file(f"other-{i}") for i in range(3)]
        for i in range(300):
            handle.append((i, 0.0, 0.0, 0.0, 0.0, 0))
            others[i % 3].append((i, 0.0, 0.0, 0.0, 0.0, 1))
        assert [r[0] for r in handle.scan()] == list(range(300))


class TestStorageManager:
    def test_create_open_drop(self, storage):
        handle = storage.create_file("x")
        assert storage.open_file("x") is handle
        storage.drop_file("x")
        with pytest.raises(FileNotFoundError):
            storage.open_file("x")

    def test_drop_missing_raises(self, storage):
        with pytest.raises(FileNotFoundError):
            storage.drop_file("nope")

    def test_duplicate_create_raises(self, storage):
        storage.create_file("x")
        with pytest.raises(FileExistsError):
            storage.create_file("x")

    def test_list_files(self, storage):
        storage.create_file("b")
        storage.create_file("a")
        assert storage.list_files() == ["a", "b"]

    def test_phase_boundary_forces_reread(self, storage):
        handle = storage.create_file("x")
        handle.append((1, 0.0, 0.0, 0.0, 0.0, 0))
        storage.phase_boundary()
        before = storage.stats.total.page_reads
        list(handle.scan())
        assert storage.stats.total.page_reads == before + 1

    def test_disk_backend_roundtrip(self, tmp_path):
        config = StorageConfig(backend="disk", directory=str(tmp_path))
        with StorageManager(config) as manager:
            handle = manager.create_file("x")
            handle.append_many((i, 0.5, 0.5, 0.6, 0.6, i) for i in range(100))
            manager.pool.invalidate()
            assert [r[0] for r in handle.scan()] == list(range(100))

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            StorageManager(StorageConfig(backend="tape"))

    def test_descriptors_per_page(self, storage):
        assert storage.descriptors_per_page() == 85

    def test_rename_is_metadata_only(self, storage):
        handle = storage.create_file("old")
        handle.append_many((i, 0.1, 0.1, 0.2, 0.2, i) for i in range(200))
        handle.flush()
        before = storage.stats.snapshot()
        renamed = storage.rename_file("old", "new")
        after = storage.stats.snapshot()
        # No page transfers, no hits: a rename never touches the ledger.
        assert after.total_ios == before.total_ios
        assert after.buffer_hits == before.buffer_hits
        assert renamed is handle and handle.name == "new"
        assert storage.open_file("new") is handle
        with pytest.raises(FileNotFoundError):
            storage.open_file("old")
        assert [r[0] for r in handle.scan()] == list(range(200))

    def test_rename_preserves_buffered_dirty_pages(self, storage):
        handle = storage.create_file("old")
        handle.append((7, 0.1, 0.1, 0.2, 0.2, 7))  # dirty tail page buffered
        storage.rename_file("old", "new")
        handle.append((8, 0.1, 0.1, 0.2, 0.2, 8))  # keeps appending
        storage.pool.invalidate()
        assert [r[0] for r in handle.scan()] == [7, 8]

    def test_rename_onto_existing_fails_without_replace(self, storage):
        storage.create_file("a")
        storage.create_file("b")
        with pytest.raises(FileExistsError):
            storage.rename_file("a", "b")

    def test_rename_onto_existing_replaces_when_asked(self, storage):
        a = storage.create_file("a")
        a.append((1, 0.1, 0.1, 0.2, 0.2, 1))
        b = storage.create_file("b")
        b.append((2, 0.1, 0.1, 0.2, 0.2, 2))
        storage.rename_file("a", "b", replace=True)
        survivor = storage.open_file("b")
        assert survivor is a
        assert [r[0] for r in survivor.scan()] == [1]

    def test_rename_onto_itself_raises(self, storage):
        storage.create_file("a")
        with pytest.raises(ValueError):
            storage.rename_file("a", "a")

    def test_rename_missing_raises(self, storage):
        with pytest.raises(FileNotFoundError):
            storage.rename_file("ghost", "anything")

    def test_clone_metadata_from(self, storage):
        source = storage.create_file("src")
        source.append_many((i, 0.1, 0.1, 0.2, 0.2, i) for i in range(100))
        source.flush()
        target = storage.create_file("dst")
        for page_no in range(source.num_pages):
            storage.backend.write_page(
                "dst", page_no, storage.backend.read_page("src", page_no)
            )
        target.clone_metadata_from(source)
        assert target.num_pages == source.num_pages
        assert target.num_records == source.num_records
        assert [r[0] for r in target.scan()] == list(range(100))
        # Appends continue on the adopted partial tail page.
        target.append((100, 0.1, 0.1, 0.2, 0.2, 100))
        assert target.num_records == 101

    def test_clone_metadata_codec_mismatch_raises(self, storage):
        from repro.storage.records import CandidatePairCodec

        source = storage.create_file("src")
        target = storage.create_file("dst", CandidatePairCodec())
        with pytest.raises(ValueError):
            target.clone_metadata_from(source)


class TestIOStats:
    def test_sequential_vs_random_reads(self):
        stats = IOStats()
        stats.record_read("f", 0)  # first touch: random
        stats.record_read("f", 1)  # sequential
        stats.record_read("f", 5)  # jump: random
        stats.record_read("g", 0)  # other file: random
        stats.record_read("f", 6)  # continues f: sequential
        assert stats.total.page_reads == 5
        assert stats.total.random_reads == 3
        assert stats.total.sequential_reads == 2

    def test_per_file_write_tracking(self):
        stats = IOStats()
        stats.record_write("a", 0)
        stats.record_write("b", 0)
        stats.record_write("a", 1)
        stats.record_write("b", 1)
        assert stats.total.random_writes == 2  # only the two first touches

    def test_phase_attribution_innermost(self):
        stats = IOStats()
        with stats.phase("outer"):
            stats.record_read("f", 0)
            with stats.phase("inner"):
                stats.record_read("f", 1)
        assert stats.phases["outer"].page_reads == 1
        assert stats.phases["inner"].page_reads == 1
        assert stats.total.page_reads == 2

    def test_phase_reentry_accumulates(self):
        stats = IOStats()
        with stats.phase("p"):
            stats.record_read("f", 0)
        with stats.phase("p"):
            stats.record_read("f", 1)
        assert stats.phases["p"].page_reads == 2

    def test_cpu_charging(self):
        stats = IOStats()
        with stats.phase("p"):
            stats.charge_cpu("hilbert", 10)
            stats.charge_cpu("hilbert", 5)
        assert stats.phases["p"].cpu_ops["hilbert"] == 15
        assert stats.total.cpu_ops["hilbert"] == 15

    def test_reset(self):
        stats = IOStats()
        stats.record_read("f", 0)
        stats.reset()
        assert stats.total.page_reads == 0
        assert stats.phases == {}

    def test_reset_inside_phase_raises(self):
        stats = IOStats()
        with stats.phase("p"):
            with pytest.raises(RuntimeError):
                stats.reset()


class TestCostModels:
    def test_disk_model_charges_random_premium(self):
        stats = PhaseStats(page_reads=10, random_reads=2)
        model = DiskModel(random_access_time=0.018, sequential_transfer_time=0.001)
        assert model.time(stats) == pytest.approx(2 * 0.018 + 8 * 0.001)

    def test_cpu_model_known_ops(self):
        model = CpuModel(op_costs={"hilbert": 10e-6, "compare": 1e-6})
        stats = PhaseStats(cpu_ops={"hilbert": 1000})
        assert model.time(stats) == pytest.approx(0.01)

    def test_cpu_model_unknown_op_costs_nonzero(self):
        model = CpuModel(op_costs={"compare": 1e-6})
        stats = PhaseStats(cpu_ops={"mystery": 100})
        assert model.time(stats) > 0

    def test_response_time_sums(self):
        model = CostModel()
        stats = PhaseStats(page_reads=10, cpu_ops={"hilbert": 100})
        assert model.response_time(stats) == pytest.approx(
            model.disk.time(stats) + model.cpu.time(stats)
        )

    def test_hilbert_default_matches_paper(self):
        assert CpuModel().op_costs["hilbert"] == pytest.approx(10e-6)


class TestPageDirtyDetection:
    """The pool's ``page()`` context manager detects dirtiness by value
    comparison against an entry snapshot (not identity)."""

    def make_pool(self):
        backend = MemoryBackend()
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        backend.write_page("f", 0, [(1, 0.0, 0.0, 0.0, 0.0, 0)])
        stats = IOStats()
        return BufferPool(backend, 3, stats), backend, stats

    def test_in_place_mutation_marks_dirty(self):
        pool, backend, _ = self.make_pool()
        with pool.page("f", 0) as records:
            records[0] = (1, 9.0, 9.0, 9.0, 9.0, 0)  # replace in place
        pool.invalidate()
        assert backend.read_page("f", 0) == [(1, 9.0, 9.0, 9.0, 9.0, 0)]

    def test_append_and_delete_mark_dirty(self):
        pool, backend, stats = self.make_pool()
        with pool.page("f", 0) as records:
            records.append((2, 1.0, 1.0, 2.0, 2.0, 0))
        pool.invalidate()
        assert len(backend.read_page("f", 0)) == 2
        with pool.page("f", 0) as records:
            del records[0]
        pool.invalidate()
        assert backend.read_page("f", 0) == [(2, 1.0, 1.0, 2.0, 2.0, 0)]

    def test_equal_value_rewrite_stays_clean(self):
        pool, _, stats = self.make_pool()
        with pool.page("f", 0) as records:
            records[0] = (1, 0.0, 0.0, 0.0, 0.0, 0)  # same value, new tuple
        pool.invalidate()
        assert stats.total.page_writes == 0


class TestRelease:
    def make_pool(self, capacity=3):
        backend = MemoryBackend()
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        backend.write_page("f", 0, [(1, 0.0, 0.0, 0.0, 0.0, 0)])
        stats = IOStats()
        return BufferPool(backend, capacity, stats), backend, stats

    def test_release_drops_clean_frame_without_io(self):
        pool, _, stats = self.make_pool()
        pool.fetch("f", 0)
        pool.unpin("f", 0)
        pool.release("f", 0)
        assert len(pool) == 0
        assert stats.total.page_writes == 0

    def test_release_keeps_dirty_and_pinned_frames(self):
        pool, _, _ = self.make_pool()
        frame = pool.fetch("f", 0)  # pinned
        pool.release("f", 0)
        assert len(pool) == 1
        frame.records.append((2, 0.0, 0.0, 0.0, 0.0, 0))
        pool.unpin("f", 0, dirty=True)
        pool.release("f", 0)  # dirty: must not be lost
        assert len(pool) == 1
        pool.release("g", 5)  # absent: no-op
        assert len(pool) == 1


class TestExtendLedgerParity:
    """``PagedFile.extend`` must leave the exact ledger a loop of
    ``append`` calls would."""

    def run_writes(self, bulk, count, prefill=0):
        with StorageManager(StorageConfig(buffer_pages=8)) as manager:
            handle = manager.create_file("out")
            for i in range(prefill):
                handle.append((i, 0.0, 0.0, 0.0, 0.0, 0))
            records = [(i, 0.5, 0.5, 1.0, 1.0, i) for i in range(count)]
            if bulk:
                handle.extend(records)
            else:
                for record in records:
                    handle.append(record)
            manager.phase_boundary()
            contents = list(handle.scan())
            snapshot = manager.stats.snapshot()
            return contents, snapshot

    @pytest.mark.parametrize("prefill", [0, 1, 85])
    @pytest.mark.parametrize("count", [0, 1, 84, 85, 86, 400])
    def test_extend_matches_append_loop(self, count, prefill):
        bulk_contents, bulk_stats = self.run_writes(True, count, prefill)
        loop_contents, loop_stats = self.run_writes(False, count, prefill)
        assert bulk_contents == loop_contents
        assert bulk_stats == loop_stats

    def test_extend_streams_lazy_iterables(self):
        with StorageManager(StorageConfig(buffer_pages=8)) as manager:
            handle = manager.create_file("out")
            handle.extend((i, 0.0, 0.0, 1.0, 1.0, i) for i in range(300))
            assert handle.num_records == 300
            assert [r[0] for r in handle.scan()] == list(range(300))


class TestManagerLifecycle:
    """close() is idempotent and releases every buffer-pool frame —
    the long-lived service opens one manager across many query cycles
    and must not leak pages."""

    def test_close_idempotent(self):
        manager = StorageManager(StorageConfig(buffer_pages=8))
        manager.create_file("f").append((1, 0.0, 0.0, 1.0, 1.0, 0))
        manager.close()
        assert manager.closed
        manager.close()  # second close is a no-op, not an error
        assert manager.closed

    def test_no_leaked_frames_after_query_cycles(self):
        with StorageManager(StorageConfig(buffer_pages=16)) as manager:
            handle = manager.create_file("base")
            handle.extend((i, 0.1, 0.1, 0.2, 0.2, i) for i in range(500))
            manager.phase_boundary()
            baseline = len(manager.pool)
            assert baseline == 0  # phase boundary drains the pool
            for _ in range(25):  # N query cycles over the same file
                assert sum(1 for _ in handle.scan()) == 500
                manager.phase_boundary()
                assert len(manager.pool) == baseline
            assert len(manager.pool) <= 16  # never exceeds capacity

    def test_close_empties_pool(self):
        manager = StorageManager(StorageConfig(buffer_pages=8))
        handle = manager.create_file("f")
        handle.extend((i, 0.0, 0.0, 1.0, 1.0, i) for i in range(100))
        list(handle.scan())
        assert len(manager.pool) > 0
        manager.close()
        assert len(manager.pool) == 0

    def test_next_sequence_scoped_per_manager(self):
        a = StorageManager(StorageConfig(buffer_pages=4))
        b = StorageManager(StorageConfig(buffer_pages=4))
        try:
            assert [a.next_sequence("input") for _ in range(3)] == [0, 1, 2]
            # A fresh manager starts at zero: warm processes name files
            # exactly like fresh ones.
            assert b.next_sequence("input") == 0
            assert a.next_sequence("run") == 0  # kinds are independent
        finally:
            a.close()
            b.close()
