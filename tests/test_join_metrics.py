"""Tests for :class:`repro.join.metrics.JoinMetrics` totals and
serialization."""

from __future__ import annotations

import pytest

from repro.join.metrics import JoinMetrics
from repro.storage.costs import CostModel
from repro.storage.iostats import PhaseStats


def _metrics(phases: dict[str, PhaseStats]) -> JoinMetrics:
    return JoinMetrics(
        algorithm="s3j",
        phase_names=("partition", "sort", "join"),
        phases=phases,
        cost_model=CostModel(),
    )


def _bucket(reads: int, writes: int, **cpu: int) -> PhaseStats:
    bucket = PhaseStats(page_reads=reads, page_writes=writes)
    for op, count in cpu.items():
        bucket.charge_cpu(op, count)
    return bucket


class TestTotalsIncludeExtraPhases:
    """Phases recorded beyond the declared Table 2 names (for example an
    instrumented sub-phase) must never drop out of the totals."""

    def test_total_reads_and_writes(self):
        metrics = _metrics(
            {
                "partition": _bucket(10, 5),
                "join": _bucket(7, 3),
                "warmup": _bucket(2, 1),  # not in phase_names
            }
        )
        assert metrics.total_reads == 19
        assert metrics.total_writes == 9
        assert metrics.total_ios == 28

    def test_response_time_and_breakdown(self):
        metrics = _metrics(
            {
                "partition": _bucket(10, 5),
                "warmup": _bucket(2, 1),
            }
        )
        assert metrics.all_phase_names == ("partition", "sort", "join", "warmup")
        breakdown = metrics.breakdown()
        assert list(breakdown) == ["partition", "sort", "join", "warmup"]
        assert breakdown["warmup"] > 0.0
        assert metrics.response_time == pytest.approx(sum(breakdown.values()))

    def test_declared_but_absent_phases_cost_nothing(self):
        metrics = _metrics({"partition": _bucket(1, 1)})
        assert metrics.phase_time("sort") == 0.0
        assert metrics.phase_ios("join") == 0


class TestSerialization:
    def test_round_trip(self):
        metrics = _metrics(
            {
                "partition": _bucket(10, 5, hilbert=100, level=100),
                "join": _bucket(7, 3, mbr_test=250),
            }
        )
        metrics.replication_b = 1.25
        metrics.details["dsb_filtered"] = 42
        restored = JoinMetrics.from_dict(metrics.to_dict())
        assert restored.algorithm == metrics.algorithm
        assert restored.phase_names == metrics.phase_names
        assert restored.phases == metrics.phases
        assert restored.replication_b == 1.25
        assert restored.details == {"dsb_filtered": 42}
        assert restored.response_time == pytest.approx(metrics.response_time)
        assert restored.to_dict() == metrics.to_dict()

    def test_cost_model_round_trip_prices_identically(self):
        bucket = _bucket(100, 50, compare=1000)
        bucket.random_reads = 30
        metrics = _metrics({"partition": bucket})
        restored = JoinMetrics.from_dict(metrics.to_dict())
        assert restored.phase_time("partition") == pytest.approx(
            metrics.phase_time("partition")
        )
