"""E-PAR — wall-clock scaling of the Hilbert-sharded parallel join.

Runs every algorithm on one uniform workload serially and sharded with
1, 2, and 4 workers, verifying the executor's contract while timing:

- the sharded pair set equals the serial pair set for every worker
  count;
- the merged :class:`~repro.join.metrics.JoinMetrics` are byte-
  identical across worker counts (the worker count may change
  wall-clock only);
- the merged ledger equals the sum of the per-shard ledgers.

A second section runs a **skewed workload** (~15% large rectangles
that cross tile boundaries) at 4 workers under both shard planners and
records each planner's straggler picture from the event stream: the
residual share, the record imbalance factor, and the wall-clock.  The
two-layer planner must report residual share 0 and the same pair set
as the legacy planner; the ratio ``legacy record imbalance / two-layer
record imbalance`` (the *balance ratio*, a pure function of the plan,
so portable across hosts) is the trajectory-gated metric.

Emits ``BENCH_parallel_scaling.json`` with the wall-clock per
(algorithm, worker count) plus the skew section so CI uploads the
scaling numbers::

    python -m benchmarks.bench_parallel_scaling [--entities 20000]

Note the *simulated* response time does not change with workers — the
cost model describes the paper's single-disk 1997 testbed.  What
parallelism buys here is real Python wall-clock on the host.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.join.dataset import SpatialDataset
from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.report import TABLE2_PHASES
from repro.obs.straggler import analyze_events
from repro.parallel import PLANNERS, parallel_spatial_join

from benchmarks.artifacts import write_bench_artifact
from tests.conftest import make_squares

WORKER_COUNTS = (1, 2, 4)
NUM_ENTITIES = int(os.environ.get("REPRO_PARALLEL_N", "20000"))

SKEW_ENTITIES = 400
"""Entities per side of the skewed workload.  Fixed (not scaled by
``--entities``) so the plan-derived balance ratio is identical on
every host and run — that is what makes it gateable."""

SKEW_WORKERS = 4


def bench_algorithm(algorithm: str, entities: int) -> tuple[dict, list[str]]:
    """Time one algorithm serial + sharded; return (row, failures)."""
    dataset_a = make_squares(entities, 0.002, seed=20260806, name="par-A")
    dataset_b = make_squares(entities, 0.003, seed=20260807, name="par-B")

    start = time.perf_counter()
    serial = spatial_join(dataset_a, dataset_b, algorithm=algorithm)
    serial_s = time.perf_counter() - start

    failures: list[str] = []
    row: dict = {
        "algorithm": algorithm,
        "entities": 2 * entities,
        "serial_wall_s": serial_s,
        "serial_pairs_per_s": len(serial.pairs) / serial_s,
        "pairs": len(serial.pairs),
        "workers": {},
    }
    reference_metrics: dict | None = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        sharded = parallel_spatial_join(
            dataset_a, dataset_b, algorithm=algorithm, workers=workers
        )
        elapsed = time.perf_counter() - start
        if sharded.pairs != serial.pairs:
            failures.append(
                f"{algorithm} workers={workers}: {len(sharded.pairs)} pairs "
                f"!= serial {len(serial.pairs)}"
            )
        metrics = sharded.metrics.to_dict()
        if reference_metrics is None:
            reference_metrics = metrics
        elif metrics != reference_metrics:
            failures.append(
                f"{algorithm} workers={workers}: merged metrics differ from "
                f"workers={WORKER_COUNTS[0]}"
            )
        shard_ios = sum(
            shard["total_ios"] for shard in sharded.metrics.details["shards"]
        )
        if sharded.metrics.total_ios != shard_ios:
            failures.append(
                f"{algorithm} workers={workers}: merged ledger "
                f"{sharded.metrics.total_ios} != shard sum {shard_ios}"
            )
        row["workers"][str(workers)] = {
            "wall_s": elapsed,
            "pairs_per_s": len(sharded.pairs) / elapsed,
            "speedup_vs_1worker": None,  # filled below
            "total_ios": sharded.metrics.total_ios,
            "sub_joins": sharded.metrics.details["plan"]["tasks"],
        }
    base = row["workers"][str(WORKER_COUNTS[0])]["wall_s"]
    for entry in row["workers"].values():
        entry["speedup_vs_1worker"] = base / entry["wall_s"]
    return row, failures


def skewed_dataset(name: str, seed: int, count: int) -> SpatialDataset:
    """~15% large rectangles (crossing level-1/2 tile lines) among
    small squares — the workload where the legacy planner's residual
    shard becomes the straggler."""
    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        side = (
            rng.uniform(0.3, 0.6) if eid % 7 == 0 else rng.uniform(0.005, 0.02)
        )
        x = rng.uniform(0.0, 1.0 - side)
        y = rng.uniform(0.0, 1.0 - side)
        entities.append(Entity.from_geometry(eid, Rect(x, y, x + side, y + side)))
    return SpatialDataset(name, entities)


def bench_skew() -> tuple[dict, list[str]]:
    """The straggler picture per planner on the skewed workload."""
    dataset_a = skewed_dataset("skew-A", seed=20260831, count=SKEW_ENTITIES)
    dataset_b = skewed_dataset("skew-B", seed=20260832, count=SKEW_ENTITIES)

    failures: list[str] = []
    row: dict = {
        "workload": "skewed",
        "entities": 2 * SKEW_ENTITIES,
        "workers": SKEW_WORKERS,
        "planners": {},
    }
    pair_sets: dict[str, frozenset] = {}
    for planner in PLANNERS:
        obs = Observability(events=EventLog())
        start = time.perf_counter()
        result = parallel_spatial_join(
            dataset_a,
            dataset_b,
            workers=SKEW_WORKERS,
            planner=planner,
            obs=obs,
        )
        elapsed = time.perf_counter() - start
        analytics = analyze_events(obs.events.to_dicts())
        pair_sets[planner] = result.pairs
        row["planners"][planner] = {
            "wall_s": elapsed,
            "pairs": len(result.pairs),
            "shards": analytics.shard_count,
            "residual_share": analytics.residual_share,
            "record_imbalance": analytics.record_imbalance_factor,
            "imbalance_factor": analytics.imbalance_factor,
        }
    legacy = row["planners"]["residual"]
    two_layer = row["planners"]["two-layer"]
    if pair_sets["residual"] != pair_sets["two-layer"]:
        failures.append(
            f"skewed: planners disagree on pairs "
            f"({len(pair_sets['residual'])} vs {len(pair_sets['two-layer'])})"
        )
    if two_layer["residual_share"] != 0.0:
        failures.append(
            f"skewed: two-layer residual share "
            f"{two_layer['residual_share']} != 0.0"
        )
    if legacy["record_imbalance"] and two_layer["record_imbalance"]:
        row["balance_ratio"] = (
            legacy["record_imbalance"] / two_layer["record_imbalance"]
        )
        if row["balance_ratio"] <= 1.0:
            failures.append(
                f"skewed: two-layer record imbalance "
                f"{two_layer['record_imbalance']:.2f} not better than legacy "
                f"{legacy['record_imbalance']:.2f}"
            )
    else:
        failures.append("skewed: record imbalance missing from analytics")
    return row, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=NUM_ENTITIES)
    args = parser.parse_args(argv)

    rows = []
    failures: list[str] = []
    for algorithm in sorted(TABLE2_PHASES):
        row, algo_failures = bench_algorithm(algorithm, args.entities)
        rows.append(row)
        failures.extend(algo_failures)
        timings = "  ".join(
            f"{workers}w={entry['wall_s']:.2f}s"
            f"({entry['pairs_per_s']:,.0f}p/s)"
            for workers, entry in row["workers"].items()
        )
        print(
            f"{algorithm:<5} pairs={row['pairs']:<8} "
            f"serial={row['serial_wall_s']:.2f}s"
            f"({row['serial_pairs_per_s']:,.0f}p/s)  {timings}"
        )

    skew_row, skew_failures = bench_skew()
    failures.extend(skew_failures)
    planner_bits = "  ".join(
        f"{planner}: residual={entry['residual_share'] * 100:.0f}% "
        f"imbalance={entry['record_imbalance']:.2f} "
        f"wall={entry['wall_s']:.2f}s"
        for planner, entry in skew_row["planners"].items()
    )
    print(
        f"skew  workers={skew_row['workers']} {planner_bits}  "
        f"balance_ratio={skew_row.get('balance_ratio', 0.0):.2f}"
    )

    path = write_bench_artifact(
        "parallel_scaling",
        {
            "entities_per_side": args.entities,
            "worker_counts": list(WORKER_COUNTS),
            "rows": rows,
            "skew": skew_row,
        },
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"parallel scaling OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
