"""Analytic I/O cost models (section 4 of the paper).

"S3J has relatively simple cost estimation formulas that can be
exploited by a query optimizer" — these modules implement the page-I/O
formulas of section 4 for all three algorithms (equations 1-19) plus
the replication-fraction analysis behind figure 7 (equation 11), and a
comparison harness that tabulates them side by side with measured
counts.
"""

from repro.costmodel.optimizer import (
    CatalogStats,
    PlanEstimate,
    choose_algorithm,
    estimate_plans,
)
from repro.costmodel.pbsm import (
    expected_replication_factor,
    pbsm_io,
    pbsm_partitions,
)
from repro.costmodel.replication import replicated_fraction
from repro.costmodel.s3j import s3j_best_case_io, s3j_hilbert_cpu, s3j_io, s3j_worst_case_io
from repro.costmodel.shj import shj_io

__all__ = [
    "CatalogStats",
    "PlanEstimate",
    "choose_algorithm",
    "estimate_plans",
    "expected_replication_factor",
    "pbsm_io",
    "pbsm_partitions",
    "replicated_fraction",
    "s3j_best_case_io",
    "s3j_hilbert_cpu",
    "s3j_io",
    "s3j_worst_case_io",
    "shj_io",
]
