"""Ablations over the design choices DESIGN.md calls out.

- space-filling curve choice (section 3.1: "any curve that recursively
  subdivides the space will work");
- precomputed vs on-the-fly Hilbert values (section 3.1);
- PBSM tile count (section 2.1: too few vs too many);
- memory budget sweep (equations 5/6: best vs worst case).
"""

import pytest

from repro.curves import GrayCurve, HilbertCurve, ZOrderCurve
from repro.datagen.uniform import uniform_squares
from repro.experiments.runner import run_algorithm

COUNT = 6_000
SIDE = 0.006


@pytest.fixture(scope="module")
def inputs():
    a = uniform_squares(COUNT, SIDE, seed=1, name="A")
    b = uniform_squares(COUNT, SIDE, seed=2, name="B")
    return a, b


class TestCurveAblation:
    @pytest.mark.parametrize("curve_cls", [HilbertCurve, ZOrderCurve, GrayCurve])
    def test_curve_choice(self, benchmark, inputs, repro_scale, curve_cls):
        a, b = inputs
        run = benchmark.pedantic(
            lambda: run_algorithm(
                a, b, "s3j", scale=repro_scale, curve=curve_cls()
            ),
            rounds=1,
            iterations=1,
        )
        print(
            f"\n{curve_cls.name}: {run.response_time:.2f}s, "
            f"{run.result.metrics.total_ios:,} I/Os, {len(run.result.pairs):,} pairs"
        )
        benchmark.extra_info["curve"] = curve_cls.name
        benchmark.extra_info["ios"] = run.result.metrics.total_ios
        assert len(run.result.pairs) > 0


class TestHilbertPrecomputation:
    def test_precomputed_saves_cpu(self, benchmark, inputs, repro_scale):
        """Section 3.1: storing Hilbert values in the descriptors saves
        the H-per-entity partition-phase CPU."""
        a, b = inputs

        def both():
            on_the_fly = run_algorithm(a, b, "s3j", scale=repro_scale)
            precomputed = run_algorithm(
                a, b, "s3j", scale=repro_scale, hilbert_precomputed=True
            )
            return on_the_fly, precomputed

        on_the_fly, precomputed = benchmark.pedantic(both, rounds=1, iterations=1)
        assert precomputed.result.pairs == on_the_fly.result.pairs
        plain_partition = on_the_fly.result.metrics.phases["partition"]
        pre_partition = precomputed.result.metrics.phases["partition"]
        assert plain_partition.cpu_ops.get("hilbert", 0) == 2 * COUNT
        assert pre_partition.cpu_ops.get("hilbert", 0) == 0
        assert precomputed.response_time < on_the_fly.response_time
        saved = on_the_fly.response_time - precomputed.response_time
        print(
            f"\nprecomputing Hilbert values saves {saved:.2f}s "
            f"({plain_partition.cpu_ops['hilbert']:,} computations at ~10us)"
        )
        benchmark.extra_info["saved_seconds"] = saved


class TestTileCountAblation:
    @pytest.mark.parametrize("tiles", [4, 16, 64, 128])
    def test_pbsm_tiles(self, benchmark, inputs, repro_scale, tiles):
        a, b = inputs
        run = benchmark.pedantic(
            lambda: run_algorithm(
                a, b, "pbsm", scale=repro_scale, tiles_per_dim=tiles
            ),
            rounds=1,
            iterations=1,
        )
        metrics = run.result.metrics
        print(
            f"\nPBSM {tiles}x{tiles}: {run.response_time:.2f}s, "
            f"r_A+r_B={metrics.replication_total:.2f}, "
            f"repartitions={metrics.details['repartitioned_pairs']}"
        )
        benchmark.extra_info["tiles"] = tiles
        benchmark.extra_info["replication"] = metrics.replication_total

    def test_replication_monotone_in_tiles(self, inputs, repro_scale):
        a, b = inputs
        factors = []
        for tiles in (4, 32, 128):
            run = run_algorithm(a, b, "pbsm", scale=repro_scale, tiles_per_dim=tiles)
            factors.append(run.result.metrics.replication_total)
        assert factors == sorted(factors)


class TestMemoryAblation:
    @pytest.mark.parametrize("fraction", [0.02, 0.10, 0.50])
    def test_s3j_memory_sweep(self, benchmark, inputs, fraction, repro_scale):
        """Less memory -> deeper merge sorts -> more I/O (eq. 3);
        ample memory approaches the best case (eq. 5)."""
        from repro.experiments.runner import make_storage_config
        from repro.join.api import spatial_join

        a, b = inputs
        config = make_storage_config(a, b, scale=repro_scale, memory_fraction=fraction)
        result = benchmark.pedantic(
            lambda: spatial_join(a, b, algorithm="s3j", storage=config),
            rounds=1,
            iterations=1,
        )
        print(
            f"\nM = {config.buffer_pages} pages ({fraction:.0%}): "
            f"{result.metrics.total_ios:,} I/Os"
        )
        benchmark.extra_info["memory_fraction"] = fraction
        benchmark.extra_info["ios"] = result.metrics.total_ios

    def test_more_memory_never_more_io(self, inputs, repro_scale):
        from repro.experiments.runner import make_storage_config
        from repro.join.api import spatial_join

        a, b = inputs
        ios = []
        for fraction in (0.02, 0.10, 0.50):
            config = make_storage_config(
                a, b, scale=repro_scale, memory_fraction=fraction
            )
            result = spatial_join(a, b, algorithm="s3j", storage=config)
            ios.append(result.metrics.total_ios)
        assert ios[0] >= ios[1] >= ios[2]


class TestIndexedJoinAblation:
    def test_filter_tree_index_amortizes_partition_and_sort(
        self, benchmark, inputs, repro_scale
    ):
        """S3J = Filter Tree join with the index built on the fly
        (section 3); with prebuilt indexes only the synchronized scan
        remains, so repeated joins pay a fraction of the one-shot cost.
        """
        from repro.experiments.runner import make_storage_config
        from repro.filtertree.index import FilterTreeIndex
        from repro.join.api import spatial_join
        from repro.storage.manager import StorageManager

        a, b = inputs
        config = make_storage_config(a, b, scale=repro_scale)

        def run():
            one_shot = spatial_join(a, b, algorithm="s3j", storage=config)
            with StorageManager(config) as storage:
                index_a = FilterTreeIndex(storage, "ia").build(a)
                index_b = FilterTreeIndex(storage, "ib").build(b)
                storage.phase_boundary()
                storage.stats.reset()
                pairs = index_a.join(index_b, stats_phase="join")
                scan_only = storage.cost_model.response_time(
                    storage.stats.phases["join"]
                )
            return one_shot, pairs, scan_only

        one_shot, pairs, scan_only = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        assert pairs == one_shot.pairs
        print(
            f"\none-shot S3J: {one_shot.metrics.response_time:.2f}s; "
            f"indexed join (scan only): {scan_only:.2f}s"
        )
        # The scan is roughly S3J's join phase: far below the full run.
        assert scan_only < one_shot.metrics.response_time * 0.6
        benchmark.extra_info["one_shot_s"] = one_shot.metrics.response_time
        benchmark.extra_info["indexed_s"] = scan_only
