"""Spatial join framework and public API.

The pieces shared by all three algorithms — the two-step
filter/refinement pipeline, the dataset abstraction, per-phase metrics
(Table 2 of the paper), and the top-level :func:`spatial_join` entry
point.
"""

from repro.join.api import available_algorithms, make_algorithm, spatial_join
from repro.join.dataset import SpatialDataset
from repro.join.metrics import JoinMetrics
from repro.join.multiway import spatial_multiway_join
from repro.join.predicates import Intersects, JoinPredicate, WithinDistance
from repro.join.result import JoinResult

__all__ = [
    "Intersects",
    "JoinMetrics",
    "JoinPredicate",
    "JoinResult",
    "SpatialDataset",
    "WithinDistance",
    "available_algorithms",
    "make_algorithm",
    "spatial_join",
    "spatial_multiway_join",
]
