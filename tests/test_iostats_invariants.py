"""Ledger invariants of :class:`repro.storage.iostats.IOStats`.

Two properties the rest of the system leans on:

1. **Snapshot isolation** — :meth:`IOStats.phase_snapshot` returns deep
   copies; neither direction of mutation leaks through (metrics built
   from a snapshot must be frozen at collection time, not aliases of
   the live ledger).
2. **Buckets sum to total** — with arbitrarily nested phases, every
   recorded quantity is attributed to exactly one per-phase bucket
   (the innermost open one), so the buckets always sum to the grand
   total.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.iostats import IOStats, PhaseStats


class TestPhaseSnapshotIsolation:
    def _ledger_with_work(self) -> IOStats:
        stats = IOStats()
        with stats.phase("partition"):
            stats.record_read("f", 0)
            stats.record_write("f", 0)
            stats.record_hit()
            stats.charge_cpu("hilbert", 3)
        return stats

    def test_mutating_snapshot_leaves_ledger_intact(self):
        stats = self._ledger_with_work()
        reference = stats.phases["partition"].copy()
        snapshot = stats.phase_snapshot()
        snapshot["partition"].page_reads += 100
        snapshot["partition"].cpu_ops["hilbert"] += 100
        snapshot["partition"].cpu_ops["injected"] = 1
        assert stats.phases["partition"] == reference

    def test_later_recording_leaves_snapshot_intact(self):
        stats = self._ledger_with_work()
        snapshot = stats.phase_snapshot()
        reference = snapshot["partition"].copy()
        with stats.phase("partition"):
            stats.record_read("f", 7)
            stats.charge_cpu("hilbert", 9)
        assert snapshot["partition"] == reference
        assert stats.phases["partition"] != reference

    def test_snapshot_covers_every_recorded_phase(self):
        stats = self._ledger_with_work()
        with stats.phase("extra"):
            stats.record_hit()
        assert set(stats.phase_snapshot()) == {"partition", "extra"}


# A random "program": a list of items, each either one ledger operation
# or a nested (phase name, sub-program) block.  The whole program runs
# inside a top-level phase, so every operation lands in some bucket.
_OPS = st.sampled_from(["read", "write", "hit", "cpu"])
_PHASE_NAMES = st.sampled_from(["partition", "sort", "join", "extra"])
_PROGRAMS = st.recursive(
    st.lists(_OPS, max_size=8),
    lambda sub: st.lists(st.one_of(_OPS, st.tuples(_PHASE_NAMES, sub)), max_size=6),
    max_leaves=40,
)


def _run_program(stats: IOStats, program: list, cursor: list[int]) -> None:
    for item in program:
        if isinstance(item, tuple):
            name, sub = item
            with stats.phase(name):
                _run_program(stats, sub, cursor)
            continue
        index = cursor[0]
        cursor[0] += 1
        if item == "read":
            # Page numbers jump around two files: a mix of sequential
            # and random transfers.
            stats.record_read(f"f{index % 2}", (index * 7) % 5)
        elif item == "write":
            stats.record_write(f"f{index % 2}", (index * 3) % 4)
        elif item == "hit":
            stats.record_hit()
        else:
            stats.charge_cpu(f"op{index % 3}", 1 + index % 4)


def _sum_buckets(buckets: dict[str, PhaseStats]) -> PhaseStats:
    merged = PhaseStats()
    for bucket in buckets.values():
        bucket.merged_into(merged)
    return merged


@given(program=_PROGRAMS, top=_PHASE_NAMES)
def test_phase_buckets_sum_to_total(program, top):
    stats = IOStats()
    with stats.phase(top):
        _run_program(stats, program, cursor=[0])
    assert _sum_buckets(stats.phases) == stats.total


@given(program=_PROGRAMS)
def test_operations_outside_phases_count_only_toward_total(program):
    """Without an open phase no bucket exists, but the total still
    counts — so buckets-sum-to-total holds exactly for the in-phase
    portion of the work."""
    stats = IOStats()
    _run_program(stats, program, cursor=[0])
    in_phase = _sum_buckets(stats.phases)
    assert in_phase.page_reads <= stats.total.page_reads
    assert in_phase.page_writes <= stats.total.page_writes
    assert in_phase.buffer_hits <= stats.total.buffer_hits
    has_toplevel_op = any(not isinstance(item, tuple) for item in program)
    if not has_toplevel_op:
        assert in_phase == stats.total
