"""Multiway spatial joins.

The paper's abstract promises joins "of two or more spatial data sets",
and section 3.1 stresses that S3J "can be applied either to base
spatial data sets or to intermediate data sets without any
modification" — Hilbert values and levels are simply recomputed for
entities "derived from base sets via a transformation".

:func:`spatial_multiway_join` implements the pipelined plan: join the
first two data sets, turn each result pair into an *intermediate
entity* whose MBR is the intersection of its members' MBRs (the region
where all members meet), and join that intermediate data set with the
next input.  The result is the set of k-tuples whose members all
overlap a common region — the natural k-way overlap join.
"""

from __future__ import annotations

from typing import Any

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.join.dataset import SpatialDataset
from repro.join.metrics import JoinMetrics
from repro.storage.costs import CostModel


def empty_stage_metrics(algorithm: str) -> JoinMetrics:
    """Metrics for a pipeline stage that was never executed because its
    input was already empty: no phases, no I/O, zero response time."""
    return JoinMetrics(
        algorithm=algorithm,
        phase_names=(),
        phases={},
        cost_model=CostModel(),
        details={"empty_stage": True},
    )


def spatial_multiway_join(
    datasets: list[SpatialDataset],
    algorithm: str = "s3j",
    **params: Any,
) -> tuple[frozenset[tuple[int, ...]], list[JoinMetrics]]:
    """Join k >= 2 data sets under the common-overlap predicate.

    Returns the set of id-tuples ``(e_1, ..., e_k)`` — one id per input
    data set — whose MBRs share at least one common point, plus the
    metrics of each pipeline stage.  There is always exactly one
    metrics entry per planned stage (``k - 1`` of them), so callers can
    zip the list with the inputs; stages whose input pipeline was
    already empty report explicit zero metrics
    (:func:`empty_stage_metrics`) instead of being dropped.

    The plan is left-deep: ``((D1 x D2) x D3) x ...``; every
    intermediate result is re-partitioned from scratch by the chosen
    algorithm, exactly as the paper describes for intermediate data
    sets (no statistics are carried over).
    """
    if len(datasets) < 2:
        raise ValueError("a multiway join needs at least two data sets")

    # Stage 1: ordinary pairwise join.
    first = spatial_join(datasets[0], datasets[1], algorithm=algorithm, **params)
    metrics = [first.metrics]
    tuples: dict[int, tuple[tuple[int, ...], Rect]] = {}
    lookup_a = {e.eid: e for e in datasets[0]}
    lookup_b = {e.eid: e for e in datasets[1]}
    for eid_a, eid_b in sorted(first.pairs):
        region = lookup_a[eid_a].mbr.intersection(lookup_b[eid_b].mbr)
        if region is not None:
            tuples[len(tuples)] = ((eid_a, eid_b), region)

    # Later stages: intermediate entities carry the common region.
    for dataset in datasets[2:]:
        if not tuples:
            # The pipeline already emptied: the stage runs no join, but
            # still reports (zero) metrics so metrics stay one-per-stage.
            metrics.append(empty_stage_metrics(algorithm))
            continue
        intermediate = SpatialDataset(
            "intermediate",
            [Entity(iid, region) for iid, (_, region) in tuples.items()],
        )
        stage = spatial_join(intermediate, dataset, algorithm=algorithm, **params)
        metrics.append(stage.metrics)
        lookup = {e.eid: e for e in dataset}
        next_tuples: dict[int, tuple[tuple[int, ...], Rect]] = {}
        for iid, eid in sorted(stage.pairs):
            members, region = tuples[iid]
            shared = region.intersection(lookup[eid].mbr)
            if shared is not None:
                next_tuples[len(next_tuples)] = ((*members, eid), shared)
        tuples = next_tuples

    return frozenset(members for members, _ in tuples.values()), metrics
