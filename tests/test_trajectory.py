"""Tests for the benchmark trajectory store and regression gate
(benchmarks.trajectory)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.trajectory import (
    DEFAULT_MIN_SAMPLES,
    HISTORY_DIR,
    GateSpec,
    append_entry,
    bench_name_of,
    check_artifact,
    history_path,
    load_history,
    main,
    make_entry,
)


def fastpath_payload(speedup_uniform=6.0, speedup_self=13.0) -> dict:
    return {
        "entities": 20000,
        "min_speedup": 5.0,
        "repeats": 2,
        "rows": [
            {
                "workload": "uniform",
                "speedup": speedup_uniform,
                "memory_pairs_per_s": 40000.0,
            },
            {
                "workload": "self-join",
                "speedup": speedup_self,
                "memory_pairs_per_s": 55000.0,
            },
        ],
    }


def seed_history(tmp_path: Path, count: int = 4) -> Path:
    for _ in range(count):
        append_entry("fastpath", fastpath_payload(), history_dir=tmp_path)
    return history_path("fastpath", tmp_path)


class TestHistory:
    def test_bench_name_of(self):
        assert bench_name_of("BENCH_fastpath.json") == "fastpath"
        assert bench_name_of("/a/b/BENCH_parallel_scaling.json") == (
            "parallel_scaling"
        )

    def test_entry_captures_gated_metrics_and_config(self):
        entry = make_entry("fastpath", fastpath_payload())
        assert entry["schema"] == 1
        assert entry["metrics"]["speedup[uniform]"] == 6.0
        assert entry["metrics"]["speedup[self-join]"] == 13.0
        assert entry["config"]["entities"] == 20000

    def test_append_and_load_round_trip(self, tmp_path):
        path = seed_history(tmp_path, count=3)
        entries = load_history(path)
        assert len(entries) == 3
        assert all(entry["bench"] == "fastpath" for entry in entries)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "fastpath.jsonl"
        path.write_text(json.dumps({"schema": 99, "bench": "fastpath"}) + "\n")
        with pytest.raises(ValueError, match="unsupported history schema"):
            load_history(path)

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


class TestGate:
    def test_seeded_25pct_regression_is_caught(self, tmp_path):
        """The issue's acceptance gate: a 25% speedup drop must fail."""
        seed_history(tmp_path)
        history = load_history(history_path("fastpath", tmp_path))
        regressed = fastpath_payload(
            speedup_uniform=6.0 * 0.75, speedup_self=13.0 * 0.75
        )
        report = check_artifact(regressed, "fastpath", history)
        assert not report.ok
        failing = [r.metric for r in report.results if r.regressed]
        assert "speedup[uniform]" in failing
        assert "speedup[self-join]" in failing

    def test_within_threshold_passes(self, tmp_path):
        seed_history(tmp_path)
        history = load_history(history_path("fastpath", tmp_path))
        wobble = fastpath_payload(
            speedup_uniform=6.0 * 0.9, speedup_self=13.0 * 1.1
        )
        report = check_artifact(wobble, "fastpath", history)
        assert report.ok

    def test_min_samples_guard(self, tmp_path):
        """Too little history: the gate reports but never fails."""
        seed_history(tmp_path, count=DEFAULT_MIN_SAMPLES - 1)
        history = load_history(history_path("fastpath", tmp_path))
        report = check_artifact(
            fastpath_payload(speedup_uniform=0.1, speedup_self=0.1),
            "fastpath",
            history,
        )
        assert report.ok
        assert all(r.baseline is None for r in report.results)
        assert "insufficient history" in report.describe()

    def test_baseline_is_rolling_median(self, tmp_path):
        # One crazy-fast outlier entry must not poison the baseline.
        for speedup in (6.0, 6.1, 5.9, 60.0):
            append_entry(
                "fastpath",
                fastpath_payload(speedup_uniform=speedup),
                history_dir=tmp_path,
            )
        history = load_history(history_path("fastpath", tmp_path))
        report = check_artifact(fastpath_payload(), "fastpath", history)
        uniform = next(
            r for r in report.results if r.metric == "speedup[uniform]"
        )
        assert uniform.baseline == pytest.approx(6.05)
        assert report.ok

    def test_lower_is_better_direction(self):
        gate = GateSpec(
            metric="latency",
            select=lambda p: {"latency": p["latency"]},
            direction="lower",
        )
        assert gate.regressed(current=1.3, baseline=1.0)
        assert not gate.regressed(current=1.1, baseline=1.0)
        assert not gate.regressed(current=0.5, baseline=1.0)

    def test_higher_is_better_direction(self):
        gate = GateSpec(metric="speedup", select=lambda p: {})
        assert gate.regressed(current=0.7, baseline=1.0)
        assert not gate.regressed(current=0.9, baseline=1.0)


class TestCli:
    def _artifact(self, tmp_path, **kwargs) -> str:
        path = tmp_path / "BENCH_fastpath.json"
        path.write_text(json.dumps(fastpath_payload(**kwargs)))
        return str(path)

    def test_append_then_check_passes(self, tmp_path, capsys):
        artifact = self._artifact(tmp_path)
        history = tmp_path / "history"
        for _ in range(3):
            assert main(
                ["--history-dir", str(history), "append", artifact]
            ) == 0
        assert main(["--history-dir", str(history), "check", artifact]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        good = self._artifact(tmp_path)
        history = tmp_path / "history"
        for _ in range(3):
            main(["--history-dir", str(history), "append", good])
        bad_path = tmp_path / "BENCH_bad.json"
        bad_path.write_text(
            json.dumps(fastpath_payload(speedup_uniform=4.0, speedup_self=8.0))
        )
        code = main(
            ["--history-dir", str(history), "check", str(bad_path),
             "--bench", "fastpath"]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_ungated_bench_check_is_noop(self, tmp_path, capsys):
        path = tmp_path / "BENCH_mystery.json"
        path.write_text("{}")
        assert main(["check", str(path)]) == 0
        assert "no gates registered" in capsys.readouterr().out

    def test_show(self, tmp_path, capsys):
        artifact = self._artifact(tmp_path)
        history = tmp_path / "history"
        main(["--history-dir", str(history), "append", artifact])
        assert main(["--history-dir", str(history), "show", "fastpath"]) == 0
        out = capsys.readouterr().out
        assert "speedup[uniform]" in out


class TestCommittedHistory:
    """The repository's own seed must satisfy its own gate."""

    def test_committed_seed_exists_and_loads(self):
        path = HISTORY_DIR / "fastpath.jsonl"
        entries = load_history(path)
        assert len(entries) >= DEFAULT_MIN_SAMPLES
        for entry in entries:
            assert entry["metrics"]["speedup[uniform]"] > 1.0
            assert entry["metrics"]["speedup[self-join]"] > 1.0

    def test_committed_seed_is_self_consistent(self):
        """Each seed entry, replayed as a fresh artifact, passes the
        gate against the others — the history is not pre-regressed."""
        entries = load_history(HISTORY_DIR / "fastpath.jsonl")
        last = entries[-1]["metrics"]
        payload = {
            "rows": [
                {
                    "workload": "uniform",
                    "speedup": last["speedup[uniform]"],
                    "memory_pairs_per_s": last["memory_pairs_per_s[uniform]"],
                },
                {
                    "workload": "self-join",
                    "speedup": last["speedup[self-join]"],
                    "memory_pairs_per_s": last[
                        "memory_pairs_per_s[self-join]"
                    ],
                },
            ]
        }
        report = check_artifact(payload, "fastpath", entries)
        assert report.ok, report.describe()
