"""The kill-and-reopen crash gate (``repro verify --crash``).

These tests keep the subprocess count small — CI's crash-smoke job
runs the full 25-case sweep; here we check the harness machinery
(deterministic schedules, oracle prefixes, sampled crash points) and a
couple of real SIGKILL round-trips.
"""

import random

from repro.verify.crash import (
    DEFAULT_OPS,
    apply_prefix,
    op_schedule,
    run_crash_case,
    run_crash_verify,
    sample_crash_point,
)


class TestSchedule:
    def test_deterministic(self):
        assert op_schedule(7) == op_schedule(7)
        assert op_schedule(7) != op_schedule(8)

    def test_mix_and_validity(self):
        schedule = op_schedule(3, ops=200)
        assert len(schedule) == 200
        ops = {op for op, _ in schedule}
        assert ops == {"insert", "delete", "compact"}
        live = {}
        for op, payload in schedule:
            if op == "insert":
                # Re-inserts reuse an eid, but never one still live.
                assert payload.eid not in live
                live[payload.eid] = payload
                rect = payload.mbr
                assert 0.0 <= rect.xlo <= rect.xhi <= 1.0
                assert 0.0 <= rect.ylo <= rect.yhi <= 1.0
            elif op == "delete":
                # Deletes only name still-live entities.
                assert payload in live
                del live[payload]

    def test_apply_prefix_matches_replay(self):
        schedule = op_schedule(11, ops=60)
        live = {}
        for count, (op, payload) in enumerate(schedule, start=1):
            if op == "insert":
                live[payload.eid] = payload
            elif op == "delete":
                live.pop(payload, None)
            assert apply_prefix(schedule, count) == live
        assert apply_prefix(schedule, 0) == {}

    def test_sampled_crash_points_cover_every_point(self):
        points = {
            sample_crash_point(random.Random(seed)).point for seed in range(60)
        }
        assert points == {
            "wal-append",
            "wal-synced",
            "data-write",
            "rename",
            "checkpoint",
        }


class TestCrashCases:
    def test_two_sampled_kill_cases_recover_exactly(self):
        for case_no in (0, 1):
            result = run_crash_case(case_no, seed=0)
            assert result.ok, result.describe()
            if result.killed:
                assert result.acked < DEFAULT_OPS
            else:
                assert result.acked == DEFAULT_OPS

    def test_report_aggregates_and_serializes(self):
        report = run_crash_verify(cases=2, seed=1, ops=32)
        assert report.ok, report.summary()
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["ledger_parity_ok"] is True
        assert len(payload["cases"]) == 2
        assert report.summary()
