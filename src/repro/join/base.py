"""Base class for spatial join algorithms.

All three algorithms operate on *descriptor files* (paged files of
entity descriptors already expanded for the predicate's margin) and
produce a set of candidate pairs plus per-phase metrics.  They are
predicate-agnostic: the filter step is always MBR intersection; the
refinement step happens above them (see :mod:`repro.join.api`).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod

from repro.join.metrics import JoinMetrics
from repro.join.result import JoinResult, canonical_pairs
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile

_run_counter = itertools.count()


class SpatialJoinAlgorithm(ABC):
    """One join algorithm bound to a storage manager."""

    name: str = "abstract"
    phase_names: tuple[str, ...] = ()

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage
        self._run_id = next(_run_counter)

    def _file_name(self, suffix: str) -> str:
        """A collision-free per-run internal file name."""
        return f"{self.name}-{self._run_id}-{suffix}"

    @abstractmethod
    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        """Execute the filter step and return raw candidate pairs plus
        metrics.  Raw pairs may contain mirrored duplicates for self
        joins; they are canonicalized by :meth:`join`."""

    def join(
        self, input_a: PagedFile, input_b: PagedFile, self_join: bool = False
    ) -> JoinResult:
        """Run the filter step and package the result."""
        raw_pairs, metrics = self.run_filter_step(input_a, input_b)
        return JoinResult(
            pairs=canonical_pairs(raw_pairs, self_join),
            metrics=metrics,
            self_join=self_join,
        )

    def _build_metrics(self, **extra: object) -> JoinMetrics:
        """Collect this run's phase stats from the storage ledger."""
        stats = self.storage.stats
        return JoinMetrics(
            algorithm=self.name,
            phase_names=self.phase_names,
            phases={
                name: stats.phases[name]
                for name in self.phase_names
                if name in stats.phases
            },
            cost_model=self.storage.cost_model,
            details=dict(extra),
        )
