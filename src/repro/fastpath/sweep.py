"""The vectorized forward-sweep interval join kernel.

This is the memory-mode replacement for the ledger path's synchronized
page scan: given two sets of rectangles, report every pair whose MBRs
intersect (closed intervals — boundary contact counts, matching
``Rect.intersects``).

The kernel follows the *forward sweep* of Tsitsigkos & Mamoulis
(PAPERS.md, 1908.11740): with both inputs sorted by ``xlo``, every
x-overlapping pair ``(a, b)`` falls in exactly one of two disjoint
classes,

1. ``b.xlo ∈ [a.xlo, a.xhi]`` — *b starts inside a*, and
2. ``a.xlo ∈ (b.xlo, b.xhi]`` — *a starts strictly inside b*,

and each class is a single contiguous range of the other input's sorted
``xlo`` array, found with two ``np.searchsorted`` calls per side.  The
ranges are expanded to explicit index pairs with ``repeat``/``cumsum``
arithmetic and filtered by a vectorized closed-interval y-overlap mask
— no Python-level loop over candidates anywhere.
"""

from __future__ import annotations

import numpy as np


def _expand_ranges(
    starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-row half-open index ranges ``[starts[i], stops[i])``
    into explicit ``(row, index)`` pairs.

    Returns ``(rows, indices)`` where ``rows`` repeats each row id once
    per element of its range and ``indices`` enumerates the ranges.
    """
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    # Offset of each output slot within its row's range: a global
    # arange minus the (repeated) cumulative start of the row's block.
    block_starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(block_starts, counts)
    return rows, np.repeat(starts, counts) + offsets


def forward_sweep_pairs(
    axlo: np.ndarray,
    axhi: np.ndarray,
    bxlo: np.ndarray,
    bxhi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with closed-interval x-overlap:
    ``axlo[i] <= bxhi[j] and bxlo[j] <= axhi[i]``.

    Both ``axlo`` and ``bxlo`` must be sorted ascending (``axhi`` /
    ``bxhi`` ride along unsorted).  Each qualifying pair is produced
    exactly once, by the two-class decomposition above.
    """
    # Class 1: b starts inside a — bxlo[j] in [axlo[i], axhi[i]].
    lo1 = np.searchsorted(bxlo, axlo, side="left")
    hi1 = np.searchsorted(bxlo, axhi, side="right")
    ia1, ib1 = _expand_ranges(lo1, np.maximum(lo1, hi1))
    # Class 2: a starts strictly inside b — axlo[i] in (bxlo[j], bxhi[j]].
    lo2 = np.searchsorted(axlo, bxlo, side="right")
    hi2 = np.searchsorted(axlo, bxhi, side="right")
    ib2, ia2 = _expand_ranges(lo2, np.maximum(lo2, hi2))
    return np.concatenate([ia1, ia2]), np.concatenate([ib1, ib2])


def sweep_intersecting_pairs(
    axlo: np.ndarray,
    aylo: np.ndarray,
    axhi: np.ndarray,
    ayhi: np.ndarray,
    bxlo: np.ndarray,
    bylo: np.ndarray,
    bxhi: np.ndarray,
    byhi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """All index pairs of intersecting rectangles between two inputs.

    Inputs need not be pre-sorted; indices in the returned ``(ia, ib)``
    arrays refer to the caller's original order.  The third element is
    the number of x-overlapping candidate pairs the y-mask tested —
    memory mode's analogue of the ledger's ``mbr_test`` count.
    """
    order_a = np.argsort(axlo, kind="stable")
    order_b = np.argsort(bxlo, kind="stable")
    ia, ib = forward_sweep_pairs(
        axlo[order_a], axhi[order_a], bxlo[order_b], bxhi[order_b]
    )
    ia = order_a[ia]
    ib = order_b[ib]
    keep = (aylo[ia] <= byhi[ib]) & (bylo[ib] <= ayhi[ia])
    return ia[keep], ib[keep], len(keep)
