"""The durable page store: WAL, crash recovery, ledger parity, and the
kill-and-reopen persistent index (DESIGN.md section 16).

In-process crashes use ``CrashPoint(action="raise")``, which throws
:class:`SimulatedCrash` (a ``BaseException``) at the sampled instant;
the test then reopens the directory with a fresh store exactly as a
restarted process would.  The genuine-``SIGKILL`` path is exercised by
``repro verify --crash`` (tests in ``test_crash_verify.py``).
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.service.index import PersistentIndex
from repro.storage import wal
from repro.storage.backend import BackendClosedError, FileBackend, MemoryBackend
from repro.storage.durable import (
    DATA_FILE,
    CrashPoint,
    DurableBackend,
    DurableStoreError,
    SimulatedCrash,
)
from repro.storage.records import EntityDescriptorCodec

PAGE_SIZE = 512  # 10 descriptor records per page


def record(i):
    return (i, 0.0, 0.0, 1.0, 1.0, i)


def page(start, count=3):
    return [record(start * 100 + i) for i in range(count)]


def make_store(directory, **kwargs):
    kwargs.setdefault("page_size", PAGE_SIZE)
    return DurableBackend(directory, **kwargs)


class TestRoundTrip:
    def test_write_read_reopen(self, tmp_path):
        codec = EntityDescriptorCodec()
        store = make_store(tmp_path)
        store.create_file("f", codec, PAGE_SIZE)
        store.write_page("f", 0, page(0))
        store.write_page("f", 1, page(1))
        assert store.read_page("f", 0) == page(0)
        store.close()

        reopened = make_store(tmp_path)
        assert reopened.stored_files() == ["f"]
        assert reopened.attach_file("f", codec, PAGE_SIZE) == 2
        assert reopened.read_page("f", 1) == page(1)
        assert reopened.file_record_counts("f") == [3, 3]
        reopened.close()

    def test_reopen_without_page_size_uses_header(self, tmp_path):
        make_store(tmp_path).close()
        store = DurableBackend(tmp_path)
        assert store.page_size == PAGE_SIZE
        store.close()

    def test_page_size_mismatch_rejected(self, tmp_path):
        make_store(tmp_path).close()
        with pytest.raises(DurableStoreError, match="page size"):
            DurableBackend(tmp_path, page_size=4096)

    def test_fresh_store_needs_page_size(self, tmp_path):
        with pytest.raises(DurableStoreError, match="page size"):
            DurableBackend(tmp_path)

    def test_missing_page_and_missing_file(self, tmp_path):
        store = make_store(tmp_path)
        store.create_file("f", EntityDescriptorCodec(), PAGE_SIZE)
        with pytest.raises(ValueError, match="never written"):
            store.read_page("f", 0)
        with pytest.raises(FileNotFoundError):
            store.read_page("ghost", 0)
        store.close()

    def test_closed_store_rejects_operations(self, tmp_path):
        store = make_store(tmp_path)
        store.close()
        store.close()  # idempotent
        with pytest.raises(BackendClosedError):
            store.stored_files()

    def test_epoch_bumps_on_every_reopen(self, tmp_path):
        store = make_store(tmp_path)
        assert store.epoch == 1
        store.close()
        for expected in (2, 3):
            store = make_store(tmp_path)
            assert store.epoch == expected
            store.close()

    def test_rename_and_delete_survive_reopen(self, tmp_path):
        codec = EntityDescriptorCodec()
        store = make_store(tmp_path)
        store.create_file("a", codec, PAGE_SIZE)
        store.create_file("b", codec, PAGE_SIZE)
        store.write_page("a", 0, page(0))
        store.delete_file("b")
        store.rename_file("a", "c")
        store.close()
        reopened = make_store(tmp_path)
        assert reopened.stored_files() == ["c"]
        reopened.attach_file("c", codec, PAGE_SIZE)
        assert reopened.read_page("c", 0) == page(0)
        reopened.close()

    def test_free_slots_reused_lowest_first(self, tmp_path):
        codec = EntityDescriptorCodec()
        store = make_store(tmp_path)
        store.create_file("a", codec, PAGE_SIZE)
        for page_no in range(8):
            store.write_page("a", page_no, page(page_no))
        size_before = os.path.getsize(tmp_path / DATA_FILE)
        store.delete_file("a")
        store.create_file("b", codec, PAGE_SIZE)
        for page_no in range(8):
            store.write_page("b", page_no, page(page_no + 10))
        # Churn reuses the freed slots: the data file did not grow.
        assert os.path.getsize(tmp_path / DATA_FILE) == size_before
        store.close()


class TestCrashPointSpec:
    def test_env_round_trip(self):
        point = CrashPoint("data-write", index=3, fraction=0.25, action="raise")
        assert CrashPoint.from_env(point.to_env()) == point

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point": "nonsense"},
            {"point": "wal-append", "fraction": 1.5},
            {"point": "wal-append", "action": "explode"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CrashPoint(**kwargs)


class TestRecovery:
    """Occurrence accounting for the crash indices below: ``create_file``
    logs a WAL record too, so after create + N page writes the next
    logged mutation is wal-append/wal-synced occurrence ``N + 1``;
    ``data-write`` counts only slot writes."""

    def crashed_store(self, tmp_path, crash_point):
        codec = EntityDescriptorCodec()
        store = make_store(tmp_path, crash_point=crash_point)
        store.create_file("f", codec, PAGE_SIZE)
        store.write_page("f", 0, page(0))
        store.write_page("f", 1, page(1))
        with pytest.raises(SimulatedCrash):
            store.write_page("f", 2, page(2))
        return codec

    def test_torn_wal_tail_truncated(self, tmp_path):
        # Dies mid-append of page 2's log record: never committed.
        codec = self.crashed_store(
            tmp_path, CrashPoint("wal-append", index=3, fraction=0.5, action="raise")
        )
        store = make_store(tmp_path)
        assert store.last_recovery.truncated_bytes > 0
        store.attach_file("f", codec, PAGE_SIZE)
        assert store.read_page("f", 0) == page(0)
        assert store.read_page("f", 1) == page(1)
        with pytest.raises(ValueError, match="never written"):
            store.read_page("f", 2)
        store.close()

    def test_committed_write_replayed_from_wal(self, tmp_path):
        # Dies after the WAL fsync, before the data write: committed.
        codec = self.crashed_store(
            tmp_path, CrashPoint("wal-synced", index=3, action="raise")
        )
        store = make_store(tmp_path)
        assert store.last_recovery.replayed_records >= 1
        store.attach_file("f", codec, PAGE_SIZE)
        assert store.read_page("f", 2) == page(2)
        store.close()

    def test_torn_data_page_healed(self, tmp_path):
        # Dies mid-slot-write: the log is complete, the page is torn.
        codec = self.crashed_store(
            tmp_path, CrashPoint("data-write", index=2, fraction=0.3, action="raise")
        )
        store = make_store(tmp_path)
        assert store.last_recovery.healed_pages >= 1
        store.attach_file("f", codec, PAGE_SIZE)
        assert store.read_page("f", 2) == page(2)
        store.close()

    def test_double_reopen_is_idempotent(self, tmp_path):
        codec = self.crashed_store(
            tmp_path, CrashPoint("wal-synced", index=3, action="raise")
        )
        first = make_store(tmp_path)
        first.close()
        second = make_store(tmp_path)
        # The first recovery checkpointed: nothing left to replay.
        assert second.last_recovery.replayed_records == 0
        assert second.last_recovery.truncated_bytes == 0
        second.attach_file("f", codec, PAGE_SIZE)
        assert second.read_page("f", 2) == page(2)
        second.close()

    def test_empty_wal_reopen(self, tmp_path):
        make_store(tmp_path).close()
        store = make_store(tmp_path)
        assert store.last_recovery.replayed_records == 0
        assert store.stored_files() == []
        store.close()

    def test_crash_during_checkpoint(self, tmp_path):
        codec = EntityDescriptorCodec()
        store = make_store(
            tmp_path, crash_point=CrashPoint("checkpoint", action="raise")
        )
        store.create_file("f", codec, PAGE_SIZE)
        store.write_page("f", 0, page(0))
        with pytest.raises(SimulatedCrash):
            store.checkpoint()
        reopened = make_store(tmp_path)
        reopened.attach_file("f", codec, PAGE_SIZE)
        assert reopened.read_page("f", 0) == page(0)
        reopened.close()

    def test_wal_rotation_and_checkpoint_trigger(self, tmp_path):
        codec = EntityDescriptorCodec()
        store = make_store(
            tmp_path, segment_bytes=2048, checkpoint_bytes=8192
        )
        store.create_file("f", codec, PAGE_SIZE)
        for page_no in range(64):
            store.write_page("f", page_no, page(page_no % 50))
        store.close()
        reopened = make_store(tmp_path)
        reopened.attach_file("f", codec, PAGE_SIZE)
        assert reopened.read_page("f", 63) == page(13)
        reopened.close()

    @settings(max_examples=25, deadline=None)
    @given(
        point=st.sampled_from(["wal-append", "wal-synced", "data-write"]),
        index=st.integers(min_value=0, max_value=8),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_recovery_lands_on_acked_prefix(self, point, index, fraction):
        """Whatever instant the store dies at, reopening recovers every
        acknowledged write exactly; the in-flight write is either absent
        or complete — never torn."""
        codec = EntityDescriptorCodec()
        writes = [(page_no, page(page_no)) for page_no in range(6)]
        with tempfile.TemporaryDirectory() as directory:
            crash = CrashPoint(point, index=index, fraction=fraction, action="raise")
            store = make_store(directory, crash_point=crash)
            acked = []
            crashed_write = None
            try:
                store.create_file("f", codec, PAGE_SIZE)
                for page_no, records in writes:
                    crashed_write = (page_no, records)
                    store.write_page("f", page_no, records)
                    acked.append((page_no, records))
                    crashed_write = None
                store.close()
            except SimulatedCrash:
                pass
            reopened = make_store(directory)
            if "f" in reopened.stored_files():
                reopened.attach_file("f", codec, PAGE_SIZE)
                stored = dict(acked)
                for page_no, records in acked:
                    assert reopened.read_page("f", page_no) == records
                if crashed_write is not None:
                    page_no, records = crashed_write
                    if page_no not in stored:
                        try:
                            recovered = reopened.read_page("f", page_no)
                        except ValueError:
                            recovered = None
                        assert recovered in (None, records)
            else:
                # Death before the create committed: nothing was acked.
                assert acked == []
            reopened.close()


class TestSyncContract:
    def test_memory_backend_sync_is_noop(self):
        backend = MemoryBackend()
        backend.sync()

    def test_file_backend_sync_and_close_fsync(self, tmp_path):
        codec = EntityDescriptorCodec()
        backend = FileBackend(str(tmp_path))
        backend.create_file("f", codec, PAGE_SIZE)
        backend.write_page("f", 0, page(0))
        backend.sync()
        assert backend.read_page("f", 0) == page(0)
        backend.close()
        with pytest.raises(BackendClosedError):
            backend.sync()

    def test_durable_backend_sync(self, tmp_path):
        store = make_store(tmp_path)
        store.create_file("f", EntityDescriptorCodec(), PAGE_SIZE)
        store.write_page("f", 0, page(0))
        store.sync()
        store.close()


class TestLedgerParity:
    def test_three_backends_byte_identical(self, tmp_path):
        """The simulated ledger is a pure function of the logical I/O:
        memory, disk, and durable runs of the same join produce
        byte-identical metrics and identical pairs."""
        from repro.datagen.uniform import uniform_squares
        from repro.experiments.runner import run_algorithm

        a = uniform_squares(250, 0.03, seed=5, name="A")
        b = uniform_squares(250, 0.03, seed=6, name="B")
        outcomes = {}
        for backend in ("memory", "disk", "durable"):
            run = run_algorithm(
                a,
                b,
                "s3j",
                scale=0.05,
                backend=backend,
                data_dir=str(tmp_path / backend) if backend == "durable" else None,
            )
            outcomes[backend] = (
                sorted(run.result.pairs),
                run.result.metrics.to_dict(),
            )
        assert outcomes["disk"] == outcomes["memory"]
        assert outcomes["durable"] == outcomes["memory"]


def entity(eid, x, y, side=0.02):
    return Entity(eid, Rect(x, y, x + side, y + side))


class TestPersistentIndexReopen:
    def seeded(self, data_dir, threshold=8):
        return PersistentIndex.open(
            str(data_dir), compaction_threshold=threshold
        )

    def test_insert_close_reopen(self, tmp_path):
        index = self.seeded(tmp_path)
        for i in range(12):
            index.insert(entity(i, 0.05 * i, 0.05 * i))
        eids_before = sorted(e.eid for e in index.live_entities())
        join_before = index.self_join()
        index.close()

        reopened = self.seeded(tmp_path)
        assert reopened.recovered
        assert sorted(e.eid for e in reopened.live_entities()) == eids_before
        assert reopened.self_join() == join_before
        reopened.close()

    def test_reopen_rejects_fresh_seed(self, tmp_path):
        index = self.seeded(tmp_path)
        index.insert(entity(1, 0.1, 0.1))
        index.close()
        with pytest.raises(ValueError, match="already holds"):
            PersistentIndex([entity(2, 0.2, 0.2)], data_dir=str(tmp_path))

    def test_delete_and_reinsert_survive_reopen(self, tmp_path):
        index = self.seeded(tmp_path, threshold=4)
        for i in range(8):
            index.insert(entity(i, 0.1 * i, 0.1 * i))
        index.compact()  # fold everything into base levels
        index.delete(3)
        index.insert(entity(3, 0.9, 0.05))  # reinsert a tombstoned eid
        assert 3 in index
        window = index.window_query(Rect(0.85, 0.0, 1.0, 0.1))
        assert 3 in window
        index.close()

        reopened = self.seeded(tmp_path, threshold=4)
        assert 3 in reopened
        assert 3 in reopened.window_query(Rect(0.85, 0.0, 1.0, 0.1))
        assert 3 not in reopened.window_query(Rect(0.25, 0.25, 0.4, 0.4))
        reopened.close()

    def test_reinserted_tombstone_visible_in_queries(self):
        """Regression: tombstones must filter the base stream only — a
        re-inserted eid lives in the delta and must stay visible."""
        index = PersistentIndex(compaction_threshold=4)
        for i in range(4):
            index.insert(entity(i, 0.2 * i, 0.2 * i))
        index.compact()
        index.delete(2)
        index.insert(entity(2, 0.21, 0.21))  # now overlaps entity 1
        assert 2 in index.window_query(Rect(0.2, 0.2, 0.25, 0.25))
        pairs = index.self_join()
        assert any(2 in pair for pair in pairs)
        index.close()

    def test_orphan_temp_dropped_when_base_exists(self, tmp_path):
        codec = EntityDescriptorCodec()
        index = self.seeded(tmp_path, threshold=4)
        for i in range(6):
            index.insert(entity(i, 0.1 * i, 0.1 * i))
        index.compact()
        level_files = [
            name
            for name in index.storage.stored_files()
            if name.startswith("idx-L") and not name.endswith("-compact")
        ]
        assert level_files
        live_before = sorted(e.eid for e in index.live_entities())
        backend = index._backend()
        page_size = index.storage.config.page_size
        # Plant the debris of a compaction that died before its rename
        # committed: the base is authoritative, the temp must go.
        orphan = f"{level_files[0]}-compact"
        backend.create_file(orphan, codec, page_size)
        backend.write_page(orphan, 0, [(999, 0.0, 0.0, 1.0, 1.0, 0)])
        index.close()

        reopened = self.seeded(tmp_path, threshold=4)
        assert orphan not in reopened.storage.stored_files()
        assert sorted(e.eid for e in reopened.live_entities()) == live_before
        assert 999 not in reopened
        reopened.close()

    def test_orphan_temp_adopted_when_base_missing(self, tmp_path):
        index = self.seeded(tmp_path, threshold=4)
        for i in range(6):
            index.insert(entity(i, 0.1 * i, 0.1 * i))
        index.compact()
        level_files = [
            name
            for name in index.storage.stored_files()
            if name.startswith("idx-L") and not name.endswith("-compact")
        ]
        live_before = sorted(e.eid for e in index.live_entities())
        backend = index._backend()
        # Simulate a replace-rename killed between deleting the old
        # base and renaming the temp: only the temp remains.
        backend.rename_file(level_files[0], f"{level_files[0]}-compact")
        index.close()

        reopened = self.seeded(tmp_path, threshold=4)
        stored = reopened.storage.stored_files()
        assert level_files[0] in stored
        assert f"{level_files[0]}-compact" not in stored
        assert sorted(e.eid for e in reopened.live_entities()) == live_before
        reopened.close()


class TestWalUnit:
    def test_record_round_trip(self, tmp_path):
        log = wal.WriteAheadLog(tmp_path, segment_bytes=1024, start_sequence=1)
        bodies = [os.urandom(40) for _ in range(20)]
        for lsn, body in enumerate(bodies, start=1):
            log.append(wal.WalRecord(lsn, wal.OP_WRITE, body))
        log.sync()
        log.close()
        seen = []
        scan = wal.scan_segments(tmp_path, lambda r: seen.append(r))
        assert scan.truncated_bytes == 0
        assert [r.body for r in seen] == bodies
        assert [r.lsn for r in seen] == list(range(1, 21))

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        log = wal.WriteAheadLog(tmp_path, segment_bytes=1 << 20, start_sequence=1)
        log.append(wal.WalRecord(1, wal.OP_WRITE, b"x" * 32))
        log.append(wal.WalRecord(2, wal.OP_WRITE, b"y" * 32))
        log.sync()
        path = log.segment_path
        log.close()
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])  # tear the last record
        seen = []
        scan = wal.scan_segments(tmp_path, lambda r: seen.append(r))
        assert [r.lsn for r in seen] == [1]
        assert scan.truncated_bytes > 0
        # The torn bytes are gone from the medium too.
        assert len(path.read_bytes()) < len(blob) - 10
