"""Tests for multiway (k-way) spatial joins."""

import itertools

import pytest

from repro.join.multiway import spatial_multiway_join

from tests.conftest import make_squares


def brute_force_kway(datasets):
    """All id-tuples whose MBRs share a common point."""
    found = set()
    for combo in itertools.product(*[list(d) for d in datasets]):
        region = combo[0].mbr
        for entity in combo[1:]:
            region = region.intersection(entity.mbr)
            if region is None:
                break
        else:
            found.add(tuple(e.eid for e in combo))
    return frozenset(found)


class TestMultiway:
    def test_requires_two_inputs(self):
        with pytest.raises(ValueError):
            spatial_multiway_join([make_squares(5, 0.1, seed=1)])

    def test_two_way_matches_pairwise(self):
        a = make_squares(120, 0.06, seed=1, name="A")
        b = make_squares(120, 0.06, seed=2, name="B")
        tuples, metrics = spatial_multiway_join([a, b])
        assert tuples == brute_force_kway([a, b])
        assert len(metrics) == 1

    def test_three_way_common_overlap(self):
        a = make_squares(80, 0.08, seed=3, name="A")
        b = make_squares(80, 0.08, seed=4, name="B")
        c = make_squares(80, 0.08, seed=5, name="C")
        tuples, metrics = spatial_multiway_join([a, b, c])
        assert tuples == brute_force_kway([a, b, c])
        assert len(metrics) == 2
        assert all(len(t) == 3 for t in tuples)

    def test_four_way(self):
        datasets = [
            make_squares(40, 0.12, seed=s, name=f"D{s}") for s in (6, 7, 8, 9)
        ]
        tuples, metrics = spatial_multiway_join(datasets)
        assert tuples == brute_force_kway(datasets)
        assert len(metrics) == 3

    @pytest.mark.parametrize("algorithm", ["s3j", "pbsm", "shj"])
    def test_all_algorithms_agree(self, algorithm):
        a = make_squares(60, 0.08, seed=10, name="A")
        b = make_squares(60, 0.08, seed=11, name="B")
        c = make_squares(60, 0.08, seed=12, name="C")
        tuples, _ = spatial_multiway_join([a, b, c], algorithm=algorithm)
        assert tuples == brute_force_kway([a, b, c])

    def test_empty_intermediate_short_circuits(self):
        left = make_squares(20, 0.01, seed=13, name="L")
        # Entities squeezed into a far corner so no pairs survive.
        import random

        from repro.geometry.entity import Entity
        from repro.geometry.rect import Rect
        from repro.join.dataset import SpatialDataset

        rng = random.Random(14)
        right = SpatialDataset(
            "R",
            [
                Entity.from_geometry(
                    i,
                    Rect(
                        x := rng.uniform(0.9, 0.99),
                        y := rng.uniform(0.9, 0.99),
                        min(1.0, x + 0.005),
                        min(1.0, y + 0.005),
                    ),
                )
                for i in range(20)
            ],
        )
        far = make_squares(20, 0.01, seed=15, name="F")
        # Make left cluster in the opposite corner to guarantee no join.
        left = SpatialDataset(
            "L",
            [
                Entity.from_geometry(
                    i,
                    Rect(
                        x := rng.uniform(0.0, 0.1),
                        y := rng.uniform(0.0, 0.1),
                        x + 0.005,
                        y + 0.005,
                    ),
                )
                for i in range(20)
            ],
        )
        tuples, metrics = spatial_multiway_join([left, right, far])
        assert tuples == frozenset()
        # One metrics entry per planned stage, even though the second
        # stage had no input: callers can zip(metrics, stages).
        assert len(metrics) == 2
        assert metrics[1].details.get("empty_stage") is True
        assert metrics[1].response_time == 0.0
        assert metrics[1].total_ios == 0

    def test_empty_stage_metrics_one_per_stage(self):
        """A 4-way join whose second stage empties still reports one
        metrics entry for every planned stage."""
        import random

        from repro.geometry.entity import Entity
        from repro.geometry.rect import Rect
        from repro.join.dataset import SpatialDataset

        rng = random.Random(42)

        def corner(name, xlo, ylo):
            return SpatialDataset(
                name,
                [
                    Entity.from_geometry(
                        i,
                        Rect(
                            x := rng.uniform(xlo, xlo + 0.08),
                            y := rng.uniform(ylo, ylo + 0.08),
                            x + 0.004,
                            y + 0.004,
                        ),
                    )
                    for i in range(15)
                ],
            )

        disjoint = [
            corner("A", 0.0, 0.0),
            corner("B", 0.9, 0.9),
            corner("C", 0.0, 0.9),
            corner("D", 0.9, 0.0),
        ]
        tuples, metrics = spatial_multiway_join(disjoint)
        assert tuples == frozenset()
        assert len(metrics) == 3
        assert metrics[0].details.get("empty_stage") is None
        for stage in metrics[1:]:
            assert stage.details.get("empty_stage") is True
