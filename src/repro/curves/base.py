"""Common interface for recursive space-filling curves."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

DEFAULT_ORDER = 16
"""Default curve order: coordinates are quantized to 16 bits per
dimension, i.e. a 65536 x 65536 grid, matching the "maximum precision"
table-driven computation the paper times at under 10 microseconds."""


class SpaceFillingCurve(ABC):
    """A bijection between the ``2^order x 2^order`` integer grid and the
    key range ``[0, 4^order)`` that recursively subdivides the space.

    The *prefix property* — the top ``2*l`` key bits identify the
    level-``l`` cell, so each cell is one contiguous key range — is what
    lets S3J's synchronized scan treat entities as nested Hilbert-range
    intervals and read each page exactly once.
    """

    name: str = "abstract"

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if not 1 <= order <= 31:
            raise ValueError("curve order must be between 1 and 31")
        self.order = order
        self.side = 1 << order
        self.max_key = (1 << (2 * order)) - 1

    @abstractmethod
    def key(self, x: int, y: int) -> int:
        """Curve key of the integer grid cell ``(x, y)``."""

    @abstractmethod
    def point(self, key: int) -> tuple[int, int]:
        """Inverse mapping: the grid cell visited at position ``key``."""

    def keys(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`key` (default: scalar loop; curves override).

        Always returns ``int64`` — the signed dtype matches the scalar
        :meth:`key` Python ints and keeps downstream mixing with other
        ``int64`` arrays from silently promoting to ``float64`` (which
        a ``uint64`` result would).  Keys fit: ``order <= 31`` bounds
        them below ``2^62``.
        """
        return np.array(
            [self.key(int(x), int(y)) for x, y in zip(xs, ys)], dtype=np.int64
        )

    def quantize(self, coord: float) -> int:
        """Map a normalized coordinate in ``[0, 1]`` to a grid index."""
        if not 0.0 <= coord <= 1.0:
            raise ValueError(f"coordinate {coord} outside the unit square")
        return min(int(coord * self.side), self.side - 1)

    def key_of_normalized(self, x: float, y: float) -> int:
        """Curve key of a point given in unit-square coordinates.

        This is the paper's ``Hilbert(xc, yc)`` computed on MBR centers.
        """
        return self.key(self.quantize(x), self.quantize(y))

    def cell_key_range(self, x: int, y: int, level: int) -> tuple[int, int]:
        """Half-open key range ``[lo, hi)`` of the level-``level`` cell
        containing grid point ``(x, y)``.

        A level-``l`` cell is one of the ``4^l`` cells of the ``2^l``
        grid.  By the prefix property its keys are exactly those sharing
        the top ``2*l`` bits with any interior point's key.
        """
        if not 0 <= level <= self.order:
            raise ValueError(f"level {level} outside [0, {self.order}]")
        shift = 2 * (self.order - level)
        prefix = self.key(x, y) >> shift
        return (prefix << shift, (prefix + 1) << shift)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(order={self.order})"


def curve_by_name(name: str, order: int = DEFAULT_ORDER) -> SpaceFillingCurve:
    """Instantiate a curve from its short name: hilbert, zorder, or gray."""
    from repro.curves.gray import GrayCurve
    from repro.curves.hilbert import HilbertCurve
    from repro.curves.zorder import ZOrderCurve

    registry = {
        "hilbert": HilbertCurve,
        "zorder": ZOrderCurve,
        "z-order": ZOrderCurve,
        "gray": GrayCurve,
    }
    normalized = name.strip().lower()
    if normalized not in registry:
        raise ValueError(f"unknown curve {name!r}; choose from {sorted(registry)}")
    return registry[normalized](order)
