"""Using the analytic cost models the way a query optimizer would
(section 4: "S3J has relatively simple cost estimation formulas that
can be exploited by a query optimizer").

For a hypothetical join of two uniform data sets we predict the page
I/O of all three algorithms from catalog statistics alone (sizes,
memory, object density), then validate the S3J prediction against an
actual run.

Run:  python examples/cost_estimation.py
"""

from repro.costmodel import (
    expected_replication_factor,
    pbsm_io,
    pbsm_partitions,
    replicated_fraction,
    s3j_hilbert_cpu,
    s3j_io,
    shj_io,
)
from repro.datagen import uniform_squares
from repro.experiments import run_algorithm
from repro.filtertree import level_fractions

PAGES_A = PAGES_B = 1_000
MEMORY = 100
SIDE = 0.005           # object side length (catalog statistic)
TILES_PER_DIM = 32
RESULT_PAGES = 120     # optimizer's output-size estimate


def main() -> None:
    print("Catalog: S_A = S_B = 1000 pages, M = 100 pages,")
    print(f"         uniform {SIDE} x {SIDE} squares, {TILES_PER_DIM}x{TILES_PER_DIM} tiles")
    print()

    fractions = level_fractions(SIDE)
    s3j = s3j_io(PAGES_A, PAGES_B, MEMORY, fractions, fractions, RESULT_PAGES)
    print(f"S3J : scan {s3j.scan_ios:,} + sort {s3j.sort_ios:,} + join "
          f"{s3j.join_ios:,} = {s3j.total_ios:,} page I/Os")
    print(f"      + {s3j_hilbert_cpu(PAGES_A, PAGES_B, 85):.1f}s of Hilbert CPU (eq. 7)")

    replication = expected_replication_factor(SIDE, TILES_PER_DIM)
    print(f"\nPBSM: expected replication factor (1 + d*2^j)^2 = {replication:.3f}")
    print(f"      fraction of objects replicated (fig. 7): "
          f"{replicated_fraction(SIDE * TILES_PER_DIM):.3f}")
    pbsm = pbsm_io(
        PAGES_A, PAGES_B, MEMORY,
        replication_a=replication, replication_b=replication,
        candidate_pages=3 * RESULT_PAGES, result_pages=RESULT_PAGES,
    )
    print(f"      D = {pbsm_partitions(PAGES_A, PAGES_B, MEMORY)} partitions; "
          f"partition {pbsm.partition_ios:,} + repartition {pbsm.repartition_ios:,}"
          f" + join {pbsm.join_ios:,} + sort {pbsm.sort_ios:,}"
          f" = {pbsm.total_ios:,} page I/Os")

    shj = shj_io(
        PAGES_A, PAGES_B, MEMORY, num_partitions=60,
        replication_b=1.5, result_pages=RESULT_PAGES,
    )
    print(f"\nSHJ : sample {shj.sample_ios:,} + partition {shj.partition_ios:,}"
          f" + join {shj.join_ios:,} = {shj.total_ios:,} page I/Os")

    # Validate the S3J estimate against a real (scaled) execution.
    print("\nValidation run (same geometry at 1/10 entity count):")
    a = uniform_squares(8_500, SIDE, seed=1, name="A")
    b = uniform_squares(8_500, SIDE, seed=2, name="B")
    run = run_algorithm(a, b, "s3j", scale=0.1)
    measured = run.result.metrics.total_ios
    predicted = s3j_io(
        1_000, 1_000, MEMORY, fractions, fractions,
        run.result.metrics.details["result_pages"],
    ).total_ios
    print(f"  predicted {predicted:,} page I/Os, measured {measured:,} "
          f"({measured / predicted:+.1%} off)")


if __name__ == "__main__":
    main()
