"""repro.fastpath — the in-memory vectorized execution mode.

The simulated-ledger path (:mod:`repro.core`) is the *model* of the
paper's 1997 system; this package is the *raw-speed* counterpart
(ROADMAP: "true in-memory fast path", after Tsitsigkos & Mamoulis,
PAPERS.md 1908.11740): the same S3J size-separation structure — level
classification, Hilbert-cell assignment — executed over columnar NumPy
arrays with a 1D forward-sweep interval kernel per cell pair, and zero
PagedFile/BufferPool simulation.

Selected with ``spatial_join(..., mode="memory")`` or
``repro join --mode memory``; differentially verified against the
ledger mode by :mod:`repro.verify.crossmode`.
"""

from repro.fastpath.columnar import ColumnarDataset
from repro.fastpath.join import (
    DEFAULT_CELL_OCCUPANCY,
    default_cell_level,
    memory_spatial_join,
)
from repro.fastpath.sweep import forward_sweep_pairs, sweep_intersecting_pairs

__all__ = [
    "ColumnarDataset",
    "DEFAULT_CELL_OCCUPANCY",
    "default_cell_level",
    "forward_sweep_pairs",
    "memory_spatial_join",
    "sweep_intersecting_pairs",
]
