"""Experiment harness: the paper's evaluation protocol, reusable by
benchmarks, examples, and tests.

- :mod:`~repro.experiments.runner` — run one join experiment under the
  paper's conditions (buffer pool at 10% of the inputs, page counts
  scale-compensated so the memory geometry matches the paper at any
  ``REPRO_SCALE``).
- :mod:`~repro.experiments.workloads` — the six evaluation workloads
  (figures 8-10) with their per-figure PBSM tile settings.
- :mod:`~repro.experiments.table4` — the Table 4 summary: response
  times normalized to S3J plus observed replication factors.
"""

from repro.experiments.runner import ExperimentResult, make_storage_config, run_algorithm
from repro.experiments.table4 import table4_rows
from repro.experiments.workloads import WORKLOADS, Workload, workload_by_name

__all__ = [
    "ExperimentResult",
    "WORKLOADS",
    "Workload",
    "make_storage_config",
    "run_algorithm",
    "table4_rows",
    "workload_by_name",
]
