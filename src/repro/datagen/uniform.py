"""Uniformly distributed square data sets (UN1, UN2, UN3)."""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset


def uniform_squares(
    count: int, side: float, seed: int = 0, name: str = "uniform"
) -> SpatialDataset:
    """``count`` axis-aligned ``side x side`` squares, positions uniform
    over the unit square (each square fully inside it)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 < side <= 1.0:
        raise ValueError("square side must be in (0, 1]")
    rng = np.random.default_rng(seed)
    xlo = rng.uniform(0.0, 1.0 - side, size=count)
    ylo = rng.uniform(0.0, 1.0 - side, size=count)
    entities = [
        Entity.from_geometry(eid, Rect(x, y, x + side, y + side))
        for eid, (x, y) in enumerate(zip(xlo, ylo))
    ]
    return SpatialDataset(
        name,
        entities,
        description=f"{count} uniformly distributed {side:.4g}-side squares",
    )


def uniform_squares_by_coverage(
    count: int, coverage: float, seed: int = 0, name: str = "uniform"
) -> SpatialDataset:
    """Uniform squares sized so total entity area / space area equals
    ``coverage`` (how the paper characterizes UN1=0.4, UN2=0.9,
    UN3=1.6 — Table 3)."""
    if count <= 0:
        raise ValueError("count must be positive")
    if coverage <= 0:
        raise ValueError("coverage must be positive")
    side = math.sqrt(coverage / count)
    if side > 1.0:
        raise ValueError("coverage too high for this count")
    return uniform_squares(count, side, seed=seed, name=name)
