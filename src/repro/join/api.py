"""Top-level public API: run a spatial join end to end.

Typical use::

    from repro import spatial_join, WithinDistance
    result = spatial_join(theaters, parking_lots,
                          algorithm="s3j",
                          predicate=WithinDistance(0.001),
                          refine=True)
    print(len(result.refined), "adjacent pairs")
    print(result.metrics.describe())
"""

from __future__ import annotations

import math
from typing import Any

import importlib

from repro.join.base import SpatialJoinAlgorithm
from repro.join.dataset import SpatialDataset
from repro.join.predicates import Intersects, JoinPredicate
from repro.join.result import JoinResult
from repro.obs import Observability
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.records import EntityDescriptorCodec

# Algorithms are resolved lazily (module path, class name) to keep the
# join framework importable from the algorithm modules themselves.
_ALGORITHMS: dict[str, tuple[str, str]] = {
    "s3j": ("repro.core.s3j", "SizeSeparationSpatialJoin"),
    "pbsm": ("repro.baselines.pbsm", "PartitionBasedSpatialMergeJoin"),
    "shj": ("repro.baselines.shj", "SpatialHashJoin"),
    "rtree": ("repro.baselines.rtree_join", "RTreeSpatialJoin"),
    "sweep": ("repro.baselines.sweep_join", "PlaneSweepJoin"),
}

DEFAULT_MEMORY_FRACTION = 0.10
"""Buffer pool sized at 10% of the combined input size, the paper's
default experimental setting (section 5)."""

EXECUTION_MODES = ("ledger", "memory")
"""``ledger`` runs the paper-faithful simulated-I/O model; ``memory``
runs the vectorized in-memory fast path (:mod:`repro.fastpath`)."""

_MEMORY_MODE_PARAMS = frozenset({"curve", "max_level", "cell_level"})


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`spatial_join` and :func:`make_algorithm`."""
    return tuple(sorted(_ALGORITHMS))


def make_algorithm(
    name: str, storage: StorageManager, **params: Any
) -> SpatialJoinAlgorithm:
    """Instantiate a join algorithm by name."""
    try:
        module_name, class_name = _ALGORITHMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {available_algorithms()}"
        ) from None
    cls = getattr(importlib.import_module(module_name), class_name)
    return cls(storage, **params)


def default_storage_config(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    page_size: int | None = None,
) -> StorageConfig:
    """A storage configuration with the paper's memory sizing: buffer
    space equal to ``memory_fraction`` of the combined input size.

    ``E`` (descriptors per page) is derived from the actual page size
    and the descriptor codec's record size, so the 10%-of-input sizing
    tracks non-default page sizes instead of assuming 4 KB pages.
    """
    if page_size is None:
        page_size = StorageConfig().page_size
    per_page = EntityDescriptorCodec().records_per_page(page_size)
    pages = math.ceil(len(dataset_a) / per_page) + math.ceil(
        len(dataset_b) / per_page
    )
    buffer_pages = max(16, math.ceil(memory_fraction * pages))
    return StorageConfig(page_size=page_size, buffer_pages=buffer_pages)


def spatial_join(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    algorithm: str = "s3j",
    predicate: JoinPredicate | None = None,
    storage: StorageManager | StorageConfig | None = None,
    refine: bool = False,
    obs: Observability | None = None,
    workers: int = 1,
    shard_level: int | None = None,
    planner: str | None = None,
    mode: str = "ledger",
    **params: Any,
) -> JoinResult:
    """Join two spatial data sets and return candidate (and optionally
    refined) pairs with full per-phase metrics.

    Passing the *same object* for both data sets runs a self join: the
    data set is joined against an identical copy of itself and mirrored
    pairs are canonicalized (section 5.2.1).

    ``mode`` selects the execution engine: ``"ledger"`` (default) runs
    the paper-faithful simulated-storage model; ``"memory"`` runs the
    vectorized in-memory fast path (:mod:`repro.fastpath`) — S3J only,
    no ``storage`` (there is nothing to simulate), same candidate pair
    set.  Memory mode accepts only the ``curve``, ``max_level``, and
    ``cell_level`` parameters.

    ``workers > 1`` (or an explicit ``shard_level``) runs the join
    sharded by Hilbert key range on that many worker processes (see
    :mod:`repro.parallel`); results and merged metrics are identical
    for every worker count.  Sharded runs build per-shard storage, so
    ``storage`` must then be a :class:`StorageConfig` or ``None``.
    ``planner`` selects the shard decomposition (``"two-layer"``, the
    default, or the legacy ``"residual"``) and is only meaningful on a
    sharded run.

    ``obs`` attaches an :class:`~repro.obs.Observability` (tracer +
    metrics registry) to the run; it is observation only and never
    changes a simulated ledger count.  An existing
    :class:`StorageManager` already carries its own observability, so
    passing both is a conflict and raises ``ValueError``.

    ``params`` are forwarded to the algorithm's constructor (e.g.
    ``tiles_per_dim=40`` for PBSM, ``dsb_level=8`` for S3J with
    filtering).
    """
    mode = (mode or "ledger").lower()
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"unknown mode {mode!r}; choose from {EXECUTION_MODES}"
        )
    # The CLI validates these, but the library entry point must too:
    # workers=0 or a negative count would otherwise slip past the
    # workers != 1 check below and fall into the sharded path.
    if not isinstance(workers, int) or workers < 1:
        raise ValueError(
            f"workers must be an int >= 1, got {workers!r}"
        )
    if shard_level is not None and (
        not isinstance(shard_level, int) or shard_level < 0
    ):
        raise ValueError(
            f"shard_level must be a non-negative int or None, got {shard_level!r}"
        )
    sharded = workers != 1 or shard_level is not None
    if planner is not None and not sharded:
        raise ValueError(
            "planner selects the shard decomposition; it needs a sharded "
            "run (workers > 1 or an explicit shard_level)"
        )
    if mode == "memory":
        if algorithm.lower() != "s3j":
            raise ValueError(
                "mode='memory' implements s3j only; "
                f"got algorithm {algorithm!r}"
            )
        if storage is not None:
            raise ValueError(
                "mode='memory' runs without storage simulation; "
                "storage must be None"
            )
        allowed = set(_MEMORY_MODE_PARAMS)
        if sharded:  # executor knobs consumed by parallel_spatial_join
            allowed |= {"partial_results", "shard_timeout_s", "shard_retries"}
        unknown = set(params) - allowed
        if unknown:
            raise ValueError(
                f"mode='memory' does not accept parameters {sorted(unknown)}; "
                f"supported: {sorted(allowed)}"
            )

    if sharded:
        from repro.parallel.executor import parallel_spatial_join
        from repro.parallel.planner import DEFAULT_PLANNER

        if isinstance(storage, StorageManager):
            raise ValueError(
                "a sharded join (workers/shard_level) builds one storage "
                "manager per shard; pass a StorageConfig instead"
            )
        return parallel_spatial_join(
            dataset_a,
            dataset_b,
            algorithm=algorithm,
            predicate=predicate,
            storage=storage,
            refine=refine,
            obs=obs,
            workers=workers,
            shard_level=shard_level,
            planner=planner or DEFAULT_PLANNER,
            mode=mode,
            **params,
        )

    if mode == "memory":
        from repro.fastpath import memory_spatial_join

        return memory_spatial_join(
            dataset_a,
            dataset_b,
            predicate=predicate,
            refine=refine,
            obs=obs,
            **params,
        )

    predicate = predicate or Intersects()
    self_join = dataset_a is dataset_b

    owns_storage = not isinstance(storage, StorageManager)
    if isinstance(storage, StorageManager):
        if obs is not None:
            raise ValueError(
                "pass obs either to spatial_join or to the StorageManager, "
                "not both"
            )
        manager = storage
    else:
        config = storage if isinstance(storage, StorageConfig) else None
        manager = StorageManager(
            config or default_storage_config(dataset_a, dataset_b), obs=obs
        )

    tracer = manager.obs.tracer
    try:
        with tracer.span(
            "spatial_join", algorithm=algorithm, self_join=self_join
        ) as root:
            # The "Hilbert values as part of the descriptors" option
            # (section 3.1) needs the keys materialized in the base data.
            curve = None
            if params.get("hilbert_precomputed"):
                from repro.curves.hilbert import HilbertCurve

                curve = params.get("curve") or HilbertCurve()

            # Per-manager numbering: the same workload gets the same
            # descriptor file names whether this is the process's first
            # join or its thousandth (byte-identical reports either way).
            uid = manager.next_sequence("input")
            with tracer.span("setup", kind="setup"):
                input_a = dataset_a.write_descriptors(
                    manager, f"input-A-{uid}", margin=predicate.mbr_margin, curve=curve
                )
                input_b = dataset_b.write_descriptors(
                    manager, f"input-B-{uid}", margin=predicate.mbr_margin, curve=curve
                )
                # Base data pre-exists the join: flush it and zero the
                # ledger so the metrics cover only the join's own work.
                manager.phase_boundary()
                manager.stats.reset()

            algo = make_algorithm(algorithm, manager, **params)
            result = algo.join(input_a, input_b, self_join=self_join)
            if refine:
                with tracer.span("refine", kind="refine"):
                    entities_a = dataset_a.entity_by_id()
                    entities_b = entities_a if self_join else dataset_b.entity_by_id()
                    result.refine(
                        predicate, entities_a, entities_b, stats=manager.stats
                    )
            root.set(candidate_pairs=len(result.pairs))
        return result
    finally:
        if owns_storage:
            manager.close()
