"""Tests for the `repro report` subcommand, the `--events` stream flag,
and the up-front artifact-path validation on `repro join`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.events import events_from_jsonl
from repro.obs.report import RunReport


@pytest.fixture(scope="module")
def sharded_report_path(tmp_path_factory):
    """One real 2-worker instrumented run, shared across render tests."""
    out = tmp_path_factory.mktemp("observatory")
    report_path = out / "run.report.json"
    events_path = out / "run.events.jsonl"
    code = main(
        [
            "join",
            "--workload", "UN1-UN2",
            "--scale", "0.02",
            "--workers", "2",
            "--report", str(report_path),
            "--events", str(events_path),
        ]
    )
    assert code == 0
    return report_path, events_path


class TestEventsFlag:
    def test_stream_file_written_and_in_schema(self, sharded_report_path):
        report_path, events_path = sharded_report_path
        # events_from_jsonl re-validates every line against the schema.
        streamed = events_from_jsonl(events_path.read_text())
        assert streamed
        types = [event["type"] for event in streamed]
        assert types[0] == "run_started"
        assert types[-1] == "run_completed"
        assert "shard_dispatched" in types
        assert "shard_completed" in types

    def test_stream_matches_report_events(self, sharded_report_path):
        report_path, events_path = sharded_report_path
        report = RunReport.load(str(report_path))
        streamed = events_from_jsonl(events_path.read_text())
        assert streamed == report.events

    def test_report_carries_straggler_analytics(self, sharded_report_path):
        report_path, _ = sharded_report_path
        report = RunReport.load(str(report_path))
        analytics = report.analytics
        assert analytics["workers"] == 2
        assert analytics["imbalance_factor"] >= 1.0
        assert analytics["shards"]

    def test_events_without_report_still_streams(self, tmp_path, capsys):
        events_path = tmp_path / "only.events.jsonl"
        assert main(
            [
                "join",
                "--workload", "UN1-UN2",
                "--scale", "0.02",
                "--events", str(events_path),
            ]
        ) == 0
        capsys.readouterr()
        streamed = events_from_jsonl(events_path.read_text())
        assert streamed[0]["type"] == "run_started"
        assert streamed[-1]["type"] == "run_completed"


class TestPathValidation:
    """Artifact-flag mistakes must fail fast with exit 2, before the
    join runs (satellite: `--trace` without `--report` misbehavior)."""

    def test_trace_to_stdout_rejected(self, capsys):
        assert main(["join", "--trace", "-"]) == 2
        err = capsys.readouterr().err
        assert "cannot write to stdout" in err

    def test_events_to_stdout_rejected(self, capsys):
        assert main(["join", "--events", "-"]) == 2
        assert "cannot write to stdout" in capsys.readouterr().err

    def test_missing_parent_directory_rejected(self, tmp_path, capsys):
        bad = tmp_path / "nope" / "run.trace.json"
        assert main(["join", "--trace", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "create it first" in err

    def test_directory_target_rejected(self, tmp_path, capsys):
        assert main(["join", "--report", str(tmp_path)]) == 2
        assert "is a directory" in capsys.readouterr().err

    def test_duplicate_paths_rejected(self, tmp_path, capsys):
        path = tmp_path / "same.json"
        assert main(
            ["join", "--report", str(path), "--trace", str(path)]
        ) == 2
        assert "give them distinct paths" in capsys.readouterr().err

    def test_trace_alone_to_file_works(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(
            [
                "join",
                "--workload", "UN1-UN2",
                "--scale", "0.02",
                "--trace", str(trace_path),
            ]
        ) == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]


class TestReportCommand:
    def test_terminal_render(self, sharded_report_path, capsys):
        report_path, _ = sharded_report_path
        assert main(["report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "s3j" in out
        assert "shard lanes" in out
        assert "imbalance factor" in out
        assert "critical path" in out
        # One Gantt lane per shard in the plan.
        report = RunReport.load(str(report_path))
        for lane in report.analytics["shards"]:
            assert lane["shard_id"] in out

    def test_json_summary(self, sharded_report_path, capsys):
        report_path, _ = sharded_report_path
        assert main(["report", str(report_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["algorithm"] == "s3j"
        assert summary["analytics"]["imbalance_factor"] >= 1.0

    def test_html_render(self, sharded_report_path, tmp_path, capsys):
        report_path, _ = sharded_report_path
        html_path = tmp_path / "run.html"
        assert main(
            ["report", str(report_path), "--html", str(html_path)]
        ) == 0
        capsys.readouterr()
        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "Shard Gantt lanes" in html
        assert "Span flame view" in html
        assert "imbalance factor" in html

    def test_serial_report_renders_without_analytics(self, tmp_path, capsys):
        report_path = tmp_path / "serial.report.json"
        assert main(
            [
                "join",
                "--workload", "UN1-UN2",
                "--scale", "0.02",
                "--report", str(report_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "s3j" in out

    def test_missing_file_exits_2(self, capsys):
        assert main(["report", "/no/such/report.json"]) == 2
        assert "no such report" in capsys.readouterr().err

    def test_non_report_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a report"}')
        assert main(["report", str(path)]) == 2
        assert "not a RunReport" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        assert main(["report", str(path)]) == 2
        assert "not a RunReport" in capsys.readouterr().err

    def test_html_missing_parent_exits_2(self, sharded_report_path, capsys):
        report_path, _ = sharded_report_path
        assert main(
            ["report", str(report_path), "--html", "/no/such/dir/out.html"]
        ) == 2
        assert "does not exist" in capsys.readouterr().err
