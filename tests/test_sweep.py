"""Tests for the shared plane-sweep module."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.iostats import IOStats
from repro.sweep.plane_sweep import sweep_intersections, sweep_self_intersections


def rec(eid, xlo, ylo, xhi, yhi):
    return (eid, xlo, ylo, xhi, yhi, 0)


def brute(left, right):
    found = set()
    for a in left:
        for b in right:
            if (
                a[1] <= b[3]
                and b[1] <= a[3]
                and a[2] <= b[4]
                and b[2] <= a[4]
            ):
                found.add((a[0], b[0]))
    return found


def random_records(rng, count, start_eid=0, max_side=0.3):
    records = []
    for i in range(count):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1)
        w = rng.uniform(0, max_side)
        h = rng.uniform(0, max_side)
        records.append(rec(start_eid + i, x, y, min(1, x + w), min(1, y + h)))
    return records


class TestSweep:
    def test_empty_inputs(self):
        assert list(sweep_intersections([], [])) == []
        assert list(sweep_intersections([rec(1, 0, 0, 1, 1)], [])) == []

    def test_single_pair(self):
        a = [rec(1, 0.0, 0.0, 0.5, 0.5)]
        b = [rec(2, 0.4, 0.4, 1.0, 1.0)]
        assert [(x[0], y[0]) for x, y in sweep_intersections(a, b)] == [(1, 2)]

    def test_orientation_preserved(self):
        """First element of each yielded pair comes from ``left``."""
        a = [rec(1, 0.5, 0.5, 0.6, 0.6)]
        b = [rec(2, 0.0, 0.0, 1.0, 1.0)]  # b starts before a
        pairs = list(sweep_intersections(a, b))
        assert pairs[0][0][0] == 1 and pairs[0][1][0] == 2

    def test_touching_edges_match(self):
        a = [rec(1, 0.0, 0.0, 0.5, 1.0)]
        b = [rec(2, 0.5, 0.0, 1.0, 1.0)]
        assert len(list(sweep_intersections(a, b))) == 1

    def test_y_disjoint_filtered(self):
        a = [rec(1, 0.0, 0.0, 1.0, 0.2)]
        b = [rec(2, 0.0, 0.5, 1.0, 1.0)]
        assert list(sweep_intersections(a, b)) == []

    def test_matches_brute_force_random(self):
        rng = random.Random(1)
        a = random_records(rng, 120)
        b = random_records(rng, 150, start_eid=1000)
        found = {(x[0], y[0]) for x, y in sweep_intersections(a, b)}
        assert found == brute(a, b)

    def test_no_duplicate_reports(self):
        rng = random.Random(2)
        a = random_records(rng, 100)
        b = random_records(rng, 100, start_eid=1000)
        reported = [(x[0], y[0]) for x, y in sweep_intersections(a, b)]
        assert len(reported) == len(set(reported))

    def test_identical_rectangles_both_sides(self):
        a = [rec(i, 0.2, 0.2, 0.4, 0.4) for i in range(5)]
        b = [rec(100 + i, 0.2, 0.2, 0.4, 0.4) for i in range(5)]
        assert len(list(sweep_intersections(a, b))) == 25

    def test_presorted_inputs(self):
        rng = random.Random(3)
        a = sorted(random_records(rng, 80), key=lambda r: r[1])
        b = sorted(random_records(rng, 80, start_eid=500), key=lambda r: r[1])
        found = {(x[0], y[0]) for x, y in sweep_intersections(a, b, presorted=True)}
        assert found == brute(a, b)

    def test_charges_cpu(self):
        stats = IOStats()
        rng = random.Random(4)
        a = random_records(rng, 50)
        b = random_records(rng, 50, start_eid=500)
        list(sweep_intersections(a, b, stats=stats))
        assert stats.total.cpu_ops.get("mbr_test", 0) > 0
        assert stats.total.cpu_ops.get("compare", 0) > 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute(self, seed):
        rng = random.Random(seed)
        a = random_records(rng, rng.randrange(0, 60))
        b = random_records(rng, rng.randrange(0, 60), start_eid=1000)
        found = {(x[0], y[0]) for x, y in sweep_intersections(a, b)}
        assert found == brute(a, b)


class TestSelfSweep:
    def test_excludes_self_pairs(self):
        records = [rec(1, 0, 0, 1, 1)]
        assert list(sweep_self_intersections(records)) == []

    def test_each_pair_once(self):
        records = [rec(i, 0.2, 0.2, 0.4, 0.4) for i in range(4)]
        pairs = [
            frozenset((a[0], b[0]))
            for a, b in sweep_self_intersections(records)
        ]
        assert len(pairs) == 6
        assert len(set(pairs)) == 6

    def test_matches_brute_force(self):
        rng = random.Random(9)
        records = random_records(rng, 150)
        expected = {
            frozenset((a[0], b[0]))
            for i, a in enumerate(records)
            for b in records[i + 1 :]
            if a[1] <= b[3] and b[1] <= a[3] and a[2] <= b[4] and b[2] <= a[4]
        }
        found = {
            frozenset((a[0], b[0]))
            for a, b in sweep_self_intersections(records)
        }
        assert found == expected
