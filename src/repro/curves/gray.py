"""The Gray-code curve.

Cells are visited in the order of their rank within the binary-reflected
Gray code sequence of their interleaved coordinates — the third curve
family the paper lists as usable by S3J.  Because the inverse Gray
transform is prefix-preserving (each output bit depends only on input
bits at or above it), the curve keeps the nesting/prefix property the
synchronized scan requires.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.curves.zorder import deinterleave_bits, interleave_bits


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


def gray_decode(value: int) -> int:
    """Rank of the Gray codeword ``value`` (inverse of :func:`gray_encode`)."""
    shift = 1
    while (value >> shift) > 0:
        value ^= value >> shift
        shift <<= 1
    return value


class GrayCurve(SpaceFillingCurve):
    """2-D Gray-code curve of the given order (bits per dimension)."""

    name = "gray"

    def key(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"({x}, {y}) outside the {self.side}^2 grid")
        return gray_decode(interleave_bits(x, y, self.order))

    def point(self, key: int) -> tuple[int, int]:
        if not 0 <= key <= self.max_key:
            raise ValueError(f"key {key} outside [0, {self.max_key}]")
        return deinterleave_bits(gray_encode(key), self.order)

    def keys(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        from repro.curves.zorder import ZOrderCurve

        morton = ZOrderCurve(self.order).keys(xs, ys)
        value = morton.astype(np.uint64)
        shift = np.uint64(1)
        while int(shift) < 2 * self.order:
            value ^= value >> shift
            shift <<= np.uint64(1)
        return value.astype(np.int64)
