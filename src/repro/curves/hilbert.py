"""The Hilbert space-filling curve.

This is the curve the paper's prototype uses; the authors report a
"table driven routine" computing one value in under 10 microseconds at
maximum precision.  Here the scalar mapping is the classic quadrant
rotate-and-recurse algorithm, and :meth:`HilbertCurve.keys` is a
vectorized NumPy equivalent used by the data generators and
partitioners (the per-value CPU cost the paper measures is modeled by
:class:`repro.storage.costs.CpuModel`, not by Python wall-clock).
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve


class HilbertCurve(SpaceFillingCurve):
    """2-D Hilbert curve of the given order (bits per dimension)."""

    name = "hilbert"

    def key(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"({x}, {y}) outside the {self.side}^2 grid")
        d = 0
        s = self.side >> 1
        while s > 0:
            rx = 1 if x & s else 0
            ry = 1 if y & s else 0
            d += s * s * ((3 * rx) ^ ry)
            # Keep only the bits below s, then rotate the quadrant so the
            # recursion always sees the canonical sub-curve orientation.
            x &= s - 1
            y &= s - 1
            if ry == 0:
                if rx == 1:
                    x = s - 1 - x
                    y = s - 1 - y
                x, y = y, x
            s >>= 1
        return d

    def point(self, key: int) -> tuple[int, int]:
        if not 0 <= key <= self.max_key:
            raise ValueError(f"key {key} outside [0, {self.max_key}]")
        x = y = 0
        t = key
        s = 1
        while s < self.side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            if ry == 0:
                if rx == 1:
                    x = s - 1 - x
                    y = s - 1 - y
                x, y = y, x
            x += s * rx
            y += s * ry
            t //= 4
            s <<= 1
        return x, y

    def keys(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        x = np.asarray(xs, dtype=np.int64).copy()
        y = np.asarray(ys, dtype=np.int64).copy()
        if x.shape != y.shape:
            raise ValueError("xs and ys must have the same shape")
        d = np.zeros(x.shape, dtype=np.int64)
        s = self.side >> 1
        while s > 0:
            rx = ((x & s) > 0).astype(np.int64)
            ry = ((y & s) > 0).astype(np.int64)
            d += s * s * ((3 * rx) ^ ry)
            x &= s - 1
            y &= s - 1
            flip = (ry == 0) & (rx == 1)
            x = np.where(flip, s - 1 - x, x)
            y = np.where(flip, s - 1 - y, y)
            swap = ry == 0
            x, y = np.where(swap, y, x), np.where(swap, x, y)
            s >>= 1
        return d
