"""Geometric primitives and exact predicates.

This subpackage provides the geometry substrate used by every join
algorithm in the library:

- :class:`~repro.geometry.rect.Rect` — axis-aligned rectangles, the
  Minimum Bounding Rectangle (MBR) approximation the paper's *filter
  step* operates on.
- :class:`~repro.geometry.shapes.Point`,
  :class:`~repro.geometry.shapes.Segment`,
  :class:`~repro.geometry.shapes.Polygon` — exact geometry payloads used
  by the *refinement step*.
- :class:`~repro.geometry.entity.Entity` — a spatial entity: an id, an
  MBR, and an optional exact geometry.
- :mod:`~repro.geometry.predicates` — exact predicate evaluation
  (intersects, within-distance) on geometry payloads.
"""

from repro.geometry.entity import Entity
from repro.geometry.predicates import (
    geometries_intersect,
    geometries_within_distance,
    refine_pair,
)
from repro.geometry.rect import Rect
from repro.geometry.shapes import Point, Polygon, Segment

__all__ = [
    "Entity",
    "Point",
    "Polygon",
    "Rect",
    "Segment",
    "geometries_intersect",
    "geometries_within_distance",
    "refine_pair",
]
