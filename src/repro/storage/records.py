"""Record codecs: fixed-size serialization of records into pages.

Pages hold fixed-size records; a codec defines the record width (which
fixes ``E``, the number of object descriptor entries per page — Table 1
of the paper) and, for the file-backed backend, the byte encoding.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Any


class RecordCodec(ABC):
    """Serialize/deserialize one fixed-size record."""

    @property
    @abstractmethod
    def record_size(self) -> int:
        """Record width in bytes."""

    @abstractmethod
    def encode(self, record: tuple[Any, ...]) -> bytes:
        """Pack one record into exactly ``record_size`` bytes."""

    @abstractmethod
    def decode(self, data: bytes) -> tuple[Any, ...]:
        """Unpack one record from exactly ``record_size`` bytes."""

    def records_per_page(self, page_size: int) -> int:
        """``E`` — how many records fit in one page."""
        capacity = page_size // self.record_size
        if capacity < 1:
            raise ValueError(
                f"page size {page_size} cannot hold a {self.record_size}-byte record"
            )
        return capacity


class StructCodec(RecordCodec):
    """A codec driven by a :mod:`struct` format string."""

    def __init__(self, fmt: str) -> None:
        self._struct = struct.Struct(fmt)

    @property
    def record_size(self) -> int:
        return self._struct.size

    def encode(self, record: tuple[Any, ...]) -> bytes:
        return self._struct.pack(*record)

    def decode(self, data: bytes) -> tuple[Any, ...]:
        return self._struct.unpack(data)


class EntityDescriptorCodec(StructCodec):
    """The paper's entity descriptor (section 3.1): "the corner points
    of the MBR, the Hilbert value of the midpoint of the MBR and (a
    pointer to) the data associated with the entity".

    Layout (48 bytes, little-endian):

    ==========  =======  =========================================
    field       type     meaning
    ==========  =======  =========================================
    eid         int64    pointer to the entity's data
    xlo ylo     float64  lower-left MBR corner
    xhi yhi     float64  upper-right MBR corner
    hilbert     uint64   curve key of the MBR center
    ==========  =======  =========================================

    With the default 4 KB page this gives ``E = 85`` descriptors per
    page.
    """

    FIELDS = ("eid", "xlo", "ylo", "xhi", "yhi", "hilbert")

    def __init__(self) -> None:
        super().__init__("<qddddQ")


class CandidatePairCodec(StructCodec):
    """A candidate join pair: the two entity ids (16 bytes).

    Used for join-result files (the paper's ``J``) and PBSM's
    pre-duplicate-elimination candidate list (``C``).
    """

    FIELDS = ("eid_a", "eid_b")

    def __init__(self) -> None:
        super().__init__("<qq")


# Field positions within an entity-descriptor record, shared by the
# partitioners, the plane-sweep module, and the join algorithms.
EID, XLO, YLO, XHI, YHI, HKEY = range(6)
