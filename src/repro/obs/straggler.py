"""Straggler analytics: load balance computed from the event stream.

Tsitsigkos & Mamoulis (PAPERS.md, 1908.11740) show parallel in-memory
spatial joins live or die by per-partition load balance, and this
repository's planner has a known straggler by construction: the
residual shard of large entities.  This module turns the execution
event stream (:mod:`repro.obs.events`) into the numbers that make that
visible per run:

- the **per-shard duration distribution** (count / mean / exact
  p50 / p95 / p99 / max, via :class:`~repro.obs.metrics.Histogram`);
- the **imbalance factor** — longest shard over mean shard duration,
  the standard makespan-imbalance measure (1.0 = perfectly balanced;
  with ``W`` workers, the run cannot scale past ``shards / imbalance``
  of ideal speedup);
- the **record imbalance factor** — the same max-over-mean ratio on
  per-shard *input records*, a wall-clock-free balance measure that is
  deterministic across hosts and worker counts (durations wobble with
  scheduling; record counts are a pure function of the plan);
- the **residual share** — the residual shards' fraction of total
  shard work, the specific straggler the two-layer shard planner
  (:mod:`repro.parallel.planner`) kills by construction: a two-layer
  run reports 0.0 because no residual shard exists in its plan;
- the **critical path** — the longest shard and its per-phase wall
  breakdown, i.e. where the makespan actually went;
- **Gantt lanes** — per-shard ``(start, duration)`` on the run's
  relative timeline, the input to ``repro report``'s shard lanes.

Analytics are derived purely from events — they never touch the ledger
or the metrics registry, so they can never perturb a simulated number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import Histogram


@dataclass
class ShardLane:
    """One shard's timeline lane, relative to the run's first event."""

    shard_id: str
    kind: str
    start_s: float
    wall_s: float
    attempts: int = 1
    pairs: int | None = None
    records: int | None = None
    phase_wall: dict[str, float] = field(default_factory=dict)
    failed: bool = False

    @property
    def end_s(self) -> float:
        return self.start_s + self.wall_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "attempts": self.attempts,
            "pairs": self.pairs,
            "records": self.records,
            "phase_wall": dict(self.phase_wall),
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ShardLane:
        return cls(
            shard_id=data["shard_id"],
            kind=data["kind"],
            start_s=float(data["start_s"]),
            wall_s=float(data["wall_s"]),
            attempts=int(data.get("attempts", 1)),
            pairs=data.get("pairs"),
            records=data.get("records"),
            phase_wall={
                k: float(v) for k, v in (data.get("phase_wall") or {}).items()
            },
            failed=bool(data.get("failed", False)),
        )


@dataclass
class StragglerAnalytics:
    """Load-balance analytics for one run, JSON round-trippable."""

    lanes: list[ShardLane] = field(default_factory=list)
    makespan_s: float = 0.0
    total_shard_s: float = 0.0
    imbalance_factor: float | None = None
    record_imbalance_factor: float | None = None
    residual_share: float | None = None
    planner: str | None = None
    critical_path: dict[str, Any] | None = None
    duration_percentiles: dict[str, float | None] = field(default_factory=dict)
    workers: int | None = None
    parallel_efficiency: float | None = None
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    progress_events: int = 0
    heartbeats: int = 0

    @property
    def shard_count(self) -> int:
        return len(self.lanes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": [lane.to_dict() for lane in self.lanes],
            "makespan_s": self.makespan_s,
            "total_shard_s": self.total_shard_s,
            "imbalance_factor": self.imbalance_factor,
            "record_imbalance_factor": self.record_imbalance_factor,
            "residual_share": self.residual_share,
            "planner": self.planner,
            "critical_path": self.critical_path,
            "duration_percentiles": dict(self.duration_percentiles),
            "workers": self.workers,
            "parallel_efficiency": self.parallel_efficiency,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "progress_events": self.progress_events,
            "heartbeats": self.heartbeats,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> StragglerAnalytics:
        return cls(
            lanes=[ShardLane.from_dict(d) for d in data.get("shards", [])],
            makespan_s=float(data.get("makespan_s", 0.0)),
            total_shard_s=float(data.get("total_shard_s", 0.0)),
            imbalance_factor=data.get("imbalance_factor"),
            record_imbalance_factor=data.get("record_imbalance_factor"),
            residual_share=data.get("residual_share"),
            planner=data.get("planner"),
            critical_path=data.get("critical_path"),
            duration_percentiles=dict(data.get("duration_percentiles", {})),
            workers=data.get("workers"),
            parallel_efficiency=data.get("parallel_efficiency"),
            retries=int(data.get("retries", 0)),
            timeouts=int(data.get("timeouts", 0)),
            failures=int(data.get("failures", 0)),
            progress_events=int(data.get("progress_events", 0)),
            heartbeats=int(data.get("heartbeats", 0)),
        )


def analyze_events(events: list[dict[str, Any]]) -> StragglerAnalytics:
    """Compute :class:`StragglerAnalytics` from an event stream.

    Tolerates partial streams: a shard with a ``shard_dispatched`` but
    no ``shard_completed`` (failed or still running) gets a zero-length
    lane flagged ``failed`` when a ``shard_failed`` event names it.
    Serial (un-sharded) runs produce no shard events and come back as
    an empty analytics object — callers render phases only.
    """
    analytics = StragglerAnalytics()
    if not events:
        return analytics
    epoch = min(event["ts"] for event in events)

    dispatched: dict[str, dict[str, Any]] = {}
    first_worker_ts: dict[str, float] = {}
    completed: dict[str, dict[str, Any]] = {}
    attempts: dict[str, int] = {}
    failed: set[str] = set()

    for event in events:
        kind = event["type"]
        shard_id = event.get("shard_id")
        if kind == "run_started":
            analytics.workers = event.get("workers", analytics.workers)
            analytics.planner = event.get("planner", analytics.planner)
        elif kind == "shard_dispatched":
            dispatched.setdefault(shard_id, event)
            attempts[shard_id] = max(
                attempts.get(shard_id, 0), int(event.get("attempt", 1))
            )
        elif kind in ("shard_progress", "shard_heartbeat"):
            if kind == "shard_progress":
                analytics.progress_events += 1
            else:
                analytics.heartbeats += 1
            if shard_id is not None:
                ts = float(event["ts"])
                if shard_id not in first_worker_ts or ts < first_worker_ts[shard_id]:
                    first_worker_ts[shard_id] = ts
        elif kind == "shard_completed":
            completed[shard_id] = event
        elif kind == "shard_retry":
            analytics.retries += 1
        elif kind == "shard_timed_out":
            analytics.timeouts += 1
        elif kind == "shard_failed":
            analytics.failures += 1
            if shard_id is not None:
                failed.add(shard_id)

    durations = Histogram()
    lane_order = list(dispatched)
    for shard_id in completed:
        if shard_id not in dispatched:
            lane_order.append(shard_id)
    for shard_id in lane_order:
        done = completed.get(shard_id)
        origin = dispatched.get(shard_id, done)
        start_ts = first_worker_ts.get(
            shard_id, float(origin["ts"]) if origin else epoch
        )
        wall_s = float(done.get("wall_s", 0.0)) if done else 0.0
        lane = ShardLane(
            shard_id=shard_id,
            kind=(origin or {}).get("kind", "cell"),
            start_s=start_ts - epoch,
            wall_s=wall_s,
            attempts=attempts.get(shard_id, 1),
            pairs=done.get("pairs") if done else None,
            records=(origin or {}).get("records"),
            phase_wall={
                k: float(v)
                for k, v in ((done or {}).get("phase_wall") or {}).items()
            },
            failed=shard_id in failed and done is None,
        )
        analytics.lanes.append(lane)
        if done is not None:
            durations.observe(wall_s)

    if analytics.lanes:
        analytics.makespan_s = max(lane.end_s for lane in analytics.lanes) - min(
            lane.start_s for lane in analytics.lanes
        )
        analytics.total_shard_s = durations.total
        if durations.count and durations.mean > 0:
            analytics.imbalance_factor = (durations.max or 0.0) / durations.mean
        record_counts = [
            lane.records for lane in analytics.lanes if lane.records
        ]
        if record_counts:
            mean_records = sum(record_counts) / len(record_counts)
            if mean_records > 0:
                analytics.record_imbalance_factor = (
                    max(record_counts) / mean_records
                )
        residual_s = sum(
            lane.wall_s for lane in analytics.lanes if "residual" in lane.kind
        )
        if durations.total > 0:
            analytics.residual_share = residual_s / durations.total
        analytics.duration_percentiles = {
            "p50": durations.quantile(0.50),
            "p95": durations.quantile(0.95),
            "p99": durations.quantile(0.99),
            "max": durations.max,
            "mean": durations.mean or None,
        }
        slowest = max(
            (lane for lane in analytics.lanes if not lane.failed),
            key=lambda lane: lane.wall_s,
            default=None,
        )
        if slowest is not None and slowest.wall_s > 0:
            analytics.critical_path = {
                "shard_id": slowest.shard_id,
                "kind": slowest.kind,
                "wall_s": slowest.wall_s,
                "share_of_total": (
                    slowest.wall_s / durations.total if durations.total else None
                ),
                "phase_wall": dict(slowest.phase_wall),
            }
        if analytics.workers and analytics.makespan_s > 0:
            analytics.parallel_efficiency = min(
                1.0,
                analytics.total_shard_s
                / (analytics.makespan_s * analytics.workers),
            )
    return analytics
