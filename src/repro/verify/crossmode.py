"""Cross-mode parity: ledger mode and memory mode must agree exactly.

The two execution engines share nothing below :func:`spatial_join` —
the ledger mode scans simulated pages, the memory mode sweeps columnar
arrays — so identical pair sets across them is strong differential
evidence.  :func:`run_cross_mode` sweeps the verification workload
catalog and requires, per case:

- ledger-mode and memory-mode candidate pair sets identical, at every
  requested worker count (serial and Hilbert-sharded execution) and —
  on sharded runs — under *both* shard planners (the two-layer
  class-based decomposition and the legacy cells + residual one);
- both equal to the brute-force oracle on the case's expanded boxes;
- refined pair sets (the exact-predicate step) identical across modes.

This is the gate behind ``repro verify --cross-mode`` and the CI
fastpath job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.join.api import spatial_join
from repro.parallel.planner import PLANNERS
from repro.verify.cases import VerifyCase
from repro.verify.oracle import oracle_for_case
from repro.verify.workloads import default_cases

Progress = Callable[[str], None]

DEFAULT_WORKER_COUNTS = (1, 2)


@dataclass
class CrossModeMismatch:
    """One disagreement between execution modes (or with the oracle)."""

    case: str
    run: str
    kind: str  # "pairs" or "refined"
    expected: int
    got: int
    missing: int
    extra: int

    def describe(self) -> str:
        return (
            f"[cross-mode] {self.run} on {self.case}: {self.kind} set has "
            f"{self.got} pairs, expected {self.expected} "
            f"({self.missing} missing, {self.extra} extra)"
        )


@dataclass
class CrossModeReport:
    """Outcome of one cross-mode parity sweep."""

    cases: list[str] = field(default_factory=list)
    worker_counts: list[int] = field(default_factory=list)
    runs: int = 0
    pairs_checked: int = 0
    mismatches: list[CrossModeMismatch] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        lines = [
            f"cross-mode: {len(self.cases)} workloads x "
            f"workers {self.worker_counts} x 2 modes x planners = "
            f"{self.runs} runs in {self.elapsed_s:.1f}s",
            f"  workloads : {', '.join(self.cases)}",
            f"  pair sets : {self.pairs_checked} pairs compared",
        ]
        if self.ok:
            lines.append(
                "  PASS: ledger mode and memory mode agree with each other "
                "and the oracle on every run"
            )
        else:
            lines.append(f"  FAIL: {len(self.mismatches)} mismatch(es)")
            lines.extend("  - " + m.describe() for m in self.mismatches)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "cases": self.cases,
            "worker_counts": self.worker_counts,
            "runs": self.runs,
            "pairs_checked": self.pairs_checked,
            "mismatches": [m.describe() for m in self.mismatches],
            "elapsed_s": round(self.elapsed_s, 3),
        }


def _compare(
    report: CrossModeReport,
    case: VerifyCase,
    run: str,
    kind: str,
    expected: frozenset,
    got: frozenset,
) -> None:
    if got != expected:
        report.mismatches.append(
            CrossModeMismatch(
                case=case.name,
                run=run,
                kind=kind,
                expected=len(expected),
                got=len(got),
                missing=len(expected - got),
                extra=len(got - expected),
            )
        )


def run_cross_mode(
    cases: list[VerifyCase] | None = None,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    refine: bool = True,
    seed: int = 0,
    progress: Progress | None = None,
) -> CrossModeReport:
    """Sweep the oracle suite through both execution modes and diff.

    Every case runs in ledger mode and memory mode at each worker
    count; all pair sets must equal the case's brute-force oracle, and
    when ``refine`` is set the refined sets must match across modes
    (the oracle covers the filter step only, so refined sets are
    compared mode-to-mode).
    """
    say = progress or (lambda message: None)
    started = time.monotonic()
    if cases is None:
        cases = default_cases(quick=False, seed=seed)
    report = CrossModeReport(
        cases=[case.name for case in cases],
        worker_counts=list(worker_counts),
    )
    for case in cases:
        say(f"case {case.describe()}")
        expected = oracle_for_case(case)
        report.pairs_checked += len(expected)
        refined_sets: dict[str, frozenset] = {}
        for workers in worker_counts:
            # Serial runs have no shard plan; sharded runs must agree
            # under every selectable planner.
            planners = (None,) if workers == 1 else PLANNERS
            for mode in ("ledger", "memory"):
                for planner in planners:
                    run = f"{mode}@{workers}w"
                    if planner is not None:
                        run = f"{run}:{planner}"
                    result = spatial_join(
                        case.dataset_a,
                        case.dataset_b,
                        algorithm="s3j",
                        predicate=case.predicate,
                        workers=workers,
                        planner=planner,
                        mode=mode,
                        refine=refine,
                    )
                    report.runs += 1
                    _compare(report, case, run, "pairs", expected, result.pairs)
                    if refine and result.refined is not None:
                        refined_sets[run] = result.refined
        if refine and refined_sets:
            runs = sorted(refined_sets)
            reference_run = runs[0]
            reference = refined_sets[reference_run]
            for run in runs[1:]:
                _compare(
                    report,
                    case,
                    f"{run} vs {reference_run}",
                    "refined",
                    reference,
                    refined_sets[run],
                )
    report.elapsed_s = time.monotonic() - started
    return report
