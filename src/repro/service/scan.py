"""The live synchronized self-scan: S3J's join phase over merged streams.

The batch join (:mod:`repro.core.sync_scan`) merges the *pages* of
sorted level files.  The service joins the *live* view of its index —
each level's base file merged with its in-memory delta minus tombstones
— so there is no page grid to walk; instead the merged per-level record
streams are cut into fixed-size **chunks** that play the role pages
play in the batch scan.

The correctness argument is the batch scan's, restated for chunks.  An
entity's interval is its Hilbert key truncated to its level's cell
(``2*(order-level)`` low bits zeroed); intervals of different levels
are nested or disjoint, so two entities can intersect only if one
interval contains the other.  Say ``Ix`` is contained in ``Iy``.  A
chunk's ``start`` is its first record's interval start (streams are
Hilbert-sorted, so ``chunk.start <= start of every member``) and its
``max_end`` covers its last member's interval, hence every member's.
If the two entities share a chunk, the chunk's self-sweep reports them.
Otherwise whichever chunk arrives second in the merge (larger
``start``) finds the other still open: with ``start_y <= start_x <
end_x <= end_y``, y's chunk satisfies ``max_end >= end_y > start_x >=
chunk_x.start`` and x's chunk satisfies ``max_end >= end_x > start_x >=
start_y >= chunk_y.start`` — strictly above the arriving chunk's
``start`` either way, and chunks are only expired when ``max_end <=
start``.  So every intersecting pair is swept exactly once.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.storage.backend import Record
from repro.storage.costs import sort_comparison_count
from repro.storage.iostats import IOStats
from repro.storage.records import HKEY, XLO
from repro.sweep.plane_sweep import sweep_intersections, sweep_self_intersections

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

PairSink = Callable[[Record, Record], None]

DEFAULT_CHUNK_RECORDS = 85
"""Records per scan chunk — the descriptor capacity ``E`` of a default
4 KB page, so a chunk models one page of the batch scan."""


def live_self_scan(
    streams: dict[int, Iterable[Record]],
    order: int,
    on_pair: PairSink,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    stats: IOStats | None = None,
    metrics: MetricsRegistry | None = None,
) -> int:
    """Self-join the live index: report every MBR-intersecting pair of
    distinct entities to ``on_pair`` (each unordered pair at least once;
    callers canonicalize).

    ``streams`` maps level -> Hilbert-sorted live record stream;
    ``order`` is the curve order of the stored Hilbert keys.  Returns
    the number of chunks processed.
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    chunked = [
        _chunk_stream(stream, level, order, chunk_records, stats)
        for level, stream in streams.items()
    ]
    # Open chunks: (max interval end, x-sorted records, level).
    open_chunks: list[tuple[int, list[Record], int]] = []
    processed = 0
    for start, tiebreak, max_end, records in heapq.merge(*chunked):
        if any(end <= start for end, _, _ in open_chunks):
            open_chunks[:] = [item for item in open_chunks if item[0] > start]
        level = tiebreak[0]
        if metrics is not None:
            metrics.count("service.scan.chunks", level=level)
            metrics.observe("service.scan.open_chunks", len(open_chunks))
        for _, other_records, other_level in open_chunks:
            if metrics is not None:
                metrics.count(
                    "service.scan.level_sweeps", a=level, b=other_level
                )
            for rec_a, rec_b in sweep_intersections(
                records, other_records, stats=stats, presorted=True
            ):
                on_pair(rec_a, rec_b)
        for rec_a, rec_b in sweep_self_intersections(
            records, stats=stats, presorted=True
        ):
            on_pair(rec_a, rec_b)
        open_chunks.append((max_end, records, level))
        processed += 1
    return processed


def _chunk_stream(
    stream: Iterable[Record],
    level: int,
    order: int,
    chunk_records: int,
    stats: IOStats | None,
) -> Iterator[tuple[int, tuple[int, int], int, list[Record]]]:
    """Yield ``(start, tiebreak, max_end, x-sorted records)`` per chunk.

    Mirrors the batch scan's ``_page_stream``: interval truncation to
    the level's cell, start from the first record, max_end from the
    last, one x-sort per chunk (charged to the ledger like the batch
    scan charges its per-page sort).
    """
    shift = 2 * (order - level)
    size = 1 << shift
    chunk: list[Record] = []
    chunk_no = 0
    for record in stream:
        chunk.append(record)
        if len(chunk) >= chunk_records:
            yield _finish_chunk(chunk, level, chunk_no, shift, size, stats)
            chunk = []
            chunk_no += 1
    if chunk:
        yield _finish_chunk(chunk, level, chunk_no, shift, size, stats)


def _finish_chunk(
    chunk: list[Record],
    level: int,
    chunk_no: int,
    shift: int,
    size: int,
    stats: IOStats | None,
) -> tuple[int, tuple[int, int], int, list[Record]]:
    start = (chunk[0][HKEY] >> shift) << shift
    max_end = ((chunk[-1][HKEY] >> shift) << shift) + size
    chunk.sort(key=lambda record: record[XLO])
    if stats is not None:
        stats.charge_cpu("compare", sort_comparison_count(len(chunk)))
    return start, (level, chunk_no), max_end, chunk
