"""Forward plane sweep as a registered algorithm.

The simplest exact join in the library: read both descriptor files
whole, sort by ``xlo``, and run the classic forward sweep
(:mod:`repro.sweep.plane_sweep`) over the two lists.  No partitioning,
no replication, no space-filling curves — which is exactly what makes
it a good differential reference for everything that has them.

Phases:

1. **sort** — scan both inputs (paged reads) and x-sort them,
   charging the usual ``n log n`` comparison count.
2. **join** — one forward sweep over the sorted lists.

The sweep holds both data sets in memory, so unlike S3J/PBSM/SHJ it
does not scale past memory; within the verification workload sizes it
is the fastest way to an exact answer that shares only the sweep
kernel with the candidates under test.
"""

from __future__ import annotations

from repro.join.base import SpatialJoinAlgorithm
from repro.join.metrics import JoinMetrics
from repro.storage.backend import Record
from repro.storage.costs import sort_comparison_count
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, XLO, CandidatePairCodec
from repro.sweep.plane_sweep import sweep_intersections


class PlaneSweepJoin(SpatialJoinAlgorithm):
    """Whole-input forward plane sweep."""

    name = "sweep"
    phase_names = ("sort", "join")

    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        stats = self.storage.stats
        tracer = self.obs.tracer

        with self._phase("sort"):
            with tracer.span("read-sort:A", side="A"):
                records_a = self._read_sorted(input_a)
            with tracer.span("read-sort:B", side="B"):
                records_b = self._read_sorted(input_b)
            self.storage.phase_boundary()

        pairs: set[tuple[int, int]] = set()
        result = self.storage.create_file(
            self._file_name("result"), CandidatePairCodec()
        )
        with self._phase("join"):
            with tracer.span("sweep") as span:
                for rec_a, rec_b in sweep_intersections(
                    records_a, records_b, stats=stats, presorted=True
                ):
                    pair = (rec_a[EID], rec_b[EID])
                    pairs.add(pair)
                    result.append(pair)
                span.set(pairs=len(pairs))
            self.storage.phase_boundary()

        metrics = self._build_metrics(result_pages=result.num_pages)
        metrics.replication_a = 1.0
        metrics.replication_b = 1.0
        return pairs, metrics

    def _read_sorted(self, source: PagedFile) -> list[Record]:
        records = sorted(source.scan(), key=lambda record: record[XLO])
        self.storage.stats.charge_cpu(
            "compare", sort_comparison_count(len(records))
        )
        return records
