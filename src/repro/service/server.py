"""The JSON-lines TCP server fronting one :class:`JoinService`.

Protocol: one JSON object per line in, one JSON object per line out.

Requests::

    {"op": "point",  "x": 0.5, "y": 0.5}
    {"op": "window", "xlo": 0.1, "ylo": 0.1, "xhi": 0.4, "yhi": 0.4}
    {"op": "join"}
    {"op": "insert", "eid": 7, "xlo": ..., "ylo": ..., "xhi": ..., "yhi": ...}
    {"op": "delete", "eid": 7}
    {"op": "stats"}

Responses mirror :meth:`QueryOutcome.to_dict` for queries, or
``{"ok": true, "epoch": N}`` for mutations; a malformed or unknown
request gets ``{"error": ...}`` and the connection stays up.  One
connection may pipeline any number of requests; requests on a single
connection are answered in order.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.service.api import JoinService


class ServiceServer:
    """An asyncio TCP server speaking the JSON-lines protocol."""

    def __init__(
        self, service: JoinService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` after start."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Start the service (compactor included) and bind the socket."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "point":
                outcome = await self.service.point(
                    float(request["x"]), float(request["y"])
                )
                return outcome.to_dict()
            if op == "window":
                outcome = await self.service.window(
                    float(request["xlo"]),
                    float(request["ylo"]),
                    float(request["xhi"]),
                    float(request["yhi"]),
                )
                return outcome.to_dict()
            if op == "join":
                outcome = await self.service.join()
                return outcome.to_dict()
            if op == "insert":
                entity = Entity(
                    int(request["eid"]),
                    Rect(
                        float(request["xlo"]),
                        float(request["ylo"]),
                        float(request["xhi"]),
                        float(request["yhi"]),
                    ),
                )
                epoch = await self.service.insert(entity)
                return {"ok": True, "epoch": epoch}
            if op == "delete":
                epoch = await self.service.delete(int(request["eid"]))
                return {"ok": True, "epoch": epoch}
            if op == "stats":
                return self.service.stats()
            return {"error": f"unknown op {op!r}"}
        except Exception as error:  # per-request fault isolation
            return {"error": f"{type(error).__name__}: {error}"}
