"""The ``Level()`` function: which level file an entity belongs to.

Section 3 of the paper: "The level ``j`` filter is composed of
equally spaced lines in each dimension.  The level of an entity is the
highest one (smallest ``j``) at which the MBR of the entity is
intersected by any line of the filter" — computed as "the number of
initial bits in which ``xl`` and ``xh`` as well as ``yl`` and ``yh``
agree" [SK96].

Concretely, a level-``l`` entity fits wholly inside one cell of the
``2^l x 2^l`` grid but is cut by a line of the ``2^(l+1)`` grid:

- level 0 — cut by the center line of the space (large entities);
- level ``l`` — contained in a cell of side ``2^-l`` (small entities
  fall to large ``l``).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect

DEFAULT_MAX_LEVEL = 16
"""Levels are capped so tiny/point entities do not each get their own
file; the paper reports "typically, 10 to 20" level files."""


def common_prefix_bits(a: int, b: int, width: int) -> int:
    """Number of initial (most significant) bits, out of ``width``, in
    which the two non-negative integers agree."""
    if a < 0 or b < 0:
        raise ValueError("inputs must be non-negative")
    diff = a ^ b
    if diff >> width:
        raise ValueError(f"inputs wider than {width} bits")
    return width - diff.bit_length()


class LevelAssigner:
    """Quantizes MBR corners and computes Filter-Tree levels.

    ``order`` is the quantization precision (bits per dimension);
    ``max_level`` caps the deepest level file (``L`` in the paper).
    """

    def __init__(self, order: int = 16, max_level: int = DEFAULT_MAX_LEVEL) -> None:
        if not 1 <= order <= 31:
            raise ValueError("order must be between 1 and 31")
        if not 0 <= max_level <= order:
            raise ValueError("max_level must be between 0 and order")
        self.order = order
        self.max_level = max_level
        self.side = 1 << order

    @property
    def num_levels(self) -> int:
        """Number of level files: levels 0..max_level inclusive."""
        return self.max_level + 1

    def quantize(self, coord: float) -> int:
        """Grid index of a normalized coordinate (clamped to the grid)."""
        if not 0.0 <= coord <= 1.0:
            raise ValueError(f"coordinate {coord} outside the unit square")
        return min(int(coord * self.side), self.side - 1)

    def quantize_hi(self, coord: float) -> int:
        """Inclusive grid index of a *high* MBR corner.

        Grid cells are closed intervals (boundary contact counts as
        intersection — see ``sweep_intersections``), so a high corner
        lying exactly on a grid line belongs to the cell *below* the
        line, not the one above it.
        """
        if not 0.0 <= coord <= 1.0:
            raise ValueError(f"coordinate {coord} outside the unit square")
        scaled = coord * self.side
        index = int(scaled)
        if index == scaled and index > 0:
            index -= 1
        return min(index, self.side - 1)

    def level(self, mbr: Rect) -> int:
        """The paper's ``Level(xl, yl, xh, yh)``.

        Returns the largest ``l`` (capped at ``max_level``) such that
        the MBR lies inside one cell of the ``2^l`` grid.
        """
        px = common_prefix_bits(
            self.quantize(mbr.xlo), self.quantize(mbr.xhi), self.order
        )
        py = common_prefix_bits(
            self.quantize(mbr.ylo), self.quantize(mbr.yhi), self.order
        )
        return min(px, py, self.max_level)

    def levels(
        self,
        xlo: np.ndarray,
        ylo: np.ndarray,
        xhi: np.ndarray,
        yhi: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`level` over arrays of normalized corners."""
        qxlo = self._quantize_array(xlo)
        qylo = self._quantize_array(ylo)
        qxhi = self._quantize_array(xhi)
        qyhi = self._quantize_array(yhi)
        px = self.order - _bit_lengths(qxlo ^ qxhi)
        py = self.order - _bit_lengths(qylo ^ qyhi)
        return np.minimum(np.minimum(px, py), self.max_level)

    def cell_side(self, level: int) -> float:
        """Side length of a level-``level`` grid cell."""
        return 1.0 / (1 << level)

    def cell_of(self, mbr: Rect, level: int | None = None) -> tuple[int, int]:
        """Grid coordinates of the level-``level`` cell containing the
        MBR (defaults to the MBR's own level).

        Raises :class:`ValueError` if the MBR does not fit in a single
        cell at that level.
        """
        if level is None:
            level = self.level(mbr)
        shift = self.order - level
        cx_lo = self.quantize(mbr.xlo) >> shift
        cy_lo = self.quantize(mbr.ylo) >> shift
        if level <= min(
            self.level(mbr), self.max_level
        ):  # fits by definition of level()
            return (cx_lo, cy_lo)
        # High corners quantize *inclusively*: cells are closed
        # intervals, so an MBR whose xhi/yhi lies exactly on a grid
        # line still fits in the cell below that line.
        cx_hi = self.quantize_hi(mbr.xhi) >> shift
        cy_hi = self.quantize_hi(mbr.yhi) >> shift
        if (cx_lo, cy_lo) != (max(cx_lo, cx_hi), max(cy_lo, cy_hi)):
            raise ValueError(f"MBR spans multiple level-{level} cells")
        return (cx_lo, cy_lo)

    def _quantize_array(self, coords: np.ndarray) -> np.ndarray:
        values = np.asarray(coords, dtype=np.float64)
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("coordinates outside the unit square")
        return np.minimum(
            (values * self.side).astype(np.int64), self.side - 1
        )


_BIT_LENGTH_STEPS = (32, 16, 8, 4, 2, 1)


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 arrays.

    Binary-search reduction: six fixed passes regardless of magnitude
    (the naive one-bit-per-pass loop costs ``order`` full-array passes
    on the batch-partition hot path).
    """
    work = np.asarray(values, dtype=np.int64).copy()
    if work.size and work.min() < 0:
        raise ValueError("inputs must be non-negative")
    lengths = np.zeros(work.shape, dtype=np.int64)
    for step in _BIT_LENGTH_STEPS:
        big = work >= (1 << step)
        lengths[big] += step
        work[big] >>= step
    return lengths + (work > 0)
