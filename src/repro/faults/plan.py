"""Deterministic fault plans.

A :class:`FaultPlan` says *which* storage calls and shard workers fail
and *how*, in a way that is a pure function of the plan and the call
sequence — rerunning the same workload under the same plan injects the
exact same faults.  Two sources compose:

- an explicit **schedule** of :class:`ScheduledFault` rules ("the 3rd
  write onward fails permanently"), matched against a per-operation
  call counter;
- a **seeded** per-call random draw with independent rates per fault
  kind, optionally capped by ``max_faults`` so a plan can model "flaky
  for a while, then healthy".

Plans are frozen dataclasses: picklable (they ride inside
:class:`~repro.storage.manager.StorageConfig` into shard worker
processes) and hashable.  The mutable call counters live in the
:class:`~repro.faults.inject.FaultInjectingBackend`, never here.

Worker-level faults (``crash_shards`` / ``delay_shards``) are consumed
by the parallel executor: a crashed shard kills its worker process
(``os._exit``) or, in-process, raises
:class:`~repro.faults.errors.WorkerCrashError`; a delayed shard sleeps
``delay_s`` so per-shard timeouts can be exercised deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

OPS = ("read", "write", "rename")
KINDS = ("transient", "permanent", "torn")


@dataclass(frozen=True)
class ScheduledFault:
    """One explicit injection rule, matched by operation call index.

    Fires on every call of ``op`` whose 1-based index falls in
    ``[first, last]`` (``last=None`` = forever), optionally restricted
    to one storage file name.
    """

    op: str
    kind: str
    first: int = 1
    last: int | None = None
    file: str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.kind == "torn" and self.op != "write":
            raise ValueError("torn faults only apply to writes")
        if self.first < 1:
            raise ValueError("first is a 1-based call index (>= 1)")
        if self.last is not None and self.last < self.first:
            raise ValueError("last must be >= first")

    def fires(self, op: str, index: int, file_name: str) -> bool:
        """Whether this rule injects on the given call."""
        if op != self.op or index < self.first:
            return False
        if self.last is not None and index > self.last:
            return False
        return self.file is None or self.file == file_name


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault scenario for storage and workers.

    Rates are per-call probabilities drawn from a ``random.Random``
    seeded with ``seed`` (``seed=None`` disables the random source;
    scheduled rules still fire).  ``max_faults`` caps the *random*
    injections only — schedules are explicit and always honored.

    Every injected storage fault charges ``latency_ops`` counted
    ``fault_latency`` CPU operations to the ledger, so injected latency
    is priced into the simulated response time by the cost model
    exactly like any other counted work.
    """

    seed: int | None = None
    transient_read_rate: float = 0.0
    transient_write_rate: float = 0.0
    permanent_rate: float = 0.0
    torn_write_rate: float = 0.0
    max_faults: int | None = None
    latency_ops: int = 1
    schedule: tuple[ScheduledFault, ...] = ()
    # Worker-level faults, consumed by the parallel executor.
    crash_shards: tuple[str, ...] = ()
    crash_attempts: int = 1
    delay_shards: tuple[str, ...] = ()
    delay_attempts: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "transient_read_rate",
            "transient_write_rate",
            "permanent_rate",
            "torn_write_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.latency_ops < 0:
            raise ValueError("latency_ops must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")
        if self.crash_attempts < 0 or self.delay_attempts < 0:
            raise ValueError("crash/delay attempt counts must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    # -- convenience constructors ---------------------------------------

    @classmethod
    def failing_writes(
        cls, after: int, kind: str = "permanent", file: str | None = None
    ) -> FaultPlan:
        """Every write past the first ``after`` of them fails — the
        promoted form of the test suite's old ad-hoc ``FlakyBackend``."""
        return cls(
            schedule=(
                ScheduledFault(op="write", kind=kind, first=after + 1, file=file),
            )
        )

    @property
    def random_enabled(self) -> bool:
        """Whether the seeded random source can ever inject."""
        return self.seed is not None and (
            self.transient_read_rate > 0
            or self.transient_write_rate > 0
            or self.permanent_rate > 0
            or self.torn_write_rate > 0
        )

    @property
    def injects_storage_faults(self) -> bool:
        return bool(self.schedule) or self.random_enabled

    # -- worker-level fault queries -------------------------------------

    def crashes_shard(self, shard_id: str, attempt: int) -> bool:
        """Whether the given shard's worker crashes on this attempt."""
        return shard_id in self.crash_shards and attempt <= self.crash_attempts

    def delays_shard(self, shard_id: str, attempt: int) -> bool:
        """Whether the given shard sleeps ``delay_s`` on this attempt."""
        return (
            self.delay_s > 0
            and shard_id in self.delay_shards
            and attempt <= self.delay_attempts
        )

    def describe(self) -> str:
        """A short human-readable signature for reports and logs."""
        parts = []
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        for label, rate in (
            ("tr", self.transient_read_rate),
            ("tw", self.transient_write_rate),
            ("perm", self.permanent_rate),
            ("torn", self.torn_write_rate),
        ):
            if rate:
                parts.append(f"{label}={rate}")
        if self.max_faults is not None:
            parts.append(f"max={self.max_faults}")
        if self.schedule:
            parts.append(f"sched={len(self.schedule)}")
        if self.crash_shards:
            parts.append(f"crash={','.join(self.crash_shards)}")
        if self.delay_shards:
            parts.append(f"delay={','.join(self.delay_shards)}@{self.delay_s}s")
        return "FaultPlan(" + (" ".join(parts) or "none") + ")"


NO_FAULTS = FaultPlan()
"""A plan that never injects (useful as an explicit 'retry layer
installed, zero faults' parity configuration)."""


@dataclass
class InjectionLog:
    """Mutable tally of what a fault-injecting backend actually did."""

    calls: dict[str, int] = field(
        default_factory=lambda: {op: 0 for op in OPS}
    )
    injected: dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in KINDS}
    )

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())
