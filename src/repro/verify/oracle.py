"""The brute-force oracle: the pair set every algorithm must produce.

All-pairs MBR intersection over margin-expanded, unit-square-clamped
boxes — exactly the boxes :meth:`SpatialDataset.write_descriptors`
materializes for the filter step, under the library-wide
closed-interval semantics (boundary contact counts).  Quadratic, but
vectorized with NumPy so verification workloads of a few thousand
entities stay fast; the oracle shares no code with any of the join
algorithms beyond :class:`~repro.geometry.rect.Rect`.
"""

from __future__ import annotations

import numpy as np

from repro.join.dataset import SpatialDataset
from repro.join.result import Pair, canonical_pairs
from repro.verify.cases import VerifyCase


def descriptor_boxes(
    dataset: SpatialDataset, margin: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """``(eids, boxes)`` arrays of the filter-step boxes: each entity's
    MBR expanded by ``margin`` per side and clamped to the unit square
    (the exact box the descriptor files carry)."""
    eids = np.empty(len(dataset), dtype=np.int64)
    boxes = np.empty((len(dataset), 4), dtype=np.float64)
    for row, entity in enumerate(dataset):
        box = (
            entity.mbr
            if margin == 0.0
            else entity.mbr.expanded(margin).clamped()
        )
        eids[row] = entity.eid
        boxes[row] = (box.xlo, box.ylo, box.xhi, box.yhi)
    return eids, boxes


def oracle_pairs(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    margin: float = 0.0,
) -> frozenset[Pair]:
    """Every pair of MBR-intersecting entities, canonicalized the same
    way the algorithms' results are (self join when both arguments are
    the same object)."""
    self_join = dataset_a is dataset_b
    eids_a, boxes_a = descriptor_boxes(dataset_a, margin)
    if self_join:
        eids_b, boxes_b = eids_a, boxes_a
    else:
        eids_b, boxes_b = descriptor_boxes(dataset_b, margin)
    if not len(eids_a) or not len(eids_b):
        return frozenset()

    # Closed-interval intersection, broadcast to an |A| x |B| mask.
    a = boxes_a[:, None, :]
    b = boxes_b[None, :, :]
    mask = (
        (a[..., 0] <= b[..., 2])
        & (b[..., 0] <= a[..., 2])
        & (a[..., 1] <= b[..., 3])
        & (b[..., 1] <= a[..., 3])
    )
    rows, cols = np.nonzero(mask)
    raw = {
        (int(eids_a[i]), int(eids_b[j])) for i, j in zip(rows, cols)
    }
    return canonical_pairs(raw, self_join)


def oracle_for_case(case: VerifyCase) -> frozenset[Pair]:
    """The oracle pair set of one verification case."""
    return oracle_pairs(case.dataset_a, case.dataset_b, margin=case.margin)
