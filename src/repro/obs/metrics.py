"""The metrics registry: named counters, gauges, and histograms.

Instrumentation hooks throughout the storage and join layers feed a
:class:`MetricsRegistry` — buffer pool hit/eviction counts, per-file
sequential/random transfer tallies, synchronized-scan open-page depth,
DSB set/probe/reject counts, external-sort run statistics.  These are
*observability* quantities: they never feed the simulated cost model
and recording them never touches the I/O ledger, so every simulated
number is identical whether a run is instrumented or not.

The default registry everywhere is :data:`NULL_METRICS`, whose methods
are no-ops; hot paths additionally guard on ``metrics is not None`` so
an uninstrumented run pays nothing beyond an attribute test.

Series are identified by a metric name plus optional labels, rendered
``name{key=value,...}`` with keys sorted — e.g.
``io.reads{file=in-a,kind=sequential}``.
"""

from __future__ import annotations

import math
from typing import Any


def series_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical series identifier: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


QUANTILE_SAMPLE_CAP = 4096
"""Samples retained per histogram for exact quantiles.  Distributions
that outgrow the cap (bulk I/O series) fall back to bucket-interpolated
approximations; the series the quantiles matter for — shard durations,
per-shard pair counts — stay far below it."""


class Histogram:
    """A bounded-memory summary of observed values.

    Tracks count, sum, min, max, counts per power-of-two bucket (bucket
    ``e`` holds values in ``(2^(e-1), 2^e]``; zero and negative values
    land in a dedicated underflow bucket keyed ``"<=0"``) — and, up to
    :data:`QUANTILE_SAMPLE_CAP` observations, the raw samples, so
    :meth:`quantile` (and the ``p50``/``p95``/``p99`` fields of
    :meth:`as_dict`) is *exact*.  Past the cap the samples are dropped
    and quantiles degrade to power-of-two bucket interpolation.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[str, int] = {}
        self.samples: list[float] | None = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            key = "<=0"
        else:
            key = str(math.ceil(math.log2(value)) if value > 1 else 0)
        self.buckets[key] = self.buckets.get(key, 0) + 1
        if self.samples is not None:
            if len(self.samples) < QUANTILE_SAMPLE_CAP:
                self.samples.append(value)
            else:
                self.samples = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact_quantiles(self) -> bool:
        """Whether :meth:`quantile` is exact (samples all retained)."""
        return self.samples is not None and len(self.samples) == self.count

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (``0 <= q <= 1``) of the observations.

        Exact (linear interpolation between order statistics, the
        numpy/R-7 definition) while the samples fit the retention cap;
        bucket-interpolated — and flagged by :attr:`exact_quantiles` —
        once they no longer do.  ``None`` when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        if self.exact_quantiles:
            ordered = sorted(self.samples)
            position = q * (len(ordered) - 1)
            lo = math.floor(position)
            hi = math.ceil(position)
            if lo == hi:
                return ordered[lo]
            frac = position - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return self._bucket_quantile(q)

    def _bucket_quantile(self, q: float) -> float:
        """Approximate quantile from the power-of-two buckets: find the
        bucket holding the target rank and interpolate linearly inside
        its value range (clamped to the observed min/max)."""
        target = q * (self.count - 1)
        seen = 0

        def bounds(key: str) -> tuple[float, float]:
            if key == "<=0":
                return (min(self.min or 0.0, 0.0), 0.0)
            exponent = int(key)
            lo = 0.0 if exponent == 0 else float(2 ** (exponent - 1))
            return (lo, float(2**exponent))

        for key in sorted(self.buckets, key=bounds):
            bucket_count = self.buckets[key]
            if seen + bucket_count > target:
                lo, hi = bounds(key)
                if self.min is not None:
                    lo = max(lo, self.min)
                if self.max is not None:
                    hi = min(hi, self.max)
                within = (target - seen) / bucket_count
                return lo + (hi - lo) * within
            seen += bucket_count
        return float(self.max if self.max is not None else 0.0)

    def merge(self, other: Histogram) -> None:
        """Fold another histogram's samples into this one (exact: the
        summary is closed under merging, including retained samples —
        unless the union outgrows the retention cap)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for key, count in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + count
        if (
            self.samples is not None
            and other.samples is not None
            and len(self.samples) + len(other.samples) <= QUANTILE_SAMPLE_CAP
        ):
            self.samples.extend(other.samples)
        else:
            self.samples = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "exact_quantiles": self.exact_quantiles,
            "buckets": dict(self.buckets),
            "samples": None if self.samples is None else list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Histogram:
        hist = cls()
        hist.count = int(data["count"])
        hist.total = float(data["sum"])
        hist.min = data["min"]
        hist.max = data["max"]
        hist.buckets = {str(k): int(v) for k, v in data["buckets"].items()}
        samples = data.get("samples")
        # Pre-quantile dumps carry no samples: treat them as overflowed
        # (quantiles degrade to bucket interpolation, never lie).
        hist.samples = None if samples is None else [float(v) for v in samples]
        if hist.samples is not None and len(hist.samples) != hist.count:
            hist.samples = None
        return hist

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.3g}, "
            f"min={self.min}, max={self.max})"
        )


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        """Add ``n`` to a counter series."""
        key = series_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + n

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge series to its latest value."""
        self.gauges[series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into a histogram series."""
        key = series_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    # -- reading --------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int:
        """Current value of a counter series (0 when never counted)."""
        return self.counters.get(series_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over all its label combinations."""
        prefix = name + "{"
        return sum(
            value
            for key, value in self.counters.items()
            if key == name or key.startswith(prefix)
        )

    def histogram(self, name: str, **labels: Any) -> Histogram | None:
        return self.histograms.get(series_key(name, labels))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready dump of every series."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: hist.as_dict() for key, hist in self.histograms.items()
            },
        }

    def merge_dump(self, dump: dict[str, Any]) -> None:
        """Fold an :meth:`as_dict` dump (e.g. from a worker process)
        into this registry: counters add, histograms merge exactly,
        gauges take the dump's value (merge dumps in a deterministic
        order so the surviving gauge is deterministic too)."""
        for key, value in dump["counters"].items():
            self.counters[key] = self.counters.get(key, 0) + int(value)
        for key, value in dump["gauges"].items():
            self.gauges[key] = float(value)
        for key, data in dump["histograms"].items():
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = Histogram()
            hist.merge(Histogram.from_dict(data))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> MetricsRegistry:
        registry = cls()
        registry.counters = {str(k): int(v) for k, v in data["counters"].items()}
        registry.gauges = {str(k): float(v) for k, v in data["gauges"].items()}
        registry.histograms = {
            str(k): Histogram.from_dict(v) for k, v in data["histograms"].items()
        }
        return registry


class NullMetricsRegistry(MetricsRegistry):
    """The do-nothing registry: instrumentation hooks short-circuit on
    ``enabled`` (or skip the call entirely when handed ``None``)."""

    enabled = False

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
"""Shared no-op registry (safe: it never stores anything)."""
