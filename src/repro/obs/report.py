"""Machine-readable run reports.

A :class:`RunReport` bundles everything one instrumented join produced:

- the :class:`~repro.join.metrics.JoinMetrics` (per-phase ledger
  counters and the cost model that prices them),
- the metrics-registry dump (buffer pool, per-file I/O, scan, DSB and
  sort series),
- the span tree (simulated *and* wall-clock/CPU seconds per phase and
  sub-step),

and round-trips through JSON (``to_json`` / ``from_json``), so
benchmark artifacts and CI uploads can be diffed across PRs instead of
scraping stdout.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.fileio import atomic_write_text
from repro.obs.straggler import analyze_events
from repro.obs.tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.join pulls in the storage
    # manager, which imports repro.obs — a module-level import here
    # would close that cycle during package initialization.
    from repro.join.metrics import JoinMetrics
    from repro.join.result import JoinResult
    from repro.obs import Observability

SCHEMA_VERSION = 2
"""Version 2 adds the execution event stream (``events``) and the
straggler analytics derived from it (``analytics``); version-1 reports
load fine with both empty."""

_ACCEPTED_SCHEMAS = (1, 2)

TABLE2_PHASES: dict[str, tuple[str, ...]] = {
    "s3j": ("partition", "sort", "join"),
    "pbsm": ("partition", "join", "sort"),
    "shj": ("partition", "join"),
}
"""The per-algorithm phases of the paper's Table 2; a report for an
algorithm must contain every one of them (CI's smoke job enforces it).
"""


def phase_wall_times(spans: list[Span]) -> dict[str, float]:
    """Wall seconds per phase, attributed to the *innermost* phase span
    — mirroring how the ledger attributes counts to the innermost open
    phase, so e.g. PBSM's repartition rounds (a ``partition`` span
    nested inside ``join``) count as partition, not join, time."""
    acc: dict[str, float] = {}
    _consume_phase_wall(spans, acc)
    return acc


def _consume_phase_wall(spans: list[Span], acc: dict[str, float]) -> float:
    """Accumulate into ``acc``; return wall seconds consumed by phase
    spans anywhere in this forest."""
    consumed = 0.0
    for span in spans:
        inner = _consume_phase_wall(span.children, acc)
        if span.attrs.get("kind") == "phase":
            acc[span.name] = acc.get(span.name, 0.0) + span.wall_s - inner
            consumed += span.wall_s
        else:
            consumed += inner
    return consumed


@dataclass
class RunReport:
    """One instrumented join run, ready for serialization."""

    algorithm: str
    metrics: JoinMetrics
    pairs: int
    wall_seconds: float
    phase_wall: dict[str, float] = field(default_factory=dict)
    registry: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    workload: str | None = None
    scale: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    analytics: dict[str, Any] | None = None

    @property
    def simulated_seconds(self) -> float:
        """Total simulated response time (the cost model's seconds)."""
        return self.metrics.response_time

    @property
    def phase_names(self) -> tuple[str, ...]:
        return self.metrics.all_phase_names

    def phase_table(self) -> dict[str, dict[str, float]]:
        """Per-phase simulated seconds, wall seconds, and I/O counts."""
        table: dict[str, dict[str, float]] = {}
        for name in self.phase_names:
            stats = self.metrics.phases.get(name)
            table[name] = {
                "simulated_s": self.metrics.phase_time(name),
                "wall_s": self.phase_wall.get(name, 0.0),
                "ios": 0 if stats is None else stats.total_ios,
                "reads": 0 if stats is None else stats.page_reads,
                "writes": 0 if stats is None else stats.page_writes,
            }
        return table

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "workload": self.workload,
            "scale": self.scale,
            "pairs": self.pairs,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "phase_wall": dict(self.phase_wall),
            "phase_table": self.phase_table(),
            "metrics": self.metrics.to_dict(),
            "registry": self.registry,
            "spans": self.spans,
            "meta": self.meta,
            "events": self.events,
            "analytics": self.analytics,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the report atomically (temp file + ``os.replace``), so
        an interrupted run never leaves a truncated JSON artifact."""
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> RunReport:
        from repro.join.metrics import JoinMetrics

        version = data.get("schema_version")
        if version not in _ACCEPTED_SCHEMAS:
            raise ValueError(
                f"unsupported RunReport schema version {version!r} "
                f"(accepted: {_ACCEPTED_SCHEMAS})"
            )
        return cls(
            algorithm=data["algorithm"],
            metrics=JoinMetrics.from_dict(data["metrics"]),
            pairs=int(data["pairs"]),
            wall_seconds=float(data["wall_seconds"]),
            phase_wall={k: float(v) for k, v in data["phase_wall"].items()},
            registry=data["registry"],
            spans=data["spans"],
            workload=data["workload"],
            scale=data["scale"],
            meta=data.get("meta", {}),
            events=data.get("events", []),
            analytics=data.get("analytics"),
        )

    @classmethod
    def from_json(cls, text: str) -> RunReport:
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> RunReport:
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def build_run_report(
    result: JoinResult,
    obs: Observability,
    workload: str | None = None,
    scale: float | None = None,
    wall_seconds: float | None = None,
    **meta: Any,
) -> RunReport:
    """Assemble the report for one finished join run.

    ``wall_seconds`` defaults to the total wall time of the tracer's
    root spans (the whole instrumented region).
    """
    tracer: Tracer = obs.tracer
    if wall_seconds is None:
        wall_seconds = sum(span.wall_s for span in tracer.roots)
    events: list[dict[str, Any]] = []
    analytics: dict[str, Any] | None = None
    if obs.events.enabled:
        events = obs.events.to_dicts()
        if events:
            analytics = analyze_events(events).to_dict()
    return RunReport(
        algorithm=result.metrics.algorithm,
        metrics=result.metrics,
        pairs=len(result.pairs),
        wall_seconds=wall_seconds,
        phase_wall=phase_wall_times(tracer.roots),
        registry=obs.metrics.as_dict(),
        spans=tracer.to_dicts(),
        workload=workload,
        scale=scale,
        meta=dict(meta),
        events=events,
        analytics=analytics,
    )
