"""The child process the crash gate kills.

Opens a durable :class:`~repro.service.index.PersistentIndex` at the
given data directory and replays the deterministic schedule from
:func:`repro.verify.crash.op_schedule`, printing ``ack <i> <epoch>``
after each operation returns (i.e. after its state is on the medium).
The parent plants a :class:`~repro.storage.durable.CrashPoint` in
``REPRO_DURABLE_CRASH``, so somewhere mid-schedule the durable backend
``SIGKILL``s this process — no cleanup, no atexit, exactly like a power
cut.  If the sampled point is never reached, the schedule completes and
``done`` is printed; both outcomes are valid cases for the parent.

Run with ``python -u`` so acks are not lost in a stdio buffer when the
kill lands.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.index import PersistentIndex
from repro.verify.crash import WORKER_COMPACTION_THRESHOLD, op_schedule


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.verify.crash_worker")
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--ops", type=int, required=True)
    args = parser.parse_args(argv)

    index = PersistentIndex.open(
        args.data_dir, compaction_threshold=WORKER_COMPACTION_THRESHOLD
    )
    for position, (op, payload) in enumerate(op_schedule(args.seed, args.ops)):
        if op == "insert":
            epoch = index.insert(payload)
        elif op == "delete":
            if payload in index:
                epoch = index.delete(payload)
            else:
                epoch = index.epoch
        else:
            index.compact()
            epoch = index.epoch
        print(f"ack {position} {epoch}", flush=True)
        if index.needs_compaction:
            index.compact()
            print(f"ack {position} {index.epoch}", flush=True)
    index.close()
    print("done", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
