"""Machine-readable benchmark artifacts.

Benchmarks call :func:`write_bench_artifact` to drop a
``BENCH_<name>.json`` file next to their printed output, so CI can
upload the numbers and PRs can be diffed without scraping stdout.  The
destination directory is ``REPRO_BENCH_DIR`` when set (CI points it at
the upload area), else the repository root.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.obs.fileio import atomic_write_json

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_artifact_dir() -> Path:
    """Where ``BENCH_*.json`` files go (created on demand)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    directory = Path(override) if override else REPO_ROOT
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def write_bench_artifact(name: str, payload: dict[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` atomically and return its path.

    The write goes through :func:`repro.obs.fileio.atomic_write_json`
    (temp sibling + ``os.replace``), so an interrupted benchmark never
    leaves a truncated artifact for CI to upload.
    """
    path = bench_artifact_dir() / f"BENCH_{name}.json"
    atomic_write_json(path, payload)
    return path
