"""The asyncio query front-end of the join service.

Four defensive layers sit between a request and the index, each one a
standard serving-system idiom in pure python:

- **Admission control** — a bounded in-flight semaphore: at most
  ``max_inflight`` queries execute concurrently, the rest queue.
- **Token-bucket rate limiting** — ``rate`` queries/second with a
  ``burst`` allowance; a query arriving to an empty bucket is rejected
  up front (``status="rejected"``) without touching the index.
- **A circuit breaker** — repeated query failures (the PR 5 fault
  taxonomy: injected storage faults surface as typed
  :class:`~repro.faults.errors.FaultError`) trip it open; while open
  the service does not touch the failing storage at all and serves
  **declared-partial** results — an empty pair set carrying a
  :class:`~repro.faults.errors.ShardFailure` that names the open
  breaker, never a silent wrong answer.  After ``reset_s`` one probe is
  let through (half-open); success closes the breaker.
- **An LRU result cache** keyed on ``(query, index epoch)`` — any
  insert, delete, *or compaction* advances the epoch, so a stale entry
  can never be served; entries are only reused while the live set and
  its backing files are exactly those the entry was computed against.

Queries execute inline on the event loop (the index is single-writer
and the scans are simulated-I/O bound); mutations and compaction
serialize behind one lock.  Everything observable flows through the
session's :mod:`repro.obs` registry and event log, so ``repro report``
renders a service run exactly like a batch join run.
"""

from __future__ import annotations

import asyncio
import enum
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.faults.errors import FaultError, ShardFailure
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.result import Pair
from repro.service.index import PersistentIndex

Clock = Callable[[], float]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning of one :class:`JoinService` instance."""

    max_inflight: int = 8
    rate: float | None = None  # queries/second; None = unlimited
    burst: int = 16
    cache_size: int = 128
    breaker_threshold: int = 3  # consecutive failures that trip it
    breaker_reset_s: float = 0.05  # open -> half-open probe delay
    compaction_interval_s: float = 0.01  # background compactor poll

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset_s < 0 or self.compaction_interval_s < 0:
            raise ValueError("intervals must be non-negative")


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``try_acquire`` is non-blocking — the service rejects rather than
    delays, so an overloaded client sees back-pressure immediately.
    A ``rate`` of ``None`` disables limiting (always admits).
    """

    def __init__(
        self, rate: float | None, burst: int, clock: Clock = time.monotonic
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        if self.rate is None:
            return True
        now = self._clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trips open after ``threshold`` consecutive failures.

    While open, :meth:`allow` is False — callers serve declared-partial
    results without touching the protected resource.  After ``reset_s``
    the breaker goes half-open: exactly one probe is admitted; its
    success closes the breaker, its failure re-opens it (and restarts
    the reset clock).
    """

    def __init__(
        self, threshold: int, reset_s: float, clock: Clock = time.monotonic
    ) -> None:
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opened_count = 0

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False

    def allow(self) -> bool:
        """Whether a request may touch the protected resource now."""
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True  # one probe at a time
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_inflight = False
        self._state = BreakerState.CLOSED

    def record_failure(self) -> bool:
        """Count one failure; returns True when this call opened it."""
        self._maybe_half_open()
        self._consecutive_failures += 1
        tripped = (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self.threshold
        )
        if tripped and self._state is not BreakerState.OPEN:
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._probe_inflight = False
            self.opened_count += 1
            return True
        if tripped:
            self._opened_at = self._clock()
        return False


class ResultCache:
    """A plain LRU cache; keys carry the index epoch, so invalidation
    is structural — an epoch advance orphans every older entry and the
    LRU evicts them as capacity demands."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any | None:
        try:
            value = self._entries.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._entries[key] = value  # re-insertion = most recent
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        if self.maxsize == 0:
            return
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.pop(next(iter(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class QueryOutcome:
    """What one query returned, JSON-ready.

    ``status`` is the service's trichotomy: ``"ok"`` (correct),
    ``"failed"`` (loud: a typed error, named in ``error``),
    ``"partial"`` (declared: ``failures`` says why the result is
    incomplete — only ever emitted with the breaker open), or
    ``"rejected"`` (admission: the query never executed).
    """

    op: str
    status: str
    epoch: int
    eids: tuple[int, ...] | None = None
    pairs: frozenset[Pair] | None = None
    failures: tuple[ShardFailure, ...] = ()
    cached: bool = False
    error: str | None = None

    @property
    def complete(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "status": self.status,
            "epoch": self.epoch,
            "eids": list(self.eids) if self.eids is not None else None,
            "pairs": (
                sorted(list(pair) for pair in self.pairs)
                if self.pairs is not None
                else None
            ),
            "failures": [failure.to_dict() for failure in self.failures],
            "cached": self.cached,
            "error": self.error,
        }


class JoinService:
    """The long-lived query front-end over one :class:`PersistentIndex`."""

    def __init__(
        self,
        index: PersistentIndex,
        config: ServiceConfig | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.index = index
        self.config = config or ServiceConfig()
        self.obs = index.obs
        self.bucket = TokenBucket(self.config.rate, self.config.burst, clock)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_reset_s, clock
        )
        self.cache = ResultCache(self.config.cache_size)
        self._inflight = asyncio.Semaphore(self.config.max_inflight)
        self._mutate = asyncio.Lock()
        self._compactor: asyncio.Task[None] | None = None
        self._delta_grew = asyncio.Event()
        self.queries = 0
        self.rejected = 0
        self.failed = 0
        self.partial = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Emit the start event and launch the background compactor."""
        events = self.obs.events
        if events.enabled:
            events.emit(
                "service_started",
                entities=len(self.index),
                epoch=self.index.epoch,
            )
        if self._compactor is None:
            self._compactor = asyncio.create_task(self._compaction_loop())

    async def stop(self) -> None:
        """Stop the compactor and emit the stop event (index stays open)."""
        if self._compactor is not None:
            self._compactor.cancel()
            try:
                await self._compactor
            except asyncio.CancelledError:
                pass
            self._compactor = None
        events = self.obs.events
        if events.enabled:
            events.emit(
                "service_stopped",
                queries=self.queries,
                epoch=self.index.epoch,
                compactions=self.index.compactions,
            )

    async def __aenter__(self) -> JoinService:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- mutations -------------------------------------------------------

    async def insert(self, entity: Entity) -> int:
        """Insert one entity; returns the new epoch."""
        async with self._mutate:
            epoch = self.index.insert(entity)
        self._note_mutation("insert", entity.eid, epoch)
        return epoch

    async def delete(self, eid: int) -> int:
        """Delete one live entity; returns the new epoch."""
        async with self._mutate:
            epoch = self.index.delete(eid)
        self._note_mutation("delete", eid, epoch)
        return epoch

    def _note_mutation(self, op: str, eid: int, epoch: int) -> None:
        events = self.obs.events
        if events.enabled:
            events.emit("index_updated", op=op, eid=eid, epoch=epoch)
        metrics = self.obs.active_metrics
        if metrics is not None:
            metrics.count("service.mutations", op=op)
        if self.index.needs_compaction:
            self._delta_grew.set()

    async def compact(self) -> bool:
        """Run one compaction now (also what the background loop calls)."""
        async with self._mutate:
            events = self.obs.events
            pending = self.index.delta_records
            if pending == 0:
                return False
            if events.enabled:
                events.emit(
                    "compaction_started",
                    delta_records=pending,
                    epoch=self.index.epoch,
                )
            compacted = self.index.compact()
            if events.enabled:
                events.emit(
                    "compaction_completed",
                    epoch=self.index.epoch,
                    compactions=self.index.compactions,
                )
            metrics = self.obs.active_metrics
            if metrics is not None:
                metrics.count("service.compactions")
            return compacted

    async def _compaction_loop(self) -> None:
        """Background compactor: wake on delta growth (or the poll
        interval) and fold the delta once it crosses the threshold."""
        while True:
            try:
                await asyncio.wait_for(
                    self._delta_grew.wait(), self.config.compaction_interval_s
                )
            except asyncio.TimeoutError:
                pass
            self._delta_grew.clear()
            if self.index.needs_compaction:
                await self.compact()

    # -- queries ---------------------------------------------------------

    async def point(self, x: float, y: float) -> QueryOutcome:
        return await self._query("point", ("point", x, y))

    async def window(
        self, xlo: float, ylo: float, xhi: float, yhi: float
    ) -> QueryOutcome:
        return await self._query("window", ("window", xlo, ylo, xhi, yhi))

    async def join(self) -> QueryOutcome:
        return await self._query("join", ("join",))

    async def _query(self, op: str, key: tuple[Any, ...]) -> QueryOutcome:
        self.queries += 1
        events = self.obs.events
        metrics = self.obs.active_metrics
        if not self.bucket.try_acquire():
            self.rejected += 1
            if events.enabled:
                events.emit("query_rejected", op=op, reason="rate_limited")
            if metrics is not None:
                metrics.count("service.queries", op=op, status="rejected")
            return QueryOutcome(
                op=op,
                status="rejected",
                epoch=self.index.epoch,
                error="rate limited",
            )
        async with self._inflight:
            if events.enabled:
                events.emit("query_started", op=op, epoch=self.index.epoch)
            # Mutations serialize with queries so every query sees one
            # consistent (live set, epoch) snapshot.
            async with self._mutate:
                outcome = self._execute(op, key)
        if events.enabled:
            if outcome.status == "failed":
                events.emit("query_failed", op=op, error=outcome.error)
            else:
                events.emit(
                    "query_completed",
                    op=op,
                    status=outcome.status,
                    epoch=outcome.epoch,
                    cached=outcome.cached,
                )
        if metrics is not None:
            metrics.count("service.queries", op=op, status=outcome.status)
        return outcome

    def _execute(self, op: str, key: tuple[Any, ...]) -> QueryOutcome:
        """The synchronous query core: cache -> breaker -> index."""
        epoch = self.index.epoch
        cached = self.cache.get((key, epoch))
        if cached is not None:
            return QueryOutcome(
                op=op,
                status=cached.status,
                epoch=epoch,
                eids=cached.eids,
                pairs=cached.pairs,
                failures=cached.failures,
                cached=True,
            )
        if not self.breaker.allow():
            self.partial += 1
            return QueryOutcome(
                op=op,
                status="partial",
                epoch=epoch,
                eids=() if op in ("point", "window") else None,
                pairs=frozenset() if op == "join" else None,
                failures=(
                    ShardFailure(
                        shard_id="service",
                        kind="breaker",
                        error_type="CircuitOpen",
                        message=(
                            "circuit breaker open after repeated query "
                            "failures; declared-partial result"
                        ),
                        attempts=0,
                    ),
                ),
            )
        try:
            if op == "point":
                outcome = QueryOutcome(
                    op=op,
                    status="ok",
                    epoch=epoch,
                    eids=self.index.point_query(key[1], key[2]),
                )
            elif op == "window":
                outcome = QueryOutcome(
                    op=op,
                    status="ok",
                    epoch=epoch,
                    eids=self.index.window_query(Rect(*key[1:])),
                )
            elif op == "join":
                outcome = QueryOutcome(
                    op=op,
                    status="ok",
                    epoch=epoch,
                    pairs=self.index.self_join(),
                )
            else:
                raise ValueError(f"unknown query op {op!r}")
        except FaultError as error:
            self.failed += 1
            opened = self.breaker.record_failure()
            if opened:
                events = self.obs.events
                if events.enabled:
                    events.emit(
                        "breaker_opened",
                        failures=self.breaker.consecutive_failures,
                    )
            return QueryOutcome(
                op=op,
                status="failed",
                epoch=epoch,
                error=f"{type(error).__name__}: {error}",
            )
        was_recovering = self.breaker.state is not BreakerState.CLOSED
        self.breaker.record_success()
        if was_recovering:
            events = self.obs.events
            if events.enabled:
                events.emit("breaker_closed")
        self.cache.put((key, epoch), outcome)
        return outcome

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A JSON-ready service snapshot (the ``stats`` server op)."""
        return {
            "entities": len(self.index),
            "epoch": self.index.epoch,
            "delta_records": self.index.delta_records,
            "compactions": self.index.compactions,
            "queries": self.queries,
            "rejected": self.rejected,
            "failed": self.failed,
            "partial": self.partial,
            "cache": {
                "size": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            },
            "breaker": {
                "state": self.breaker.state.value,
                "opened_count": self.breaker.opened_count,
            },
        }
