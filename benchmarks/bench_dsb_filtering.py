"""E-X1 — the filtering experiment (section 5.2.2, detailed in the
[KS96] technical report): a highly selective join where the inputs
occupy mostly different territory.

S3J+DSB must match the filtering that PBSM (tile space from catalog
MBRs) and SHJ (partition-MBR filtering) get structurally, and the paper
reports "S3J with DSB is able to outperform both PBSM and SHJ" when
enough filtering takes place.
"""

import random

import pytest

from repro.experiments.runner import run_algorithm
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset

COUNT = 6_000


def strip_dataset(name, x_lo, x_hi, count, seed):
    """Small boxes confined to a vertical strip of the space.

    The y-range keeps clear of y = 0.5: an entity cut by a center line
    is a level-0 entity, and the *fast* DSB projection of a level-0
    entity covers the whole bitmap (section 3.2's precision loss),
    which would turn the fast-mode measurement into pure noise.
    """
    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        x = rng.uniform(x_lo, x_hi - 0.01)
        y = rng.uniform(0.51, 0.97)
        entities.append(Entity.from_geometry(eid, Rect(x, y, x + 0.008, y + 0.008)))
    return SpatialDataset(name, entities)


@pytest.fixture(scope="module")
def selective_inputs():
    # 15% overlap band around x = 0.45.
    left = strip_dataset("left", 0.0, 0.5, COUNT, seed=1)
    right = strip_dataset("right", 0.42, 1.0, COUNT, seed=2)
    return left, right


def test_dsb_filtering_selective_join(benchmark, selective_inputs, repro_scale):
    left, right = selective_inputs

    def sweep():
        plain = run_algorithm(left, right, "s3j", label="s3j", scale=repro_scale)
        dsb = run_algorithm(
            left, right, "s3j", label="s3j+DSB", scale=repro_scale,
            dsb_level=8, dsb_mode="precise",
        )
        pbsm = run_algorithm(
            left, right, "pbsm", label="pbsm", scale=repro_scale,
            tile_space=Rect(0.0, 0.0, 0.5, 1.0),  # catalog MBR of A
        )
        shj = run_algorithm(left, right, "shj", label="shj", scale=repro_scale)
        return plain, dsb, pbsm, shj

    plain, dsb, pbsm, shj = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # All agree on results.
    assert dsb.result.pairs == plain.result.pairs
    assert pbsm.result.pairs == plain.result.pairs
    assert shj.result.pairs == plain.result.pairs

    print("\n--- Selective join: filtering comparison ---")
    print(f"{'run':<10}{'time_s':>8}{'ios':>9}{'filtered_B':>11}")
    filtered = {
        "s3j": 0,
        "s3j+DSB": dsb.result.metrics.details.get("dsb_filtered", 0),
        "pbsm": pbsm.result.metrics.details.get("filtered_b", 0),
        "shj": shj.result.metrics.details.get("filtered_b", 0),
    }
    for run in (plain, dsb, pbsm, shj):
        metrics = run.result.metrics
        print(
            f"{run.label:<10}{run.response_time:>8.2f}{metrics.total_ios:>9,}"
            f"{filtered[run.label]:>11,}"
        )

    # DSB filters most of the non-overlapping part of B...
    assert filtered["s3j+DSB"] > COUNT * 0.5
    # ...and beats plain S3J on both I/O and simulated time.
    assert dsb.result.metrics.total_ios < plain.result.metrics.total_ios
    assert dsb.response_time < plain.response_time
    # The paper's headline: with filtering, S3J+DSB outperforms both.
    assert dsb.response_time < pbsm.response_time
    assert dsb.response_time < shj.response_time
    benchmark.extra_info["filtered"] = filtered


@pytest.mark.parametrize("mode", ["precise", "fast"])
def test_dsb_mode_tradeoff(benchmark, selective_inputs, repro_scale, mode):
    """Section 3.2's precision/CPU tradeoff: fast mode filters no more
    than precise mode but spends fewer bitmap operations per entity."""
    left, right = selective_inputs
    run = benchmark.pedantic(
        lambda: run_algorithm(
            left, right, "s3j", scale=repro_scale, dsb_level=8, dsb_mode=mode
        ),
        rounds=1,
        iterations=1,
    )
    details = run.result.metrics.details
    print(f"\nDSB {mode}: filtered {details['dsb_filtered']:,} of {COUNT:,}")
    assert details["dsb_filtered"] > COUNT * 0.3
    benchmark.extra_info["filtered"] = details["dsb_filtered"]
