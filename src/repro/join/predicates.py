"""Join predicates.

A spatial join "applies predicate theta to pairs of elements from A and
B.  Predicates might include overlap, distance within epsilon, etc."
(section 2).  A predicate contributes two things:

- an **MBR margin** applied to every descriptor before the filter step,
  chosen so MBR intersection of expanded descriptors is a conservative
  (no-false-negative) test for the predicate; and
- an exact **refinement test** on actual geometries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.geometry.entity import Entity
from repro.geometry.predicates import refine_pair


class JoinPredicate(ABC):
    """The join condition theta."""

    name: str = "abstract"

    @property
    @abstractmethod
    def mbr_margin(self) -> float:
        """How much to expand every MBR (per side) before the filter
        step so that expanded-MBR intersection never misses a true
        result pair."""

    @abstractmethod
    def refine(self, a: Entity, b: Entity) -> bool:
        """Exact predicate evaluation on the two entities' geometries."""


@dataclass(frozen=True)
class Intersects(JoinPredicate):
    """The *overlap* predicate: geometries share at least one point."""

    name = "intersects"

    @property
    def mbr_margin(self) -> float:
        return 0.0

    def refine(self, a: Entity, b: Entity) -> bool:
        return refine_pair(a, b, eps=0.0)


@dataclass(frozen=True)
class WithinDistance(JoinPredicate):
    """The *distance within epsilon* predicate (e.g. the paper's CFD
    self-join finding all point pairs within 1e-6 of each other).

    Each MBR is expanded by ``eps / 2``; two entities within Euclidean
    distance ``eps`` are also within Chebyshev distance ``eps``, so
    their expanded MBRs intersect — the filter step is conservative and
    refinement applies the exact Euclidean test.
    """

    eps: float

    name = "within_distance"

    def __post_init__(self) -> None:
        if self.eps < 0:
            raise ValueError("eps must be non-negative")

    @property
    def mbr_margin(self) -> float:
        return self.eps / 2

    def refine(self, a: Entity, b: Entity) -> bool:
        return refine_pair(a, b, eps=self.eps)
