"""Nested tracing spans with wall-clock and CPU time.

A :class:`Tracer` records a tree of :class:`Span` objects — phase spans
(``partition`` / ``sort`` / ``join``) with sub-step children
(``partition:A``, ``sort:s3j-0-A-L5-sorted``, ``sync-scan``...).  Each
span captures real wall-clock and process-CPU time; the phase helpers
additionally attach the *simulated* seconds of the cost model, so one
trace shows both the modeled 1997 testbed and the Python wall-clock
that actually elapsed (the two must never be conflated — see DESIGN.md
section 8).

Exports:

- :meth:`Tracer.to_dicts` — the nested span tree as plain dicts;
- :meth:`Tracer.to_jsonl` — one JSON object per span (flat, with
  ``id``/``parent`` references), grep-friendly;
- :meth:`Tracer.to_chrome_trace` — the Chrome trace-event format;
  load the file at ``chrome://tracing`` or https://ui.perfetto.dev.

The default tracer everywhere is :data:`NULL_TRACER`: opening a span
costs one method call returning a shared no-op context manager, and no
span objects are ever allocated.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator


class Span:
    """One timed region; ``attrs`` carries arbitrary JSON-ready data."""

    __slots__ = ("name", "start_s", "wall_s", "cpu_s", "attrs", "children")

    def __init__(self, name: str, start_s: float, attrs: dict[str, Any]) -> None:
        self.name = name
        self.start_s = start_s  # offset from the tracer's epoch
        self.wall_s: float = 0.0
        self.cpu_s: float = 0.0
        self.attrs = attrs
        self.children: list[Span] = []

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (no-op on the null span)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Span:
        span = cls(data["name"], data["start_s"], dict(data["attrs"]))
        span.wall_s = data["wall_s"]
        span.cpu_s = data["cpu_s"]
        span.children = [cls.from_dict(child) for child in data["children"]]
        return span

    def __repr__(self) -> str:
        return f"Span({self.name!r}, wall={self.wall_s:.4f}s, children={len(self.children)})"


class _SpanContext:
    """Context manager driving one span's lifetime."""

    __slots__ = ("_tracer", "_span", "_t0_wall", "_t0_cpu")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        # Anchor the wall clock at the span's creation stamp (start_s)
        # rather than a fresh perf_counter() read: a span's end is then
        # exactly ``start_s + wall_s`` on the tracer's timeline, so
        # children always nest inside their parents in exports.
        self._t0_wall = self._tracer._epoch + self._span.start_s
        self._t0_cpu = time.process_time()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        span.wall_s = time.perf_counter() - self._t0_wall
        span.cpu_s = time.process_time() - self._t0_cpu
        self._tracer._pop(span)


class Tracer:
    """Collects a forest of nested spans for one run."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the innermost open span::

            with tracer.span("sort", kind="phase") as span:
                ...
                span.set(runs=3)
        """
        span = Span(name, time.perf_counter() - self._epoch, attrs)
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"span {span.name!r} closed out of order")
        self._stack.pop()

    # -- export ---------------------------------------------------------

    def _walk(self) -> Iterator[tuple[Span, int | None, int]]:
        """Depth-first (span, parent id, own id); ids are stable
        preorder indices."""
        next_id = 0
        stack: list[tuple[Span, int | None]] = [
            (span, None) for span in reversed(self.roots)
        ]
        while stack:
            span, parent = stack.pop()
            own = next_id
            next_id += 1
            yield span, parent, own
            for child in reversed(span.children):
                stack.append((child, own))

    def to_dicts(self) -> list[dict[str, Any]]:
        """The span forest as nested plain dicts."""
        return [span.to_dict() for span in self.roots]

    def to_jsonl(self) -> str:
        """One JSON object per span, flattened with id/parent links."""
        lines = []
        for span, parent, own in self._walk():
            lines.append(
                json.dumps(
                    {
                        "id": own,
                        "parent": parent,
                        "name": span.name,
                        "start_s": round(span.start_s, 9),
                        "wall_s": round(span.wall_s, 9),
                        "cpu_s": round(span.cpu_s, 9),
                        "attrs": span.attrs,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event format (``chrome://tracing``).

        Spans become complete ("ph": "X") events with microsecond
        timestamps; span attributes ride along in ``args``.  Each
        ``shard:<id>`` subtree of a sharded run is assigned its own
        ``tid`` (with a thread-name metadata event), so the shards of a
        parallel run render as separate lanes instead of one
        impossibly-overlapping thread.
        """
        events: list[dict[str, Any]] = []
        lane_names: dict[int, str] = {}
        next_lane = 2

        def walk(span: Span, tid: int) -> None:
            nonlocal next_lane
            if span.name.startswith("shard:"):
                tid = next_lane
                next_lane += 1
                lane_names[tid] = span.name
            events.append(
                {
                    "name": span.name,
                    "cat": str(span.attrs.get("kind", "span")),
                    "ph": "X",
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.wall_s * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": {**span.attrs, "cpu_s": round(span.cpu_s, 9)},
                }
            )
            for child in span.children:
                walk(child, tid)

        for root in self.roots:
            walk(root, 1)
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
            for tid, name in sorted(lane_names.items())
        ]
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


class _NullSpan(Span):
    """The shared do-nothing span; mutators are inert."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", 0.0, {})

    def set(self, **attrs: Any) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullTracer(Tracer):
    """The do-nothing tracer: ``span()`` returns a shared context
    manager and allocates nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _NULL_SPAN_CONTEXT  # type: ignore[return-value]


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()
"""Shared no-op tracer (safe: it never stores anything)."""
