"""Storage manager: paged files, buffer pool, and I/O accounting.

The paper's three algorithms were implemented "on top of a common
storage manager that provides efficient I/O" (section 5).  This
subpackage is that storage manager:

- :class:`~repro.storage.manager.StorageManager` — creates and drops
  named paged files, owns the buffer pool and the I/O ledger.
- :class:`~repro.storage.pagedfile.PagedFile` — an append/scan record
  file organized in fixed-size pages.
- :class:`~repro.storage.buffer.BufferPool` — LRU page cache with
  pin/unpin and write-back, the component that turns logical page
  accesses into counted physical I/Os.
- :class:`~repro.storage.iostats.IOStats` — the ledger: page reads and
  writes (sequential vs. random), per-phase breakdown, CPU operation
  counts.
- :class:`~repro.storage.costs.DiskModel` /
  :class:`~repro.storage.costs.CpuModel` — convert ledger counts into
  simulated seconds, calibrated to the paper's testbed (Seagate Hawk,
  18.1 ms average random access; 10 microseconds per Hilbert value).
"""

from repro.storage.buffer import BufferPool
from repro.storage.costs import CostModel, CpuModel, DiskModel
from repro.storage.durable import CrashPoint, DurableBackend, SimulatedCrash
from repro.storage.iostats import IOStats, PhaseStats
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EntityDescriptorCodec, RecordCodec
from repro.storage.wal import WalRecord, WriteAheadLog

__all__ = [
    "BufferPool",
    "CostModel",
    "CpuModel",
    "CrashPoint",
    "DiskModel",
    "DurableBackend",
    "EntityDescriptorCodec",
    "IOStats",
    "PagedFile",
    "PhaseStats",
    "RecordCodec",
    "SimulatedCrash",
    "StorageConfig",
    "StorageManager",
    "WalRecord",
    "WriteAheadLog",
]
