"""Spatial data sets: named collections of entities.

Mirrors the paper's Table 3: every data set has a name, a type, a size
(entity count), and a *coverage* — "the total area occupied by the
entities over the area of the MBR of the data space".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.curves.base import SpaceFillingCurve
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile


@dataclass
class SpatialDataset:
    """A named spatial data set."""

    name: str
    entities: list[Entity]
    description: str = ""
    _mbr_cache: Rect | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self.entities)

    def mbr(self) -> Rect:
        """MBR of the whole data space (cached)."""
        if not self.entities:
            raise ValueError(f"data set {self.name!r} is empty")
        if self._mbr_cache is None:
            box = self.entities[0].mbr
            for entity in self.entities[1:]:
                box = box.union(entity.mbr)
            self._mbr_cache = box
        return self._mbr_cache

    def coverage(self) -> float:
        """Total entity MBR area over the data-space MBR area (Table 3)."""
        space = self.mbr().area
        if space == 0.0:
            return 0.0
        return sum(entity.mbr.area for entity in self.entities) / space

    def size_pages(self, storage: StorageManager) -> int:
        """The paper's ``S_f``: file size in pages under the default
        entity-descriptor layout."""
        per_page = storage.descriptors_per_page()
        return -(-len(self.entities) // per_page)

    def entity_by_id(self) -> dict[int, Entity]:
        """Lookup table id -> entity (used by the refinement step)."""
        return {entity.eid: entity for entity in self.entities}

    def write_descriptors(
        self,
        storage: StorageManager,
        file_name: str,
        margin: float = 0.0,
        curve: SpaceFillingCurve | None = None,
    ) -> PagedFile:
        """Materialize this data set as a descriptor file.

        ``margin`` expands every MBR (per side) for distance predicates;
        expanded boxes are clipped to the unit square.  When ``curve``
        is given, Hilbert values are precomputed into the descriptors
        (the paper's "part of the descriptors of each spatial entity"
        option, section 3.1); otherwise the field is written as zero and
        S3J computes values on the fly.
        """
        handle = storage.create_file(file_name)
        for entity in self.entities:
            box = entity.mbr if margin == 0.0 else entity.mbr.expanded(margin).clamped()
            hilbert = 0
            if curve is not None:
                hilbert = curve.key_of_normalized(*box.center)
            handle.append((entity.eid, box.xlo, box.ylo, box.xhi, box.yhi, hilbert))
        handle.flush()
        return handle
