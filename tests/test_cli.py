"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.report import RunReport


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.algorithm == "s3j"
        assert args.workload == "UN1-UN2"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--algorithm", "nested"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--workload", "XYZ"])

    @pytest.mark.parametrize("value", ["0", "-2", "abc", "1.5"])
    def test_rejects_bad_worker_counts(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--workers", value])
        err = capsys.readouterr().err
        assert "must be at least 1" in err or "is not an integer" in err

    @pytest.mark.parametrize("value", ["0", "17", "-3", "two"])
    def test_rejects_bad_shard_levels(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--shard-level", value])
        err = capsys.readouterr().err
        assert "between 1 and 16" in err or "is not an integer" in err

    def test_accepts_valid_sharding(self):
        args = build_parser().parse_args(
            ["join", "--workers", "4", "--shard-level", "2"]
        )
        assert args.workers == 4
        assert args.shard_level == 2

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify", "--quick"])
        assert args.quick
        assert args.workers == 2
        assert not args.no_minimize

    def test_verify_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--workers", "0"])


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "UN1" in out and "CFD" in out

    def test_join_runs(self, capsys):
        assert main(
            ["join", "--workload", "UN1-UN2", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "pairs" in out and "partition" in out

    def test_join_pbsm_with_tiles(self, capsys):
        assert main(
            [
                "join",
                "--workload",
                "UN1-UN2",
                "--algorithm",
                "pbsm",
                "--tiles",
                "8",
                "--scale",
                "0.02",
            ]
        ) == 0
        assert "r_A / r_B" in capsys.readouterr().out

    def test_tiles_rejected_for_s3j(self, capsys):
        assert main(["join", "--tiles", "8", "--scale", "0.02"]) == 2

    def test_table4_single_workload(self, capsys):
        assert main(["table4", "--only", "UN1-UN2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "UN1-UN2" in out


class TestVerifyCommand:
    def test_single_workload_passes(self, capsys):
        assert main(
            [
                "verify",
                "--workloads",
                "grid-aligned",
                "--algorithms",
                "s3j,sweep",
                "--transforms",
                "axis-swap",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "PASS" in captured.out
        assert "grid-aligned" in captured.out
        assert "case grid-aligned" in captured.err  # progress goes to stderr

    def test_json_report(self, capsys):
        assert main(
            [
                "verify",
                "--workloads",
                "uniform",
                "--algorithms",
                "sweep",
                "--transforms",
                "swap-ab",
                "--json",
            ]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["cases"] == ["uniform"]
        assert report["runs"] > 0

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["verify", "--algorithms", "nested"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["verify", "--workloads", "no-such"]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_unknown_transform_exits_2(self, capsys):
        assert main(["verify", "--transforms", "rotate-45"]) == 2
        assert "unknown transforms" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_report_to_stdout_is_pure_json(self, capsys):
        assert main(
            ["join", "--workload", "UN1-UN2", "--scale", "0.02", "--report", "-"]
        ) == 0
        out = capsys.readouterr().out
        report = RunReport.from_json(out)  # would raise on any non-JSON noise
        assert report.algorithm == "s3j"
        assert report.pairs > 0
        for phase in ("partition", "sort", "join"):
            assert phase in report.metrics.phases
            assert report.phase_wall.get(phase, 0.0) > 0.0

    def test_report_and_trace_files(self, capsys, tmp_path):
        report_path = tmp_path / "run.report.json"
        trace_path = tmp_path / "run.trace.json"
        assert main(
            [
                "join",
                "--algorithm",
                "pbsm",
                "--workload",
                "UN1-UN2",
                "--scale",
                "0.02",
                "--report",
                str(report_path),
                "--trace",
                str(trace_path),
            ]
        ) == 0
        assert "pairs" in capsys.readouterr().out  # summary still printed
        report = RunReport.load(str(report_path))
        assert report.algorithm == "pbsm"
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        assert {event["name"] for event in events} >= {"partition", "join"}

    def test_no_flags_no_observability(self, capsys):
        assert main(["join", "--workload", "UN1-UN2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)

    def test_table4_json_round_trips(self, capsys):
        assert main(
            ["table4", "--only", "UN1-UN2", "--scale", "0.02", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        row = rows[0]
        assert row["workload"] == "UN1-UN2"
        assert {"s3j", "pbsm_small", "pbsm_large", "shj"} <= set(row)
        assert json.loads(json.dumps(rows)) == rows


class TestExecutionModes:
    """`repro join --mode memory` and the partial-result exit codes."""

    def test_memory_mode_runs(self, capsys):
        assert main(
            ["join", "--mode", "memory", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "mode      : memory" in out
        assert "page I/Os : 0" in out

    def test_memory_mode_sharded(self, capsys):
        assert main(
            ["join", "--mode", "memory", "--workers", "2", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "mode      : memory" in out and "sharding" in out

    def test_memory_mode_rejects_non_s3j(self, capsys):
        assert main(
            ["join", "--mode", "memory", "--algorithm", "pbsm",
             "--scale", "0.02"]
        ) == 2
        assert "s3j only" in capsys.readouterr().err

    def test_memory_mode_rejects_retry_flags(self, capsys):
        assert main(
            ["join", "--mode", "memory", "--retry-attempts", "2",
             "--scale", "0.02"]
        ) == 2
        assert "no storage" in capsys.readouterr().err

    def test_partial_results_needs_sharding(self, capsys):
        assert main(
            ["join", "--partial-results", "--scale", "0.02"]
        ) == 2
        assert "sharded" in capsys.readouterr().err

    def test_transient_crash_retries_to_success(self, capsys):
        # Default shard retry budget survives a single crashed attempt.
        assert main(
            ["join", "--workers", "2", "--inject-crash", "cell-0",
             "--scale", "0.02"]
        ) == 0
        assert "FAILURES" not in capsys.readouterr().out

    def test_persistent_crash_without_partial_exits_1(self, capsys):
        assert main(
            ["join", "--workers", "2", "--inject-crash", "cell-0",
             "--crash-attempts", "5", "--scale", "0.02"]
        ) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "--partial-results" in err

    def test_persistent_crash_partial_exits_3(self, capsys):
        # A dead shard with --partial-results: pairs for the completed
        # shards, a loud FAILURES block, and exit code 3.
        assert main(
            ["join", "--workers", "2", "--inject-crash", "cell-0",
             "--crash-attempts", "5", "--partial-results",
             "--scale", "0.02"]
        ) == 3
        captured = capsys.readouterr()
        assert "FAILURES  : 1 shard(s) incomplete" in captured.out
        assert "cell-0" in captured.out
        assert "result is partial" in captured.err


class TestCrossModeCommand:
    def test_cross_mode_passes(self, capsys):
        assert main(
            ["verify", "--cross-mode", "--workloads", "uniform,mixed-self"]
        ) == 0
        out = capsys.readouterr().out
        assert "cross-mode" in out and "PASS" in out

    def test_cross_mode_json(self, capsys):
        assert main(
            ["verify", "--cross-mode", "--workloads", "uniform", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        # 1 workload x 2 modes x (serial + 2-worker under each planner)
        assert report["runs"] == 6

    def test_cross_mode_unknown_workload_exits_2(self, capsys):
        assert main(
            ["verify", "--cross-mode", "--workloads", "nope"]
        ) == 2
        assert "unknown" in capsys.readouterr().err
