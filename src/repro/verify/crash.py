"""The kill-and-reopen crash gate for the durable storage stack.

The scenario class the chaos harness could not model in-process: a real
child process runs a deterministic schedule of inserts, deletes, and
compactions against a durable :class:`~repro.service.index.
PersistentIndex`, with a sampled :class:`~repro.storage.durable.
CrashPoint` planted in its environment — the durable backend ``SIGKILL``s
its own process mid-WAL-append, between the WAL fsync and the data
write, mid-data-page write, around a compaction rename, or mid-
checkpoint.  The parent counts the operations the child *acknowledged*
(one ``ack`` line per completed operation), reopens the store in its
own process, and asserts exact agreement with a cold in-memory oracle:

- the recovered live-entity set equals the set after ``k`` or ``k + 1``
  acknowledged operations (the op in flight at the kill either fully
  survived or never happened — nothing in between);
- the recovered index's ``self_join`` answers are byte-identical to the
  brute-force oracle over that live set, and window queries agree with
  a direct scan;
- reopening a second time changes nothing (recovery is idempotent).

A fault-free ledger-parity check rides along: the same batch join run
on the ``memory``, ``disk``, and ``durable`` backends must produce
byte-identical simulated metrics, proving the durable machinery is
invisible to the paper's cost model.

Wired into ``repro verify --crash`` and the CI crash-smoke job; the
``--serve-roundtrip`` entry point additionally kills and restarts a
real ``repro serve`` process and requires the restarted service to
answer from the recovered index.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.datagen.uniform import uniform_squares
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.service.index import PersistentIndex
from repro.storage.durable import CRASH_ENV, CRASH_POINTS, CrashPoint
from repro.verify.oracle import oracle_pairs

Progress = Callable[[str], None]

WORKER_COMPACTION_THRESHOLD = 12
"""Small on purpose: the schedule must cross several compactions so
rename/checkpoint crash points have occurrences to land on."""

DEFAULT_OPS = 48

# How many occurrences of each point one schedule plausibly produces;
# sampling indexes beyond the high end yields "ran to completion"
# cases, which are kept — surviving with zero crashes is also a result.
_INDEX_RANGES = {
    "wal-append": 40,
    "wal-synced": 40,
    "data-write": 30,
    "rename": 6,
    "checkpoint": 3,
}


def op_schedule(seed: int, ops: int = DEFAULT_OPS) -> list[tuple[str, Any]]:
    """The deterministic operation sequence a worker replays.

    Shared by the child (which executes it against the durable index)
    and the parent (which replays prefixes of it in memory as the
    oracle).  Mix: mostly inserts, some deletes of still-live entities
    (including re-inserts of previously deleted ids), an explicit
    compaction every so often.
    """
    rng = random.Random(seed)
    schedule: list[tuple[str, Any]] = []
    live: dict[int, Entity] = {}
    deleted: list[Entity] = []
    next_eid = 1
    for position in range(ops):
        roll = rng.random()
        if position and roll < 0.12:
            schedule.append(("compact", None))
        elif live and roll < 0.32:
            eid = rng.choice(sorted(live))
            deleted.append(live.pop(eid))
            schedule.append(("delete", eid))
        elif deleted and roll < 0.40:
            entity = deleted.pop(rng.randrange(len(deleted)))
            live[entity.eid] = entity
            schedule.append(("insert", entity))
        else:
            cx, cy = rng.random(), rng.random()
            side = rng.uniform(0.01, 0.15)
            entity = Entity(
                next_eid,
                Rect(
                    max(0.0, cx - side / 2),
                    max(0.0, cy - side / 2),
                    min(1.0, cx + side / 2),
                    min(1.0, cy + side / 2),
                ),
            )
            next_eid += 1
            live[entity.eid] = entity
            schedule.append(("insert", entity))
    return schedule


def apply_prefix(
    schedule: list[tuple[str, Any]], count: int
) -> dict[int, Entity]:
    """The live entity set after the first ``count`` operations."""
    live: dict[int, Entity] = {}
    for op, payload in schedule[:count]:
        if op == "insert":
            live[payload.eid] = payload
        elif op == "delete":
            live.pop(payload, None)
    return live


def sample_crash_point(rng: random.Random) -> CrashPoint:
    """One deterministic crash-point sample."""
    point = rng.choice(CRASH_POINTS)
    return CrashPoint(
        point=point,
        index=rng.randrange(_INDEX_RANGES[point]),
        fraction=rng.uniform(0.05, 0.95),
        action="kill",
    )


@dataclass
class CrashCaseResult:
    """One kill-and-reopen case."""

    case: int
    point: str
    index: int
    fraction: float
    killed: bool
    acked: int
    recovered: int
    ok: bool
    detail: str = ""
    recovery: dict[str, Any] | None = None

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        death = "killed" if self.killed else "completed"
        return (
            f"case {self.case}: {self.point}[{self.index}] "
            f"f={self.fraction:.2f} {death} acked={self.acked} "
            f"recovered={self.recovered} {status}"
            + (f" — {self.detail}" if self.detail else "")
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "case": self.case,
            "point": self.point,
            "index": self.index,
            "fraction": self.fraction,
            "killed": self.killed,
            "acked": self.acked,
            "recovered": self.recovered,
            "ok": self.ok,
            "detail": self.detail,
            "recovery": self.recovery,
        }


@dataclass
class CrashVerifyReport:
    """The gate's verdict over all sampled cases."""

    cases: list[CrashCaseResult] = field(default_factory=list)
    ledger_parity_ok: bool = True
    ledger_parity_detail: str = ""

    @property
    def ok(self) -> bool:
        return self.ledger_parity_ok and all(case.ok for case in self.cases)

    @property
    def kills(self) -> int:
        return sum(1 for case in self.cases if case.killed)

    def summary(self) -> str:
        lines = [
            f"crash verify: {len(self.cases)} cases, {self.kills} real kills, "
            f"{sum(1 for c in self.cases if not c.ok)} failures"
        ]
        lines.append(
            "ledger parity (memory/disk/durable): "
            + ("byte-identical" if self.ledger_parity_ok else "DIVERGED")
            + (f" — {self.ledger_parity_detail}" if self.ledger_parity_detail else "")
        )
        for case in self.cases:
            if not case.ok:
                lines.append("  " + case.describe())
        lines.append("crash verify: OK" if self.ok else "crash verify: FAILED")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "kills": self.kills,
            "ledger_parity_ok": self.ledger_parity_ok,
            "ledger_parity_detail": self.ledger_parity_detail,
            "cases": [case.to_dict() for case in self.cases],
        }


def _worker_env(crash: CrashPoint | None) -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    if crash is not None:
        env[CRASH_ENV] = crash.to_env()
    else:
        env.pop(CRASH_ENV, None)
    return env


def _run_worker(
    data_dir: str, seed: int, ops: int, crash: CrashPoint | None
) -> tuple[int, int]:
    """Run one schedule in a child process; (acked ops, return code)."""
    process = subprocess.run(
        [
            sys.executable,
            "-u",
            "-m",
            "repro.verify.crash_worker",
            "--data-dir",
            data_dir,
            "--seed",
            str(seed),
            "--ops",
            str(ops),
        ],
        env=_worker_env(crash),
        capture_output=True,
        text=True,
        timeout=240,
    )
    acked = 0
    for line in process.stdout.splitlines():
        if line.startswith("ack "):
            acked = int(line.split()[1]) + 1
    return acked, process.returncode


def run_crash_case(
    case_no: int, seed: int, ops: int = DEFAULT_OPS
) -> CrashCaseResult:
    """One sampled SIGKILL point: run, kill, reopen, compare."""
    crash = sample_crash_point(random.Random((seed << 16) ^ case_no))
    schedule = op_schedule(seed, ops)
    with tempfile.TemporaryDirectory(prefix="repro-crash-") as data_dir:
        acked, returncode = _run_worker(data_dir, seed, ops, crash)
        killed = returncode == -signal.SIGKILL
        result = CrashCaseResult(
            case=case_no,
            point=crash.point,
            index=crash.index,
            fraction=crash.fraction,
            killed=killed,
            acked=acked,
            recovered=0,
            ok=False,
        )
        if not killed and returncode != 0:
            result.detail = f"worker exited {returncode} without being killed"
            return result
        if not killed and acked != ops:
            result.detail = f"worker completed but acked {acked}/{ops}"
            return result
        for reopen in range(2):  # the second pass proves idempotence
            try:
                index = PersistentIndex.open(
                    data_dir, compaction_threshold=WORKER_COMPACTION_THRESHOLD
                )
            except Exception as error:  # noqa: BLE001 - verdict, not control flow
                result.detail = f"reopen {reopen} raised {type(error).__name__}: {error}"
                return result
            try:
                ok, detail, matched = _check_recovered(index, schedule, acked)
                if reopen == 0:
                    backend = index._backend()
                    if backend.last_recovery is not None:
                        result.recovery = backend.last_recovery.to_dict()
                result.recovered = matched
                if not ok:
                    result.detail = f"reopen {reopen}: {detail}"
                    return result
            finally:
                index.close()
        result.ok = True
        return result


def _check_recovered(
    index: PersistentIndex, schedule: list[tuple[str, Any]], acked: int
) -> tuple[bool, str, int]:
    """Exact-match the recovered index against the k / k+1 oracles."""
    recovered = {entity.eid: entity for entity in index.live_entities()}
    matched = -1
    for count in (acked, acked + 1):
        if count <= len(schedule) and apply_prefix(schedule, count) == recovered:
            matched = count
            break
    if matched < 0:
        expected = sorted(apply_prefix(schedule, acked))
        return (
            False,
            f"live set matches neither {acked} nor {acked + 1} ops "
            f"(got {len(recovered)} entities, expected ~{len(expected)})",
            0,
        )
    live_dataset = index.snapshot_dataset()
    oracle = oracle_pairs(live_dataset, live_dataset)
    answered = index.self_join()
    if answered != oracle:
        return (
            False,
            f"self_join diverged: {len(answered)} pairs vs oracle "
            f"{len(oracle)} after {matched} ops",
            matched,
        )
    for window in (
        Rect(0.0, 0.0, 0.5, 0.5),
        Rect(0.25, 0.25, 0.75, 0.75),
        Rect(0.9, 0.9, 1.0, 1.0),
    ):
        expected_hits = tuple(
            sorted(
                entity.eid
                for entity in recovered.values()
                if entity.mbr.xlo <= window.xhi
                and window.xlo <= entity.mbr.xhi
                and entity.mbr.ylo <= window.yhi
                and window.ylo <= entity.mbr.yhi
            )
        )
        if index.window_query(window) != expected_hits:
            return False, f"window query diverged on {window}", matched
    return True, "", matched


def check_ledger_parity(seed: int = 0) -> tuple[bool, str]:
    """Fault-free runs must price identically on every backend."""
    from repro.experiments.runner import run_algorithm

    a = uniform_squares(300, 0.01, seed=seed + 1, name="CRA")
    b = uniform_squares(300, 0.01, seed=seed + 2, name="CRB")
    baseline = None
    for backend in ("memory", "disk", "durable"):
        run = run_algorithm(a, b, "s3j", scale=0.02, backend=backend)
        probe = (sorted(run.result.pairs), run.result.metrics.to_dict())
        if baseline is None:
            baseline = probe
        elif probe != baseline:
            return False, f"{backend} differs from memory baseline"
    return True, ""


def run_crash_verify(
    cases: int = 25,
    seed: int = 0,
    ops: int = DEFAULT_OPS,
    progress: Progress | None = None,
) -> CrashVerifyReport:
    """The full gate: ledger parity plus ``cases`` sampled kills."""
    report = CrashVerifyReport()
    report.ledger_parity_ok, report.ledger_parity_detail = check_ledger_parity(
        seed
    )
    if progress:
        progress(
            "ledger parity: "
            + ("ok" if report.ledger_parity_ok else "DIVERGED")
        )
    for case_no in range(cases):
        result = run_crash_case(case_no, seed=seed + case_no, ops=ops)
        report.cases.append(result)
        if progress:
            progress(result.describe())
    return report


# -- the serve kill-and-restart round-trip ------------------------------


def _read_port(process: subprocess.Popen, deadline: float = 30.0) -> int:
    """Parse the bound port from the serve banner on stderr."""
    assert process.stderr is not None
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        line = process.stderr.readline()
        if not line:
            if process.poll() is not None:
                raise RuntimeError(
                    f"serve exited {process.returncode} before binding"
                )
            continue
        if "serving" in line and " on " in line:
            address = line.split(" on ")[1].split()[0]
            return int(address.rsplit(":", 1)[1])
    raise RuntimeError("serve did not print its banner in time")


def _request(port: int, payload: dict[str, Any]) -> dict[str, Any]:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
        conn.sendall((json.dumps(payload) + "\n").encode())
        data = b""
        while not data.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data.decode())


def run_serve_roundtrip(
    seed: int = 0, entities: int = 80, progress: Progress | None = None
) -> bool:
    """Kill ``repro serve`` with SIGKILL and require the restarted
    process to answer from the recovered on-disk index."""

    def say(message: str) -> None:
        if progress:
            progress(message)

    with tempfile.TemporaryDirectory(prefix="repro-serve-crash-") as data_dir:
        command = [
            sys.executable,
            "-u",
            "-m",
            "repro.cli",
            "serve",
            "--data-dir",
            data_dir,
            "--entities",
            str(entities),
            "--seed",
            str(seed),
            "--compaction-threshold",
            "16",
        ]
        env = _worker_env(None)
        first = subprocess.Popen(
            command, env=env, stderr=subprocess.PIPE, text=True
        )
        try:
            port = _read_port(first)
            say(f"first serve up on port {port}")
            for eid, (x, y) in enumerate(
                [(0.11, 0.2), (0.5, 0.52), (0.82, 0.3), (0.4, 0.77)],
                start=10_000,
            ):
                response = _request(
                    port,
                    {
                        "op": "insert",
                        "eid": eid,
                        "xlo": x,
                        "ylo": y,
                        "xhi": x + 0.06,
                        "yhi": y + 0.06,
                    },
                )
                if not response.get("ok"):
                    raise RuntimeError(f"insert failed: {response}")
            window = {"op": "window", "xlo": 0, "ylo": 0, "xhi": 1, "yhi": 1}
            before = _request(port, window)
            stats = _request(port, {"op": "stats"})
            say(
                f"before kill: {len(before.get('eids', []))} live, "
                f"epoch {stats.get('epoch')}"
            )
        finally:
            first.kill()  # SIGKILL: no goodbye, no flush
            first.wait(timeout=30)
        say("first serve killed (SIGKILL)")

        second = subprocess.Popen(
            command, env=env, stderr=subprocess.PIPE, text=True
        )
        try:
            port = _read_port(second)
            say(f"second serve up on port {port}")
            after = _request(
                port, {"op": "window", "xlo": 0, "ylo": 0, "xhi": 1, "yhi": 1}
            )
            stats = _request(port, {"op": "stats"})
            if after.get("eids") != before.get("eids"):
                say(
                    f"MISMATCH: {len(before.get('eids', []))} live before, "
                    f"{len(after.get('eids', []))} after restart"
                )
                return False
            say(
                f"after restart: {len(after.get('eids', []))} live, "
                f"epoch {stats.get('epoch')} — answers identical"
            )
            return True
        finally:
            second.terminate()
            try:
                second.wait(timeout=30)
            except subprocess.TimeoutExpired:
                second.kill()
                second.wait(timeout=30)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.verify.crash", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--cases", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument(
        "--serve-roundtrip",
        action="store_true",
        help="kill-and-restart a real `repro serve` process instead of "
        "running the sampled crash cases",
    )
    args = parser.parse_args(argv)
    if args.serve_roundtrip:
        ok = run_serve_roundtrip(seed=args.seed, progress=print)
        print("serve round-trip: " + ("OK" if ok else "FAILED"))
        return 0 if ok else 1
    report = run_crash_verify(
        cases=args.cases, seed=args.seed, ops=args.ops, progress=print
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
