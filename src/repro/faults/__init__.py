"""repro.faults — deterministic fault injection and recovery.

Four pieces (see DESIGN.md section 11):

- **taxonomy** (:mod:`repro.faults.errors`) — every injected, detected,
  or reported failure is a typed :class:`FaultError`; retryability is
  encoded in the type (:class:`TransientIOError` vs
  :class:`PermanentIOError` / :class:`TornWriteError`).
- **injection** (:mod:`repro.faults.plan` / :mod:`repro.faults.inject`)
  — a picklable :class:`FaultPlan` (seeded rates and/or explicit
  :class:`ScheduledFault` rules, plus worker crash/delay directives)
  executed by :class:`FaultInjectingBackend`, a wrapper over any
  storage backend that also simulates torn writes and detects them on
  read.
- **recovery** (:mod:`repro.faults.retry`) — :class:`RetryPolicy`
  (bounded attempts, exponential backoff, deterministic jitter) applied
  by :class:`RetryingBackend` at the buffer-pool/backend boundary;
  backoff is simulated, and retries/give-ups/backoff are exported as
  ``faults.*`` metrics and ``retry:*`` span events.
- **chaos verification** lives in :mod:`repro.verify.chaos`: sampled
  fault plans driven through the differential harness, asserting the
  correct-result / typed-failure / declared-partial trichotomy.

Typical use::

    from repro.faults import FaultPlan, RetryPolicy
    from repro.storage.manager import StorageConfig

    config = StorageConfig(
        fault_plan=FaultPlan(seed=7, transient_write_rate=0.05),
        retry=RetryPolicy(max_attempts=3),
    )
    result = spatial_join(a, b, storage=config)   # recovers or fails loudly
"""

from repro.faults.errors import (
    FaultError,
    FaultIOError,
    PermanentIOError,
    RetriesExhaustedError,
    ShardExecutionError,
    ShardFailure,
    ShardTimeoutError,
    TornWriteError,
    TransientIOError,
    WorkerCrashError,
)
from repro.faults.inject import FaultInjectingBackend
from repro.faults.plan import (
    KINDS,
    NO_FAULTS,
    OPS,
    FaultPlan,
    InjectionLog,
    ScheduledFault,
)
from repro.faults.retry import RetryingBackend, RetryPolicy

__all__ = [
    "FaultError",
    "FaultIOError",
    "FaultInjectingBackend",
    "FaultPlan",
    "InjectionLog",
    "KINDS",
    "NO_FAULTS",
    "OPS",
    "PermanentIOError",
    "RetriesExhaustedError",
    "RetryingBackend",
    "RetryPolicy",
    "ScheduledFault",
    "ShardExecutionError",
    "ShardFailure",
    "ShardTimeoutError",
    "TornWriteError",
    "TransientIOError",
    "WorkerCrashError",
]
