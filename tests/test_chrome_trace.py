"""Chrome Trace Event format validation (satellite of the observatory).

A generic validator for the subset of the Trace Event format the tracer
emits — complete ("X") duration events plus thread-name ("M") metadata
— applied to both synthetic span trees and a real 2-worker sharded run
whose grafted worker span trees must land on a consistent timeline in
distinct shard lanes.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Observability
from repro.obs.tracer import Tracer
from repro.parallel import parallel_spatial_join

from tests.conftest import make_squares


def validate_trace(trace: dict) -> list[dict]:
    """Assert Trace Event schema invariants; return the X events.

    - the document is JSON-serializable with a ``traceEvents`` list;
    - every event has ``ph`` in {"X", "M"}; X events carry numeric
      ``ts``/``dur`` (microseconds, non-negative) and integer
      ``pid``/``tid``;
    - within each tid, X events are properly nested: sorted by start
      time, a later event either starts at-or-after the previous one's
      end or lies entirely inside it (no partial overlap — the matched
      begin/end pair property, phrased for complete events);
    - every M event is a ``thread_name`` record for a tid that exists.
    """
    json.dumps(trace)
    events = trace["traceEvents"]
    assert isinstance(events, list)
    x_events = [event for event in events if event["ph"] == "X"]
    m_events = [event for event in events if event["ph"] == "M"]
    assert len(x_events) + len(m_events) == len(events)

    for event in x_events:
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float))
        assert event["dur"] >= 0.0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["name"], str) and event["name"]

    by_tid: dict[int, list[dict]] = {}
    for event in x_events:
        by_tid.setdefault(event["tid"], []).append(event)
    for tid, lane in by_tid.items():
        lane.sort(key=lambda event: (event["ts"], -event["dur"]))
        open_stack: list[tuple[float, float]] = []
        for event in lane:
            start, end = event["ts"], event["ts"] + event["dur"]
            while open_stack and start >= open_stack[-1][1] - 1e-6:
                open_stack.pop()
            if open_stack:
                # Strictly inside the innermost open event: nesting.
                assert end <= open_stack[-1][1] + 1e-6, (
                    f"tid {tid}: event {event['name']!r} partially "
                    f"overlaps its predecessor"
                )
            open_stack.append((start, end))

    tids = set(by_tid)
    for event in m_events:
        assert event["name"] == "thread_name"
        assert event["args"]["name"]
        assert event["tid"] in tids
    return x_events


class TestSyntheticTraces:
    def test_nested_spans_validate(self):
        tracer = Tracer()
        with tracer.span("partition", kind="phase"):
            with tracer.span("partition:A", side="A"):
                pass
            with tracer.span("partition:B", side="B"):
                pass
        x_events = validate_trace(tracer.to_chrome_trace())
        assert [event["name"] for event in x_events] == [
            "partition", "partition:A", "partition:B",
        ]

    def test_unsharded_trace_has_no_metadata_events(self):
        # Regression guard: serial traces keep the historical shape
        # (X events only, single tid).
        tracer = Tracer()
        with tracer.span("sort", kind="phase"):
            pass
        events = tracer.to_chrome_trace()["traceEvents"]
        assert all(event["ph"] == "X" for event in events)
        assert {event["tid"] for event in events} == {1}

    def test_shard_subtrees_get_distinct_tids_and_names(self):
        tracer = Tracer()
        with tracer.span("parallel_join"):
            with tracer.span("shard:cell-0", kind="shard"):
                with tracer.span("spatial_join"):
                    pass
            with tracer.span("shard:cell-1", kind="shard"):
                pass
        trace = tracer.to_chrome_trace()
        x_events = validate_trace(trace)
        by_name = {event["name"]: event for event in x_events}
        tid_0 = by_name["shard:cell-0"]["tid"]
        tid_1 = by_name["shard:cell-1"]["tid"]
        assert by_name["parallel_join"]["tid"] == 1
        assert tid_0 != tid_1 != 1
        # Children inherit their shard's lane.
        assert by_name["spatial_join"]["tid"] == tid_0
        lanes = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert lanes == {"shard:cell-0", "shard:cell-1"}


class TestShardedRunTrace:
    @pytest.fixture(scope="class")
    def sharded_trace(self):
        dataset_a = make_squares(120, side=0.01, seed=1, name="A")
        dataset_b = make_squares(150, side=0.02, seed=2, name="B")
        obs = Observability()
        result = parallel_spatial_join(dataset_a, dataset_b, workers=2, obs=obs)
        return obs.tracer.to_chrome_trace(), result

    def test_grafted_worker_trees_validate(self, sharded_trace):
        trace, result = sharded_trace
        x_events = validate_trace(trace)
        tasks = result.metrics.details["plan"]["tasks"]
        shard_events = [
            event for event in x_events if event["name"].startswith("shard:")
        ]
        assert len(shard_events) == tasks
        assert len({event["tid"] for event in shard_events}) == tasks

    def test_worker_spans_land_inside_their_shard_span(self, sharded_trace):
        """The graft rebases worker-relative span clocks onto the
        parent timeline: each shard's nested spatial_join must start
        at-or-after its shard span starts."""
        trace, _ = sharded_trace
        x_events = validate_trace(trace)
        by_tid: dict[int, list[dict]] = {}
        for event in x_events:
            by_tid.setdefault(event["tid"], []).append(event)
        checked = 0
        for events in by_tid.values():
            shard = [e for e in events if e["name"].startswith("shard:")]
            inner = [e for e in events if e["name"] == "spatial_join"]
            if not shard or not inner:
                continue
            assert inner[0]["ts"] >= shard[0]["ts"] - 1.0  # µs slack
            checked += 1
        assert checked > 0

    def test_timestamps_cover_the_run_not_the_epoch(self, sharded_trace):
        """Grafted spans must not sit at µs offsets that predate the
        root (a symptom of forgetting to rebase worker clocks)."""
        trace, _ = sharded_trace
        x_events = validate_trace(trace)
        root = next(e for e in x_events if e["name"] == "parallel_join")
        for event in x_events:
            assert event["ts"] >= root["ts"] - 1.0
            assert (
                event["ts"] + event["dur"]
                <= root["ts"] + root["dur"] + 1.0
            )
